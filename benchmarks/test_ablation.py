"""Ablation benches for the cost-model mechanisms DESIGN.md calls out.

Each mechanism is switched off in isolation and the affected paper
phenomenon is shown to disappear:

* ``reevaluation_factor`` — without the nested-outer-join re-evaluation
  penalty, no Query 1 plan times out and the unified outer-join plan stops
  being pathological;
* ``startup_ms`` — without per-query overhead, the fully partitioned
  strategy closes most of its gap;
* ``spill_factor`` — without sort spills, the Config-B outer-union unified
  plan loses its extra penalty;
* wide-row transfer penalty — without it, the unified outer-join plan's
  total time drops toward the outer-union plan's.
"""

import dataclasses


from repro.bench.sweep import run_single_partition
from repro.core.partition import Partition, fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle
from repro.relational.connection import Connection


def _conn(db, cost_model, transfer_model=None):
    return Connection(db, cost_model, transfer_model)


MID_PLAN = Partition([(1, 1), (1, 2), (1, 3), (1, 4, 1),
                      (1, 4, 2, 1), (1, 4, 2, 2), (1, 4, 2, 3)])


def test_ablate_reevaluation(benchmark, config_a, trees_a, report_writer):
    config, db, _, _ = config_a
    tree = trees_a["Q1"]

    def run():
        stressed = _conn(db, config.cost_model)
        relaxed = _conn(db, config.cost_model.without("reevaluation_factor"))
        uni = unified_partition(tree)
        with_penalty = run_single_partition(
            tree, db.schema, stressed, uni, budget_ms=config.subquery_budget_ms
        )
        without_penalty = run_single_partition(
            tree, db.schema, relaxed, uni, budget_ms=config.subquery_budget_ms
        )
        return with_penalty, without_penalty

    with_penalty, without_penalty = benchmark.pedantic(run, rounds=1, iterations=1)
    report_writer(
        "ablation_reevaluation",
        f"unified outer-join, Config A: with penalty -> "
        f"{'TIMEOUT' if with_penalty.timed_out else f'{with_penalty.query_ms:.0f}ms'}; "
        f"without -> {without_penalty.query_ms:.0f}ms",
    )
    assert with_penalty.timed_out or (
        with_penalty.query_ms > 10 * without_penalty.query_ms
    )
    assert not without_penalty.timed_out


def test_ablate_startup(benchmark, config_a, trees_a, report_writer):
    config, db, _, _ = config_a
    tree = trees_a["Q1"]

    def run():
        normal = _conn(db, config.cost_model)
        free = _conn(db, config.cost_model.without("startup_ms"))
        fully = fully_partitioned(tree)
        return (
            run_single_partition(tree, db.schema, normal, fully, reduce=True),
            run_single_partition(tree, db.schema, free, fully, reduce=True),
            run_single_partition(tree, db.schema, normal, MID_PLAN, reduce=True),
            run_single_partition(tree, db.schema, free, MID_PLAN, reduce=True),
        )

    fully_n, fully_f, mid_n, mid_f = benchmark.pedantic(run, rounds=1, iterations=1)
    gap_with = fully_n.query_ms / mid_n.query_ms
    gap_without = fully_f.query_ms / mid_f.query_ms
    report_writer(
        "ablation_startup",
        f"fully-partitioned/mid-plan gap: with startup {gap_with:.2f}x, "
        f"without {gap_without:.2f}x",
    )
    assert gap_without < gap_with  # startup is part of the fully-part tax


def test_ablate_spill(benchmark, config_b, trees_b, report_writer):
    config, db, _, _ = config_b
    tree = trees_b["Q1"]

    def run():
        normal = _conn(db, config.cost_model)
        roomy = _conn(db, config.cost_model.without("spill_factor"))
        uni = unified_partition(tree)
        return (
            run_single_partition(tree, db.schema, normal, uni,
                                 style=PlanStyle.OUTER_UNION),
            run_single_partition(tree, db.schema, roomy, uni,
                                 style=PlanStyle.OUTER_UNION),
        )

    spilled, roomy = benchmark.pedantic(run, rounds=1, iterations=1)
    report_writer(
        "ablation_spill",
        f"Config B outer-union unified query time: spill {spilled.query_ms:.0f}ms "
        f"vs no-spill {roomy.query_ms:.0f}ms "
        f"({spilled.query_ms / roomy.query_ms:.2f}x)",
    )
    assert spilled.query_ms > 1.5 * roomy.query_ms


def test_ablate_wide_row_penalty(benchmark, config_a, trees_a, report_writer):
    config, db, _, _ = config_a
    tree = trees_a["Q1"]

    def run():
        relaxed_model = config.cost_model.without("reevaluation_factor")
        normal = _conn(db, relaxed_model, config.transfer_model)
        narrow = _conn(
            db, relaxed_model,
            dataclasses.replace(config.transfer_model, wide_row_factor=0.0),
        )
        uni = unified_partition(tree)
        oj_wide = run_single_partition(tree, db.schema, normal, uni)
        oj_narrow = run_single_partition(tree, db.schema, narrow, uni)
        ou = run_single_partition(tree, db.schema, normal, uni,
                                  style=PlanStyle.OUTER_UNION)
        return oj_wide, oj_narrow, ou

    oj_wide, oj_narrow, ou = benchmark.pedantic(run, rounds=1, iterations=1)
    report_writer(
        "ablation_wide_row",
        "unified outer-join transfer (Config A, re-evaluation off): "
        f"with wide-row penalty {oj_wide.transfer_ms:.0f}ms, without "
        f"{oj_narrow.transfer_ms:.0f}ms; outer-union {ou.transfer_ms:.0f}ms",
    )
    # The 'anomalous JDBC caching' penalty is what makes the outer-join
    # unified plan's transfer slower than the outer-union's.
    assert oj_wide.transfer_ms > ou.transfer_ms
    assert oj_narrow.transfer_ms < oj_wide.transfer_ms
