"""E9 — Sec. 5.1: oracle estimate-request counts.

genPlan is O(|Edges|^2) in edge evaluations, but the same component queries
recur, so the number of *actual* cost-estimate requests sent to the RDBMS
optimizer stays far below the 9^2 = 81 worst case.  The paper measured 22
requests for the non-reduced view trees and 25 for the reduced ones, for
both queries.
"""

from repro.bench.report import format_sweep_table
from repro.core.greedy import GreedyPlanner
from repro.core.sqlgen import PlanStyle

WORST_CASE = 81


def test_estimate_request_counts(benchmark, config_a, trees_a, report_writer):
    config, db, conn, estimator = config_a

    def run():
        rows = []
        for query in ("Q1", "Q2"):
            for reduce in (False, True):
                planner = GreedyPlanner(
                    trees_a[query], db.schema, estimator,
                    style=PlanStyle.OUTER_JOIN, reduce=reduce,
                )
                plan = planner.plan()
                rows.append([
                    query,
                    "reduced" if reduce else "non-reduced",
                    plan.oracle_requests,
                    plan.oracle_cache_hits,
                    WORST_CASE,
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_sweep_table(
        rows, ["query", "tree", "requests", "cache hits", "worst case"]
    )
    table += "\npaper: 22 requests (non-reduced), 25 (reduced), both queries"
    report_writer("estimate_requests", table)

    for row in rows:
        requests, hits = row[2], row[3]
        assert requests < WORST_CASE / 1.5
        assert hits > requests  # memoization does the heavy lifting
