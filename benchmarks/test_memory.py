"""Peak-memory smoke bench: streaming vs materializing XML generation.

The paper's Sec. 3.3 claim is that tagging needs memory proportional to the
view-tree size, never the database size.  ``materialize()`` still holds
every tuple stream and the whole document; ``materialize_to()`` runs the
full pipeline lazily (Volcano iterators → streaming decode/merge → tagger
writing straight to the sink).  This bench measures both with
``tracemalloc`` at two database scales and checks that

* the streamed bytes are identical to ``materialize().xml`` at both scales,
* the streaming peak is well below the materializing peak, and
* the streaming peak grows *sublinearly* in the output size (the
  materializing peak, holding streams + document, grows linearly).

Peaks are *real* heap bytes (unlike the simulated milliseconds elsewhere);
results go to ``BENCH_memory.json`` at the repository root for CI.
"""

import gc
import io
import json
import pathlib
import tracemalloc

from repro.bench.queries import QUERY_1
from repro.core.silkroute import SilkRoute
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.xmlgen.serializer import CountingSink

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BASE_SCALE = TpchScale()
SCALE_FACTOR = 8
PLAN = "fully-partitioned"


def traced_peak(fn):
    """Run ``fn`` and return ``(result, peak_heap_bytes)``."""
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def measure(factor):
    db = TpchGenerator(
        scale=BASE_SCALE.scaled(factor), seed=42
    ).generate()
    view = SilkRoute(Connection(db, CostModel())).define_view(QUERY_1)

    batch, batch_peak = traced_peak(
        lambda: view.materialize(PLAN, reduce=False)
    )
    check = io.StringIO()
    view.materialize_to(check, PLAN, reduce=False)
    assert check.getvalue() == batch.xml  # byte-identical output
    doc_chars = len(batch.xml)
    del batch, check

    # The measured streaming run discards the document as it is written.
    _, stream_peak = traced_peak(
        lambda: view.materialize_to(CountingSink(), PLAN, reduce=False)
    )
    return {
        "scale_factor": factor,
        "db_rows": sum(len(t.rows) for t in db.tables.values()),
        "doc_chars": doc_chars,
        "materialize_peak_bytes": batch_peak,
        "materialize_to_peak_bytes": stream_peak,
    }


def test_streaming_peak_sublinear(report_writer):
    small = measure(1)
    large = measure(SCALE_FACTOR)

    output_growth = large["doc_chars"] / small["doc_chars"]
    stream_growth = (
        large["materialize_to_peak_bytes"]
        / small["materialize_to_peak_bytes"]
    )
    advantage = (
        large["materialize_peak_bytes"]
        / large["materialize_to_peak_bytes"]
    )
    payload = {
        "experiment": "q1_streaming_peak_memory",
        "plan": PLAN,
        "scales": [small, large],
        "output_growth": round(output_growth, 2),
        "streaming_peak_growth": round(stream_growth, 2),
        "materialize_over_streaming_at_large_scale": round(advantage, 2),
    }
    (REPO_ROOT / "BENCH_memory.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "memory_streaming_peak",
        "\n".join(
            [
                f"Q1 {PLAN} peak heap, materialize vs materialize_to",
                *(
                    f"  x{m['scale_factor']}: doc {m['doc_chars']:>8} chars"
                    f"  batch {m['materialize_peak_bytes']:>9} B"
                    f"  stream {m['materialize_to_peak_bytes']:>9} B"
                    for m in (small, large)
                ),
                f"  output grew {output_growth:.1f}x, streaming peak "
                f"{stream_growth:.1f}x, batch/stream at x{SCALE_FACTOR}: "
                f"{advantage:.2f}x",
            ]
        ),
    )
    # The document grew ~8x; the streaming peak must grow well below
    # linearly (measured ~2.9x) and stay clearly under the materializing
    # peak (measured ~1.6x at the large scale).  Margins are loose —
    # allocator details vary across Python versions.
    assert stream_growth < 0.6 * output_growth
    assert advantage >= 1.25
