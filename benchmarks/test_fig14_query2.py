"""E5 — Figure 14: Query 2 on Configuration A, all 512 plans.

Query 2's two ``*`` edges are parallel (unions of outer joins) instead of
chained, so — as in the paper — **no** plan times out; the outer-union
unified plan is ~21% slower than optimal and the fully partitioned plan
~41% slower (non-reduced, query time), and reduction again gives the
2.5x-class improvement on the fastest plans.
"""

import pytest

from repro.bench.figures import scatter_plot
from repro.bench.report import format_series, summarize_sweep
from repro.bench.sweep import run_single_partition
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle


@pytest.fixture(scope="module")
def outer_union_baseline(config_a, trees_a):
    config, db, conn, _ = config_a
    tree = trees_a["Q2"]
    return run_single_partition(
        tree, db.schema, conn, unified_partition(tree),
        style=PlanStyle.OUTER_UNION, reduce=False,
        budget_ms=config.subquery_budget_ms,
    )


def test_fig14a_query_time_nonreduced(benchmark, sweeps_a, trees_a,
                                      outer_union_baseline, report_writer):
    tree = trees_a["Q2"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q2", False), rounds=1, iterations=1
    )
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "query_ms"
    )
    optimal = summary["optimal"][0]
    ou = outer_union_baseline.query_ms
    text = scatter_plot(
        sweep, "query_ms",
        marks=[("unified outer-join", unified_partition(tree)),
               ("fully partitioned", fully_partitioned(tree))],
    ) + "\n\n" + format_series(sweep, "query_ms", title="Query 2, Config A, "
                               "query-only time, non-reduced (512 plans)")
    text += (
        f"\nunified outer-union: {ou / optimal:.2f}x optimal (paper 1.21x)"
        f"\nfully partitioned: {summary['fully_partitioned'][1]:.2f}x "
        "(paper 1.41x)"
        f"\ntimed out: {len(sweep.timed_out())} (paper: 0)"
    )
    report_writer("fig14a_q2_query_nonreduced", text)

    assert len(sweep.timed_out()) == 0  # parallel * edges never blow up
    assert 1.0 < ou / optimal < 2.0
    assert 1.0 < summary["fully_partitioned"][1] < 3.0


def test_fig14b_query_time_reduced(benchmark, sweeps_a, trees_a,
                                   outer_union_baseline, report_writer):
    tree = trees_a["Q2"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q2", True), rounds=1, iterations=1
    )
    nonreduced = sweeps_a.sweep("Q2", False)
    speedup = (
        sum(t.query_ms for t in nonreduced.fastest(10))
        / sum(t.query_ms for t in sweep.fastest(10))
    )
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "query_ms"
    )
    ou_factor = outer_union_baseline.query_ms / summary["optimal"][0]
    text = format_series(sweep, "query_ms", title="Query 2, Config A, "
                         "query-only time, with view-tree reduction")
    text += (
        f"\nten-fastest speedup from reduction: {speedup:.2f}x (paper 2.5x)"
        f"\noptimal vs outer-union: {ou_factor:.2f}x (paper band 2.6-4.3x)"
        f"\noptimal vs fully partitioned: {summary['fully_partitioned'][1]:.2f}x"
    )
    report_writer("fig14b_q2_query_reduced", text)

    assert speedup > 1.5
    assert 1.8 < ou_factor < 5.0


def test_fig14c_total_time_reduced(benchmark, sweeps_a, trees_a,
                                   outer_union_baseline, report_writer):
    tree = trees_a["Q2"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q2", True), rounds=1, iterations=1
    )
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "total_ms"
    )
    ou_factor = outer_union_baseline.total_ms / summary["optimal"][0]
    text = format_series(sweep, "total_ms", title="Query 2, Config A, "
                         "total time, with view-tree reduction")
    text += (
        f"\nunified outer-union total: {ou_factor:.2f}x optimal (paper 4.8x)"
        f"\nfully partitioned total: {summary['fully_partitioned'][1]:.2f}x "
        "(paper 3.7x)"
    )
    report_writer("fig14c_q2_total_reduced", text)

    assert 1.8 < ou_factor < 7.0
    assert 1.8 < summary["fully_partitioned"][1] < 6.0
