"""E8 — Table 1: the experimental configurations.

The paper's Table 1 describes Configuration A (1 MB database, AMD K6-2
350 MHz server) and Configuration B (100 MB, Intel Celeron 566 MHz).  Here
the data scale is reduced 25:1 between B and A (documented substitution in
DESIGN.md) and the server speed difference is carried by the cost models.
"""

from repro.bench.report import format_sweep_table


def test_table1_configurations(benchmark, config_a, config_b, report_writer):
    def build():
        rows = []
        for config, db, conn, _ in (config_a, config_b):
            model = conn.engine.cost_model
            rows.append([
                config.name,
                db.total_rows(),
                f"{db.total_bytes() / 1024:.0f} KB",
                f"speed x{model.speed:.0f}",
                f"{model.sort_memory_bytes / 1024:.0f} KB sort mem",
                f"{config.subquery_budget_ms / 1000:.0f}s budget",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_sweep_table(
        rows,
        ["config", "rows", "volume", "server", "memory", "timeout"],
    )
    report_writer("table1_configurations", table)

    (_, db_a, *_), (_, db_b, *_) = config_a, config_b
    assert db_b.total_rows() > 20 * db_a.total_rows()
