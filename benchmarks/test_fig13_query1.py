"""E2/E3/E4 — Figure 13: Query 1 on Configuration A, all 512 plans.

(a) query-only time without view-tree reduction,
(b) query-only time with reduction,
(c) total time with reduction.

Paper findings reproduced as shape assertions:
* the unified outer-union plan is ~16% slower than optimal and the fully
  partitioned plan ~24% slower (non-reduced, query time) — here both lose
  by a comparable small factor;
* with reduction the optimal plans are 2.6-4.3x faster than the outer-union
  and fully partitioned baselines;
* 101 of Query 1's 512 plans timed out under the 5-minute budget (the
  nested-outer-join chain plans) — here a similar band of chain plans
  times out.
"""

import pytest

from repro.bench.figures import scatter_plot
from repro.bench.report import format_series, summarize_sweep
from repro.bench.sweep import run_single_partition
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle


@pytest.fixture(scope="module")
def outer_union_baseline(config_a, trees_a):
    config, db, conn, _ = config_a
    tree = trees_a["Q1"]
    return run_single_partition(
        tree, db.schema, conn, unified_partition(tree),
        style=PlanStyle.OUTER_UNION, reduce=False,
        budget_ms=config.subquery_budget_ms,
    )


def test_fig13a_query_time_nonreduced(benchmark, sweeps_a, trees_a,
                                      outer_union_baseline, report_writer):
    tree = trees_a["Q1"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q1", False), rounds=1, iterations=1
    )
    text = format_series(sweep, "query_ms", title="Query 1, Config A, "
                         "query-only time, non-reduced (512 plans)")
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "query_ms"
    )
    optimal = summary["optimal"][0]
    ou = outer_union_baseline.query_ms
    text = scatter_plot(
        sweep, "query_ms",
        marks=[("unified outer-join", unified_partition(tree)),
               ("fully partitioned", fully_partitioned(tree))],
    ) + "\n\n" + text
    text += (
        f"\noptimal: {optimal:.0f}ms @ {summary['optimal'][2]} streams"
        f"\nunified outer-union: {ou:.0f}ms ({ou / optimal:.2f}x; paper 1.16x)"
        f"\nfully partitioned: {summary['fully_partitioned'][0]:.0f}ms "
        f"({summary['fully_partitioned'][1]:.2f}x; paper 1.24x)"
        f"\ntimed out: {len(sweep.timed_out())} of 512 (paper: 101)"
    )
    report_writer("fig13a_q1_query_nonreduced", text)

    assert summary["optimal"][2] > 1  # multiple SQL queries win
    assert 1.0 < ou / optimal < 2.0
    assert 1.0 < summary["fully_partitioned"][1] < 3.0
    assert 50 <= len(sweep.timed_out()) <= 150


def test_fig13b_query_time_reduced(benchmark, sweeps_a, trees_a,
                                   outer_union_baseline, report_writer):
    tree = trees_a["Q1"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q1", True), rounds=1, iterations=1
    )
    nonreduced = sweeps_a.sweep("Q1", False)
    text = format_series(sweep, "query_ms", title="Query 1, Config A, "
                         "query-only time, with view-tree reduction")
    ten_fast_reduced = sum(t.query_ms for t in sweep.fastest(10))
    ten_fast_plain = sum(t.query_ms for t in nonreduced.fastest(10))
    speedup = ten_fast_plain / ten_fast_reduced
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "query_ms"
    )
    optimal = summary["optimal"][0]
    ou = outer_union_baseline.query_ms
    text += (
        f"\nten-fastest speedup from reduction: {speedup:.2f}x (paper: 2.5x)"
        f"\noptimal vs outer-union: {ou / optimal:.2f}x slower "
        f"(paper band: 2.6-4.3x)"
        f"\noptimal vs fully partitioned: {summary['fully_partitioned'][1]:.2f}x"
    )
    report_writer("fig13b_q1_query_reduced", text)

    assert speedup > 1.5
    assert 1.8 < ou / optimal < 5.0
    assert 2.0 < summary["fully_partitioned"][1] < 5.0


def test_fig13c_total_time_reduced(benchmark, sweeps_a, trees_a,
                                   outer_union_baseline, report_writer):
    tree = trees_a["Q1"]
    sweep = benchmark.pedantic(
        sweeps_a.sweep, args=("Q1", True), rounds=1, iterations=1
    )
    text = format_series(sweep, "total_ms", title="Query 1, Config A, "
                         "total time, with view-tree reduction")
    summary = summarize_sweep(
        sweep, {"fully_partitioned": fully_partitioned(tree)}, "total_ms"
    )
    optimal = summary["optimal"][0]
    ou = outer_union_baseline.total_ms
    text += (
        f"\nunified outer-union total: {ou / optimal:.2f}x optimal (paper: 4x)"
        f"\nfully partitioned total: {summary['fully_partitioned'][1]:.2f}x "
        "(paper: 3x)"
    )
    report_writer("fig13c_q1_total_reduced", text)

    assert 1.8 < ou / optimal < 6.0
    assert 1.8 < summary["fully_partitioned"][1] < 6.0
