"""Incremental view maintenance wall-clock bench: delta vs full invalidation.

The scenario the delta-propagation layer exists for: the 512 plans of the
Query 1 / Configuration A sweep have all been materialized as XML, then a
~1%-of-rows update lands on one table.  Re-materializing every plan's view
with the dependency-scoped caches re-executes only the streams that read
the mutated table, re-tags the document once (splicing untouched streams'
decoded instances back in), and serves the other plans from the document
cache — while before this subsystem existed a write staled every
generation-keyed entry, so each of the 512 plans re-executed, re-decoded,
re-merged, and re-tagged from scratch.  That pre-IVM behaviour is the
baseline here, reproduced with a fresh connection and no splice layer.

Identity is the hard constraint: the caches may not move a simulated
millisecond or a byte.  Every incremental materialization is compared
byte-for-byte and timing-for-timing against the baseline's cold run on the
mutated database, and a sample of plans is re-run on the row-at-a-time
tuple engine as an independent bit-identity oracle.

Results go to ``BENCH_ivm.json`` at the repository root so CI can track
the delta speedup.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1
from repro.core.silkroute import SilkRoute
from repro.tpch.configs import CONFIG_A, build_configuration
from repro.xmlgen.tagger import tag_streams

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Every 64th plan re-runs on the tuple interpreter (8 of 512): enough to
# catch an engine divergence without paying the interpreter's full sweep.
TUPLE_SAMPLE_STRIDE = 64


def apply_delta(db, fraction=0.01):
    """Update ~``fraction`` of Customer rows (name gets a suffix, so the
    unique candidate key stays unique and the delta is visible in the
    view).  Returns the updated-row count."""
    customers = db.table("Customer")
    count = max(1, int(len(customers) * fraction))
    keys = set(customers.column_values("custkey")[:count])
    return db.update(
        "Customer",
        lambda row: row["custkey"] in keys,
        {"name": lambda row: row["name"] + "~"},
    )


def materialize_all(view, partitions):
    """Materialize every partition; returns (xml, [(query, transfer)], s)."""
    xml = None
    timings = []
    start = time.perf_counter()
    for partition in partitions:
        result = view.materialize(partition, root_tag="view")
        if xml is None:
            xml = result.xml
        else:
            # Every partition of a view materializes the identical
            # document — the invariant the document cache is built on.
            assert result.xml == xml
        timings.append(
            (result.report.query_ms, result.report.transfer_ms)
        )
    return xml, timings, time.perf_counter() - start


def baseline_all(view, partitions, ivm_xml, ivm_timings, engine="batch"):
    """The pre-IVM re-materialization: execute and tag every plan with no
    instance or document cache (those layers are dependency-keyed and did
    not exist before delta propagation).  Asserts byte- and
    timing-identity against the incremental pass as it goes, discarding
    each document immediately so 512 multi-megabyte strings never
    coexist.  Returns elapsed seconds."""
    start = time.perf_counter()
    for i, partition in enumerate(partitions):
        # reduce=True matches the materializer's default, so the baseline
        # runs the very same reduced plans.
        specs, streams, report = view.execute_partition(
            partition, reduce=True, engine=engine
        )
        xml, _ = tag_streams(view.tree, specs, streams, root_tag="view")
        assert xml == ivm_xml
        assert (report.query_ms, report.transfer_ms) == ivm_timings[i]
    return time.perf_counter() - start


def test_ivm_delta_speedup(report_writer):
    db, conn, estimator = build_configuration(CONFIG_A)
    silk = SilkRoute(conn, estimator=estimator, cache=True)
    view = silk.define_view(QUERY_1)
    partitions = list(view.enumerate_partitions())
    assert len(partitions) == 512

    # Warm: all 512 plans' views materialized, caches full.
    _, _, warm_s = materialize_all(view, partitions)

    rows_updated = apply_delta(db)
    total_rows = sum(len(t) for t in db.tables.values())

    # Incremental: only Customer-dependent entries re-execute; the first
    # plan re-tags (splicing untouched streams from the instance cache),
    # the rest serve the re-filled document key.
    ivm_xml, ivm_timings, ivm_s = materialize_all(view, partitions)
    plan_stats = silk.cache.stats()
    node_stats = conn.engine.node_cache.stats()
    splice_stats = view.instance_cache.stats()
    doc_stats = view.document_cache.stats()

    # Pre-IVM behaviour, doubling as the cold batch oracle: a fresh
    # connection over the mutated database (fresh plan/node caches that
    # refill during the pass — the write staled every old entry), no
    # splice or document layer, every plan tagged from scratch.
    _, full_conn, full_estimator = build_configuration(CONFIG_A, database=db)
    full_view = SilkRoute(
        full_conn, estimator=full_estimator, cache=True
    ).define_view(QUERY_1)
    full_s = baseline_all(full_view, partitions, ivm_xml, ivm_timings)

    # Independent oracle: the row-at-a-time interpreter on a plan sample.
    _, tuple_conn, tuple_estimator = build_configuration(CONFIG_A, database=db)
    tuple_view = SilkRoute(
        tuple_conn, estimator=tuple_estimator, cache=True
    ).define_view(QUERY_1)
    sample = partitions[::TUPLE_SAMPLE_STRIDE]
    tuple_s = baseline_all(
        tuple_view, sample, ivm_xml,
        ivm_timings[::TUPLE_SAMPLE_STRIDE], engine="tuple",
    )

    speedup = full_s / ivm_s if ivm_s else float("inf")
    # Loose in-test floor; the committed JSON tracks the real figure.
    assert speedup >= 3.0

    payload = {
        "experiment": "q1_config_a_ivm_delta",
        "plans": len(partitions),
        "delta": {
            "table": "Customer",
            "op": "update",
            "rows": rows_updated,
            "fraction_of_db": round(rows_updated / total_rows, 5),
        },
        "warm_seconds": round(warm_s, 3),
        "ivm_seconds": round(ivm_s, 3),
        "full_invalidation_seconds": round(full_s, 3),
        "tuple_sample_plans": len(sample),
        "tuple_sample_seconds": round(tuple_s, 3),
        "speedup": round(speedup, 2),
        "plan_cache": {
            "hits": plan_stats.hits,
            "invalidations": plan_stats.invalidations,
            "hit_rate": round(plan_stats.hit_rate, 4),
        },
        "node_cache": {
            "hits": node_stats.hits,
            "invalidations": node_stats.invalidations,
            "hit_rate": round(node_stats.hit_rate, 4),
        },
        "instance_cache": splice_stats,
        "document_cache": doc_stats,
        "identical_timings": True,
        "byte_identical_xml": True,
    }
    (REPO_ROOT / "BENCH_ivm.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "ivm_delta",
        f"{rows_updated} row(s) updated "
        f"({payload['delta']['fraction_of_db']:.2%} of the database)\n"
        f"incremental re-materialization of 512 plans {ivm_s:.2f}s vs "
        f"full invalidation {full_s:.2f}s ({speedup:.1f}x); tuple oracle "
        f"{tuple_s:.2f}s over {len(sample)} plans\n"
        f"plan cache: {plan_stats.invalidations} invalidated, "
        f"{plan_stats.hits} hits; node cache: "
        f"{node_stats.invalidations} invalidated, {node_stats.hits} hits; "
        f"document cache: {doc_stats['hits']} hits\n"
        "simulated timings bit-identical and XML byte-identical across "
        "incremental, full-invalidation, and tuple-engine runs",
    )
