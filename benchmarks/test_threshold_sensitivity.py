"""Ablation — greedy parameter sensitivity (DESIGN.md §5).

The paper fixed a=100, b=1, t1=-60000, t2=6000 across queries and
configurations and hypothesized that the coefficients "depend primarily on
the characteristics of the database environment, and not on the
characteristics of the query."  This bench sweeps the thresholds and the
a/b mix around our calibrated defaults and reports how the plan family and
its measured quality respond — showing (a) a broad plateau where the family
stays near-optimal, and (b) that one default works for both queries.
"""

from repro.bench.report import format_sweep_table
from repro.bench.sweep import run_single_partition
from repro.core.greedy import GreedyParameters, GreedyPlanner
from repro.core.sqlgen import PlanStyle

T1_VALUES = (-60_000.0, -15_000.0, -6_150.0, -3_000.0)
T2_VALUES = (0.0, 6_000.0, 60_000.0)


def test_threshold_sensitivity(benchmark, config_a, trees_a, report_writer):
    config, db, conn, estimator = config_a

    def run():
        rows = []
        for query in ("Q1", "Q2"):
            tree = trees_a[query]
            for t1 in T1_VALUES:
                for t2 in T2_VALUES:
                    planner = GreedyPlanner(
                        tree, db.schema, estimator,
                        style=PlanStyle.OUTER_JOIN, reduce=True,
                    )
                    plan = planner.plan(GreedyParameters(t1=t1, t2=t2))
                    timing = run_single_partition(
                        tree, db.schema, conn, plan.recommended(),
                        style=PlanStyle.OUTER_JOIN, reduce=True,
                        budget_ms=config.subquery_budget_ms,
                    )
                    rows.append([
                        query, t1, t2,
                        len(plan.mandatory), len(plan.optional),
                        "timeout" if timing.timed_out
                        else f"{timing.query_ms:.0f}",
                    ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_sweep_table(
        rows, ["query", "t1", "t2", "mandatory", "optional", "rec. query ms"]
    )
    report_writer("ablation_thresholds", table)

    # The recommended plan never times out and stays within 2x of the best
    # observed recommendation across the whole grid — the plateau.
    for query in ("Q1", "Q2"):
        times = [
            float(r[5]) for r in rows if r[0] == query and r[5] != "timeout"
        ]
        assert len(times) == len(T1_VALUES) * len(T2_VALUES)
        assert max(times) < 2.5 * min(times)


def test_ab_mix_sensitivity(benchmark, config_a, trees_a, report_writer):
    """Vary the a (evaluation cost) vs b (data size) weighting."""
    config, db, conn, estimator = config_a
    tree = trees_a["Q1"]

    def run():
        rows = []
        for a, b in ((100.0, 0.0), (100.0, 1.0), (100.0, 10.0), (1.0, 1.0)):
            planner = GreedyPlanner(
                tree, db.schema, estimator, reduce=True
            )
            # Scale thresholds with `a` so the comparison stays meaningful.
            scale = a / 100.0
            plan = planner.plan(
                GreedyParameters(a=a, b=b, t1=-6_150.0 * scale,
                                 t2=6_000.0 * scale)
            )
            timing = run_single_partition(
                tree, db.schema, conn, plan.recommended(), reduce=True,
                budget_ms=config.subquery_budget_ms,
            )
            rows.append([
                a, b, len(plan.mandatory), len(plan.optional),
                "timeout" if timing.timed_out else f"{timing.query_ms:.0f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_sweep_table(
        rows, ["a", "b", "mandatory", "optional", "rec. query ms"]
    )
    report_writer("ablation_ab_mix", table)
    assert all(r[4] != "timeout" for r in rows)
