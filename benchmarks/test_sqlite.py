"""Real-backend wall-clock sweep: SQLite across the partition spectrum.

Everything else in this repository times the *simulated* cost model; this
bench is the one place wall clocks are real.  A larger-than-Config-A
TPC-H instance is mirrored into in-memory SQLite and a sample of Query 1
partitions — both endpoints plus a spread of mid-size plans — executes
its generated SQL for real, cross-validated row-for-row against the
simulated oracle (any divergence fails the bench, so ``byte_identical``
in the JSON is earned, not asserted).

Three things are recorded to ``BENCH_sqlite.json``:

* the measured wall per partition, demonstrating the paper's Sec. 6
  shape on a real engine: the unified plan drowns in its padded outer
  join, the fully partitioned plan pays per-stream redundant join work,
  and a mid-size partition beats both;
* the calibrated cost model fitted to those measurements
  (:mod:`repro.relational.calibrate`) with its per-group scales;
* plan-pick agreement (top-1 and pairwise concordance) of the default
  and the calibrated model against the measured ordering — the number CI
  watches for regressions.
"""

import json
import pathlib
from statistics import median

from repro.bench.queries import QUERY_1, load_view
from repro.core.partition import enumerate_partitions
from repro.core.sqlgen import SqlGenerator
from repro.relational.backends import SqliteBackend
from repro.relational.backends.base import align_backend_rows
from repro.relational.calibrate import (
    CALIBRATION_GROUPS,
    CalibrationObservation,
    apply_scales,
    fit_scales,
    group_features,
    plan_agreement,
)
from repro.relational.engine import CostModel, QueryEngine
from repro.tpch.generator import TpchGenerator, TpchScale

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Config A's instance is too small for real walls — every statement runs
# in statement-overhead time.  10x the rows puts the unified plan's outer
# join in the seconds and leaves the best mid-size partition ~10% under
# the fully partitioned endpoint, a margin that survives machine noise.
BENCH_SCALE = TpchScale(suppliers=200, parts=800, customers=500, orders=4000)

# Every 64th partition plus a few hand-picked mids and the unified
# endpoint: 10 plans spanning 1..10 streams.  (All 512 partitions would
# push the bench past the runtime budget without changing the shape.)
CANDIDATE_STRIDE = 64
REPEATS = 3
# Statements slower than this get a single measured run — at that
# magnitude per-run noise is irrelevant and two more repeats of a
# multi-second outer join buy nothing.
SINGLE_RUN_ABOVE_MS = 500.0


def test_sqlite_partition_sweep(report_writer):
    db = TpchGenerator(scale=BENCH_SCALE, seed=42).generate()
    tree = load_view(QUERY_1, db.schema)
    partitions = list(enumerate_partitions(tree))
    generator = SqlGenerator(tree, db.schema)
    engine = QueryEngine(db, CostModel())
    backend = SqliteBackend(db)

    indices = sorted(set(
        list(range(0, len(partitions), CANDIDATE_STRIDE))
        + [192, 320, 480, len(partitions) - 1]
    ))

    candidates = []
    observations = []
    for index in indices:
        specs = generator.streams_for_partition(partitions[index])
        simulated_ms = 0.0
        wall_ms = 0.0
        for spec in specs:
            result = engine.execute(spec.plan)
            simulated_ms += result.server_ms
            rows, first_wall = backend.execute_sql(spec.plan, spec.sql)
            # The cross-validation pass: a row divergence fails the
            # bench here, which is what licenses the byte_identical
            # flag in the payload.
            align_backend_rows(
                spec.plan, result.rows, rows, backend.name,
                label=spec.label, sql=spec.sql,
            )
            walls = [first_wall]
            if first_wall < SINGLE_RUN_ABOVE_MS:
                for _ in range(REPEATS - 1):
                    walls.append(
                        backend.execute_sql(spec.plan, spec.sql)[1]
                    )
            wall_ms += median(walls)
            observations.append(CalibrationObservation(
                label=f"p{index}/{spec.label}",
                features=group_features(result.breakdown),
                wall_ms=median(walls),
            ))
        candidates.append({
            "index": index,
            "streams": len(specs),
            "wall_ms": round(wall_ms, 3),
            "simulated_default_ms": round(simulated_ms, 3),
        })

    # Fit the cost model to the measured walls and re-predict.
    scales = fit_scales(observations)
    calibrated = apply_scales(engine.cost_model, scales)
    calibrated_engine = QueryEngine(db, calibrated)
    for candidate in candidates:
        specs = generator.streams_for_partition(partitions[candidate["index"]])
        candidate["simulated_calibrated_ms"] = round(
            sum(calibrated_engine.execute(s.plan).server_ms for s in specs),
            3,
        )

    by_streams = sorted(candidates, key=lambda c: c["streams"])
    unified = by_streams[0]
    fully_partitioned = by_streams[-1]
    assert unified["streams"] == 1
    mids = [c for c in candidates
            if c is not unified and c is not fully_partitioned]
    best = min(mids, key=lambda c: c["wall_ms"])

    # The paper's Sec. 6 shape, on a real engine: some mid-size
    # partition strictly beats both endpoints on measured wall.
    assert best["wall_ms"] < unified["wall_ms"]
    assert best["wall_ms"] < fully_partitioned["wall_ms"]

    walls = [c["wall_ms"] for c in candidates]
    agreement = {
        "default": plan_agreement(
            [c["simulated_default_ms"] for c in candidates], walls
        ),
        "calibrated": plan_agreement(
            [c["simulated_calibrated_ms"] for c in candidates], walls
        ),
    }

    payload = {
        "experiment": "q1_sqlite_partition_sweep",
        "backend": "sqlite(:memory:)",
        "scale": {
            "suppliers": BENCH_SCALE.suppliers,
            "parts": BENCH_SCALE.parts,
            "customers": BENCH_SCALE.customers,
            "orders": BENCH_SCALE.orders,
        },
        "repeats": REPEATS,
        "candidates": candidates,
        "fully_partitioned_wall_ms": fully_partitioned["wall_ms"],
        "unified_wall_ms": unified["wall_ms"],
        "best_mid_size": best,
        "mid_size_beats_both_endpoints": True,
        "calibration": {
            "observations": len(observations),
            "scales": {g: round(scales[g], 6) for g in CALIBRATION_GROUPS},
            "constants": {
                "scan_row_ms": calibrated.scan_row_ms,
                "filter_row_ms": calibrated.filter_row_ms,
                "project_row_ms": calibrated.project_row_ms,
                "hash_row_ms": calibrated.hash_row_ms,
                "sort_cmp_ms": calibrated.sort_cmp_ms,
                "startup_ms": calibrated.startup_ms,
            },
        },
        "plan_agreement": agreement,
        "byte_identical": True,
    }
    (REPO_ROOT / "BENCH_sqlite.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    backend.close()

    report_writer(
        "sqlite_partition_sweep",
        f"{len(candidates)} partitions x {REPEATS} repeats on SQLite, "
        f"all rows cross-validated against the simulated oracle\n"
        f"unified {unified['wall_ms']:.1f}ms, fully partitioned "
        f"{fully_partitioned['wall_ms']:.1f}ms, best mid-size "
        f"(partition {best['index']}, {best['streams']} streams) "
        f"{best['wall_ms']:.1f}ms\n"
        f"plan agreement vs measurement — default model: "
        f"top1={agreement['default']['top1']}, "
        f"concordance={agreement['default']['concordance']:.3f}; "
        f"calibrated: top1={agreement['calibrated']['top1']}, "
        f"concordance={agreement['calibrated']['concordance']:.3f}",
    )
