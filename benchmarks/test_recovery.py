"""Recovery soak: SIGKILL the serving process at randomized crash points,
recover, and prove the restarted server is indistinguishable.

Each round drives :func:`repro.bench.crash.run_crash_round`: a child
process applies a deterministic mutation plan through a WAL-backed
:class:`~repro.serve.Server` and kills itself — honestly, ``SIGKILL``,
no cleanup handlers — at a named durability boundary (mid-append around
the write and the fsync, mid-checkpoint around the snapshot rename and
the log truncation, or after committing but before acknowledging).  The
parent recovers the directory and holds the result to the repo's
strongest equivalence:

* the recovered database serves **byte-identical XML with bit-identical
  simulated timings** versus a never-crashed oracle that applied exactly
  the committed prefix — for every workload query, on both engines, and
  (for the rounds that ask) through the cross-validated SQLite mirror;
* retrying the *entire* plan against the restarted server is
  **exactly-once**: committed requests deduplicate from the log's
  recorded results, lost ones apply, and the final state equals the
  full-plan oracle.

Recovery wall-clock times land in ``BENCH_recovery.json`` at the
repository root so CI can flag recovery-time regressions.
"""

import json
import pathlib
import shutil
import statistics
import tempfile
import time

from repro.bench.crash import CRASH_POINT_CHOICES, run_crash_round

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The soak schedule: the no-crash control, then every crash point, seeds
#: staggered so plans differ between rounds.  The final round also runs
#: the recovered fingerprints through the SQLite mirror (which
#: cross-validates every stream against the simulated engine).
ROUNDS = (
    [{"point": None, "after": 1, "seed": 7, "backends": ("simulated",)}]
    + [
        {
            "point": point,
            "after": 2 if point.startswith("append") else 1,
            "seed": 11 + i,
            "backends": ("simulated",),
        }
        for i, point in enumerate(CRASH_POINT_CHOICES)
    ]
)
ROUNDS[-1]["backends"] = ("simulated", "sqlite")

N_OPS = 12


def test_recovery_soak(report_writer):
    rounds = []
    for spec in ROUNDS:
        wal_dir = tempfile.mkdtemp(prefix="bench-crash-")
        started = time.perf_counter()
        try:
            result = run_crash_round(
                wal_dir, n_ops=N_OPS, seed=spec["seed"],
                point=spec["point"], after=spec["after"],
                backends=spec["backends"],
            )
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        result["round_wall_s"] = round(time.perf_counter() - started, 3)
        result["backends"] = list(spec["backends"])

        label = spec["point"] or "control"
        assert result["prefix_diffs"] == [], (label, result["prefix_diffs"])
        assert result["retry_diffs"] == [], (label, result["retry_diffs"])
        if spec["point"] is None:
            assert not result["crashed"]
            assert result["committed"] == N_OPS
        else:
            assert result["crashed"], f"{label} never fired"
        # Exactly-once over the whole plan: everything committed before
        # the crash deduplicates, everything lost applies.
        assert result["retries_deduplicated"] == result["committed"]
        assert result["retries_applied"] == N_OPS - result["committed"]
        rounds.append(result)

    recover_ms = [r["recover_wall_ms"] for r in rounds]
    payload = {
        "experiment": "crash_recovery_soak",
        "rounds": len(rounds),
        "ops_per_round": N_OPS,
        "crash_points": list(CRASH_POINT_CHOICES),
        "recover_ms": {
            "mean": round(statistics.mean(recover_ms), 3),
            "max": round(max(recover_ms), 3),
        },
        "records_replayed": sum(r["records_replayed"] for r in rounds),
        "torn_bytes": sum(r["torn_bytes"] for r in rounds),
        "retries_deduplicated": sum(r["retries_deduplicated"]
                                    for r in rounds),
        "retries_applied": sum(r["retries_applied"] for r in rounds),
        "zero_diffs": all(
            not r["prefix_diffs"] and not r["retry_diffs"] for r in rounds
        ),
        "per_round": [
            {
                "point": r["point"] or "control",
                "after": r["after"],
                "crashed": r["crashed"],
                "acked": r["acked"],
                "committed": r["committed"],
                "recover_wall_ms": round(r["recover_wall_ms"], 3),
                "records_replayed": r["records_replayed"],
                "snapshot_rows": r["snapshot_rows"],
                "torn_bytes": r["torn_bytes"],
                "backends": r["backends"],
            }
            for r in rounds
        ],
    }
    (REPO_ROOT / "BENCH_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    crashed = sum(1 for r in rounds if r["crashed"])
    report_writer(
        "recovery_soak",
        f"{len(rounds)} rounds ({crashed} SIGKILLed) x {N_OPS} mutations: "
        f"recovered in {payload['recover_ms']['mean']:.1f}ms mean / "
        f"{payload['recover_ms']['max']:.1f}ms max\n"
        f"{payload['records_replayed']} records replayed, "
        f"{payload['torn_bytes']} torn bytes dropped, "
        f"{payload['retries_deduplicated']} retries deduplicated / "
        f"{payload['retries_applied']} applied\n"
        f"zero XML/timing diffs vs the never-crashed oracle: "
        f"{payload['zero_diffs']}",
    )
