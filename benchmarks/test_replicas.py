"""Chaos soak for the replica serving layer (randomized, deterministic).

Two scenarios over Query 1 / Configuration A, both asserting the
load-bearing invariants loosely enough for a non-blocking CI job:

* **hard-down soak** — a 3-replica pool whose primary replica fails every
  attempt, with light random faults on the healthy pair.  Every seeded
  run must complete the query through failover with zero user-visible
  errors, produce the byte-identical document with the fault-free
  simulated figures, and shed nothing under light admission load.
* **slow-replica hedging** — a 2-replica pool whose primary carries heavy
  injected connection latency.  Hedged runs must cut the p99 simulated
  makespan versus the unhedged runs of the same seeds.

Per-seed counters land in ``BENCH_replicas.json`` at the repository root
so CI can track failover and hedging behaviour over time.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1
from repro.core.silkroute import SilkRoute
from repro.relational.connection import Connection
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.relational.replicas import ReplicaPool, ReplicaSet

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SOAK_SEEDS = tuple(range(8))
HEDGE_SEEDS = tuple(range(12))


def _fresh_view(db, template_conn, est):
    connection = Connection(
        db, template_conn.engine.cost_model,
        transfer_model=template_conn.transfer_model,
    )
    silk = SilkRoute(connection, estimator=est)
    return connection, silk.define_view(QUERY_1)


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def test_replica_chaos_soak(config_a, report_writer):
    config, db, conn, est = config_a

    _, clean_view = _fresh_view(db, conn, est)
    clean = clean_view.materialize()

    start = time.perf_counter()

    # -- scenario 1: one replica hard down, light faults elsewhere --------
    soak_cells = []
    for seed in SOAK_SEEDS:
        connection, view = _fresh_view(db, conn, est)
        hard_down = FaultPolicy(seed=seed, error_rate=1.0)
        flaky = [FaultPolicy(seed=f"{seed}|h{i}", error_rate=0.1)
                 for i in (1, 2)]
        pool = ReplicaPool(ReplicaSet.from_connection(
            connection, 3, faults=[hard_down, *flaky],
        ))
        result = view.materialize(
            retry=RetryPolicy(max_attempts=6),
            replicas=pool, hedge_ms=50.0, max_concurrent=8, workers=4,
        )
        report = result.report
        # Zero user-visible errors: the hard-down replica is routed
        # around, the document and the paper's figures are untouched,
        # and light load sheds nothing.
        assert result.xml == clean.xml
        assert report.query_ms == clean.report.query_ms
        assert report.transfer_ms == clean.report.transfer_ms
        assert report.shed_streams == ()
        assert report.failovers > 0
        assert all(s.replica != 0 for s in report.streams)
        soak_cells.append({
            "seed": seed,
            "streams": report.n_streams,
            "attempts": report.attempts,
            "faults_injected": report.faults_injected,
            "failovers": report.failovers,
            "hedges": report.hedges,
            "hedge_wins": report.hedge_wins,
            "shed": len(report.shed_streams),
            "byte_identical": result.xml == clean.xml,
        })

    # -- scenario 2: hedging against a slow primary ----------------------
    hedged_ms, unhedged_ms = [], []
    hedge_cells = []
    for seed in HEDGE_SEEDS:
        runs = {}
        for mode, hedge in (("unhedged", None), ("hedged", 25.0)):
            connection, view = _fresh_view(db, conn, est)
            pool = ReplicaPool(ReplicaSet.from_connection(
                connection, 2,
                faults=[FaultPolicy(seed=seed, latency_ms=400.0),
                        FaultPolicy(seed=f"{seed}|fast", latency_ms=5.0)],
            ))
            result = view.materialize(
                retry=RetryPolicy(max_attempts=4),
                replicas=pool, hedge_ms=hedge,
            )
            assert result.xml == clean.xml
            runs[mode] = result.report
        hedged_ms.append(runs["hedged"].elapsed_total_ms)
        unhedged_ms.append(runs["unhedged"].elapsed_total_ms)
        hedge_cells.append({
            "seed": seed,
            "hedged_elapsed_ms": round(runs["hedged"].elapsed_total_ms, 1),
            "unhedged_elapsed_ms": round(
                runs["unhedged"].elapsed_total_ms, 1
            ),
            "hedges": runs["hedged"].hedges,
            "hedge_wins": runs["hedged"].hedge_wins,
        })

    p99_hedged = _percentile(hedged_ms, 0.99)
    p99_unhedged = _percentile(unhedged_ms, 0.99)
    assert p99_hedged < p99_unhedged

    payload = {
        "experiment": "q1_config_a_replica_chaos_soak",
        "wall_seconds": round(time.perf_counter() - start, 3),
        "hard_down_soak": {
            "replicas": 3,
            "permanently_failing": 0,
            "cells": soak_cells,
            "all_byte_identical": all(
                c["byte_identical"] for c in soak_cells
            ),
            "total_shed": sum(c["shed"] for c in soak_cells),
        },
        "slow_replica_hedging": {
            "replicas": 2,
            "hedge_ms": 25.0,
            "p50_hedged_ms": round(_percentile(hedged_ms, 0.5), 1),
            "p50_unhedged_ms": round(_percentile(unhedged_ms, 0.5), 1),
            "p99_hedged_ms": round(p99_hedged, 1),
            "p99_unhedged_ms": round(p99_unhedged, 1),
            "p99_speedup": round(p99_unhedged / p99_hedged, 2),
            "cells": hedge_cells,
        },
    }
    (REPO_ROOT / "BENCH_replicas.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"hard-down soak: {len(soak_cells)} seeds, "
        f"{sum(c['failovers'] for c in soak_cells)} failovers, "
        f"{sum(c['shed'] for c in soak_cells)} shed, "
        f"byte-identical {all(c['byte_identical'] for c in soak_cells)}",
        f"hedging p99: {round(p99_unhedged, 1)}ms -> "
        f"{round(p99_hedged, 1)}ms "
        f"({round(p99_unhedged / p99_hedged, 2)}x)",
    ]
    report_writer("replica_chaos_soak", "\n".join(lines))
