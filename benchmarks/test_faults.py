"""Seeded fault-injection soak: resilience under a matrix of seeds and
error rates.

For each (seed, error_rate) cell the Query 1 / Configuration A plan space
is swept under a :class:`~repro.relational.faults.FaultPolicy` with the
default :class:`~repro.relational.faults.RetryPolicy`, and the recommended
greedy plan is materialized.  The soak asserts the two load-bearing
invariants loosely enough for CI noise-freedom (the job is informational
and non-blocking):

* every plan that completes under faults reports the *same* simulated
  ``query_ms``/``transfer_ms`` as the fault-free sweep — resilience
  overhead never leaks into the paper's figures;
* every materialization that survives its faults is byte-identical to the
  fault-free document.

The per-cell counters (failures, faults injected, retries, simulated
backoff) are written to ``BENCH_faults.json`` at the repository root so CI
can track resilience behaviour over time.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.core.silkroute import SilkRoute
from repro.relational.cache import PlanResultCache
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.common.errors import TransientConnectionError

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SEEDS = (0, 1, 2)
ERROR_RATES = (0.1, 0.3)


def test_fault_soak(config_a, trees_a, report_writer):
    config, db, conn, est = config_a
    tree = trees_a["Q1"]
    retry = RetryPolicy()

    baseline = sweep_partitions(
        tree, db.schema, conn, budget_ms=config.subquery_budget_ms,
        cache=PlanResultCache(),
    )
    by_partition = {t.partition: t for t in baseline.timings}

    silk = SilkRoute(conn, estimator=est)
    view = silk.define_view(QUERY_1)
    clean = view.materialize()

    cells = []
    start = time.perf_counter()
    for seed in SEEDS:
        for rate in ERROR_RATES:
            faults = FaultPolicy(seed=seed, error_rate=rate)
            sweep = sweep_partitions(
                tree, db.schema, conn,
                budget_ms=config.subquery_budget_ms,
                cache=PlanResultCache(),
                retry=retry, faults=faults,
            )
            # Completed plans must carry the fault-free simulated figures.
            for timing in sweep.completed():
                reference = by_partition[timing.partition]
                assert timing.query_ms == reference.query_ms
                assert timing.transfer_ms == reference.transfer_ms

            degraded = 0
            try:
                result = view.materialize(retry=retry, faults=faults)
                assert result.xml == clean.xml
                materialize_ok = True
                degraded = len(result.report.degraded_streams)
            except TransientConnectionError:
                materialize_ok = False

            cells.append({
                "seed": seed,
                "error_rate": rate,
                "plans": len(sweep.timings),
                "failed_plans": len(sweep.failed()),
                "faults_injected": sum(
                    t.faults_injected for t in sweep.timings
                ),
                "retries": sum(t.retries for t in sweep.timings),
                "backoff_ms": round(
                    sum(t.backoff_ms for t in sweep.timings), 1
                ),
                "materialize_byte_identical": materialize_ok,
                "degraded_streams": degraded,
            })

    payload = {
        "experiment": "q1_config_a_fault_soak",
        "retry": {
            "max_attempts": retry.max_attempts,
            "base_ms": retry.base_ms,
            "multiplier": retry.multiplier,
        },
        "wall_seconds": round(time.perf_counter() - start, 3),
        "cells": cells,
    }
    (REPO_ROOT / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"seed={c['seed']} rate={c['error_rate']}: "
        f"{c['failed_plans']}/{c['plans']} plans failed, "
        f"{c['faults_injected']} faults, {c['retries']} retries, "
        f"{c['backoff_ms']}ms backoff, "
        f"materialize {'ok' if c['materialize_byte_identical'] else 'FAILED'}"
        + (f" ({c['degraded_streams']} degraded)"
           if c["degraded_streams"] else "")
        for c in cells
    ]
    report_writer("fault_soak", "\n".join(lines))

    # The soak must actually have exercised the machinery.
    assert any(c["faults_injected"] > 0 for c in cells)
    assert any(c["materialize_byte_identical"] for c in cells)
