"""E7 — Figure 18: the plans selected by the greedy algorithm.

The paper draws, for Queries 1 and 2 on Configurations A and B, the
mandatory (solid) and optional (dashed) edges chosen by genPlan, and
verifies against the Config A exhaustive sweep that the generated family
corresponds directly to the fastest measured plans.
"""


from repro.core.greedy import GreedyPlanner
from repro.core.sqlgen import PlanStyle


def _families(db, estimator, trees):
    lines = []
    plans = {}
    for query in ("Q1", "Q2"):
        for reduce in (False, True):
            planner = GreedyPlanner(
                trees[query], db.schema, estimator,
                style=PlanStyle.OUTER_JOIN, reduce=reduce,
            )
            plan = planner.plan()
            plans[(query, reduce)] = plan
            described = plan.describe()
            lines.append(
                f"{query} reduce={reduce}: "
                f"mandatory={described['mandatory']} "
                f"optional={described['optional']} "
                f"family={described['family_size']} "
                f"oracle_requests={plan.oracle_requests}"
            )
    return lines, plans


def test_fig18_families_config_a(benchmark, config_a, trees_a, sweeps_a,
                                 report_writer):
    config, db, conn, estimator = config_a
    lines, plans = benchmark.pedantic(
        _families, args=(db, estimator, trees_a), rounds=1, iterations=1
    )

    # The paper's validation: the generated plans correspond directly to
    # the fastest plans of the exhaustive sweep.
    verdicts = []
    for (query, reduce), plan in plans.items():
        sweep = sweeps_a.sweep(query, reduce)
        ranked = sorted(sweep.completed(), key=lambda t: t.query_ms)
        rank_of = {t.partition: i for i, t in enumerate(ranked)}
        family = plan.partitions()
        worst = max(rank_of[p] for p in family)
        verdicts.append(
            f"{query} reduce={reduce}: family of {len(family)} within the "
            f"fastest {worst + 1} of {len(ranked)} measured plans"
        )
        assert worst < max(8 * len(family), 40)

    report_writer(
        "fig18_greedy_plans_config_a", "\n".join(lines + verdicts)
    )


def test_fig18_families_config_b(benchmark, config_b, trees_b, report_writer):
    config, db, conn, estimator = config_b
    lines, plans = benchmark.pedantic(
        _families, args=(db, estimator, trees_b), rounds=1, iterations=1
    )
    report_writer("fig18_greedy_plans_config_b", "\n".join(lines))

    for plan in plans.values():
        assert plan.mandatory or plan.optional  # something always qualifies
