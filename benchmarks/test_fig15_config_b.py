"""E6 — Figure 15: Configuration B, greedy-generated plans vs baselines.

At 100 MB the paper could not sweep all 512 plans; it ran the greedy
algorithm's plan family (with view-tree reduction) and compared against the
unified outer-union and fully partitioned plans.  Query-only time: the
outer-union was 5x (Q1) / 4.7x (Q2) slower than the best generated plan and
the fully partitioned plan 2.4x / 2.6x; total time: 4.6x and 3.1x.
"""

import pytest

from repro.bench.report import format_sweep_table
from repro.bench.sweep import run_single_partition
from repro.core.greedy import GreedyPlanner
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle


@pytest.mark.parametrize("query", ["Q1", "Q2"])
def test_fig15_greedy_vs_baselines(benchmark, config_b, trees_b,
                                   report_writer, query):
    config, db, conn, estimator = config_b
    tree = trees_b[query]

    def run():
        plan = GreedyPlanner(tree, db.schema, estimator, reduce=True).plan()
        family = [
            run_single_partition(
                tree, db.schema, conn, partition,
                style=PlanStyle.OUTER_JOIN, reduce=True,
            )
            for partition in plan.partitions()
        ]
        fully = run_single_partition(
            tree, db.schema, conn, fully_partitioned(tree),
            style=PlanStyle.OUTER_JOIN, reduce=True,
        )
        outer_union = run_single_partition(
            tree, db.schema, conn, unified_partition(tree),
            style=PlanStyle.OUTER_UNION, reduce=False,
        )
        return plan, family, fully, outer_union

    plan, family, fully, outer_union = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        [f"greedy #{i} ({t.n_streams} streams)", t.query_ms, t.total_ms]
        for i, t in enumerate(sorted(family, key=lambda t: t.query_ms))
    ]
    rows.append(["fully partitioned", fully.query_ms, fully.total_ms])
    rows.append(["unified outer-union", outer_union.query_ms, outer_union.total_ms])
    table = format_sweep_table(rows, ["plan", "query ms", "total ms"])

    best = min(family, key=lambda t: t.query_ms)
    best_total = min(family, key=lambda t: t.total_ms)
    table += (
        f"\ngreedy family: {plan.describe()}"
        f"\nouter-union query: {outer_union.query_ms / best.query_ms:.2f}x "
        f"best (paper: 5x Q1 / 4.7x Q2)"
        f"\nfully partitioned query: {fully.query_ms / best.query_ms:.2f}x "
        "(paper: 2.4x / 2.6x)"
        f"\nouter-union total: {outer_union.total_ms / best_total.total_ms:.2f}x "
        "(paper: 4.6x)"
        f"\nfully partitioned total: {fully.total_ms / best_total.total_ms:.2f}x "
        "(paper: 3.1x)"
    )
    report_writer(f"fig15_{query.lower()}_config_b", table)

    # Shape: every greedy family member beats both baselines on query time,
    # and the gaps are of the paper's order.
    worst_family = max(family, key=lambda t: t.query_ms)
    assert worst_family.query_ms < fully.query_ms
    assert worst_family.query_ms < outer_union.query_ms
    assert 1.5 < fully.query_ms / best.query_ms < 6.0
    assert 2.5 < outer_union.query_ms / best.query_ms < 12.0
    assert 1.5 < fully.total_ms / best_total.total_ms < 6.0
    assert 2.0 < outer_union.total_ms / best_total.total_ms < 9.0
