"""Observability overhead smoke bench: tracing off must stay free.

The no-overhead-when-off contract (DESIGN.md §9): with no observability
session attached, every instrumentation point resolves to the shared null
tracer/metrics, so the hot path pays only a handful of attribute reads
and no-op context managers per materialization.  This bench pins that
down on the Fig. 13 workload — Query 1 on Configuration A:

* materialize with tracing off, several rounds, take the best wall time;
* count the instrumentation points a fully traced run actually crosses
  (spans + events + metric operations);
* micro-benchmark the null-object cost of one instrumentation point;
* assert (points x per-point cost) / materialize time < 2%.

The estimate deliberately over-counts (a traced run records strictly
more points than the off path traverses) and still must land under 2%.
A direct off-vs-on wall comparison is also recorded — informational
only, since two ~100ms runs on a shared CI runner are too noisy to gate
a 2% bound.

Along the way the bench re-asserts the identity contract: the traced
run's XML and simulated timings are exactly the untraced run's.

Results go to ``BENCH_obs.json`` at the repository root so CI can track
them.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1
from repro.core.options import ExecutionOptions
from repro.core.silkroute import SilkRoute
from repro.obs import NULL_METRICS, NULL_TRACER, ObsOptions, obs_parts

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ROUNDS = 5


def best_wall(fn, rounds=ROUNDS):
    """Best-of-N wall time: robust to transient scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def null_point_cost_s(iterations=200_000):
    """Wall cost of one tracing-off instrumentation point.

    One point is the full off-path idiom: resolve the session, open the
    null span, set attributes, record a metric — all no-ops.
    """
    tracer, metrics = obs_parts(None)
    assert tracer is NULL_TRACER and metrics is NULL_METRICS
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("x", a=1) as span:
            span.set_sim(1.0)
        metrics.inc("c")
    return (time.perf_counter() - start) / iterations


def traced_point_count(obs):
    """How many instrumentation points a traced run crossed."""
    spans = list(obs.tracer.walk())
    events = sum(len(s.events) for s in spans)
    snap = obs.metrics.snapshot()
    metric_ops = (
        len(snap["counters"]) + len(snap["gauges"])
        + sum(h["count"] for h in snap["histograms"].values())
    )
    return len(spans) + events + metric_ops


def test_tracing_off_overhead_under_2_percent(config_a, report_writer):
    config, db, conn, est = config_a
    silk = SilkRoute(conn, estimator=est)
    view = silk.define_view(QUERY_1)

    off_result, off_s = best_wall(lambda: view.materialize())

    obs = ObsOptions()
    on_result, on_s = best_wall(
        lambda: view.materialize(options=ExecutionOptions(obs=obs))
    )

    # Identity contract: observation never perturbs the simulation.
    assert on_result.xml == off_result.xml
    assert on_result.report.query_ms == off_result.report.query_ms
    assert on_result.report.transfer_ms == off_result.report.transfer_ms
    assert (
        on_result.report.elapsed_total_ms
        == off_result.report.elapsed_total_ms
    )

    points = traced_point_count(obs)
    per_point_s = null_point_cost_s()
    estimated_overhead_s = points * per_point_s
    overhead_pct = 100.0 * estimated_overhead_s / off_s

    payload = {
        "experiment": "q1_config_a_materialize_tracing_overhead",
        "materialize_off_seconds": round(off_s, 4),
        "materialize_on_seconds": round(on_s, 4),
        "on_off_ratio": round(on_s / off_s, 3) if off_s else None,
        "instrumentation_points": points,
        "null_point_cost_ns": round(per_point_s * 1e9, 1),
        "estimated_off_overhead_pct": round(overhead_pct, 4),
        "bound_pct": 2.0,
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "obs_tracing_overhead",
        "\n".join(
            [
                "Q1 / Config A materialization, tracing-off overhead",
                f"  tracing off:     {off_s * 1e3:8.1f} ms (best of {ROUNDS})",
                f"  tracing on:      {on_s * 1e3:8.1f} ms (best of {ROUNDS})",
                f"  instr. points:   {points} "
                f"@ {per_point_s * 1e9:.0f} ns null cost",
                f"  est. off overhead: {overhead_pct:.3f}% (bound 2%)",
            ]
        ),
    )
    assert overhead_pct < 2.0, (
        f"tracing-off instrumentation overhead {overhead_pct:.2f}% "
        f"exceeds the 2% contract"
    )
