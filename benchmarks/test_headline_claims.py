"""E10 — the paper's headline claims, asserted in one place.

* "The optimal strategy generates multiple SQL queries, but fewer than the
  fully partitioned strategy" — the sweep optimum is strictly between 1 and
  10 streams (non-reduced Query 1).
* "The optimal strategy executes 2.5 to 5 times faster than the sorted
  outer-union and fully-partitioned strategies" (abstract; with reduction).
* "For both Queries 1 and 2, the ten fastest reduced plans are 2.5 times
  faster than the ten fastest non-reduced plans."
* "For Query 1, 101 plans timed out; for Query 2, no plans timed out."
"""


from repro.bench.report import summarize_sweep
from repro.bench.sweep import run_single_partition
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle


def test_headline_claims(benchmark, config_a, trees_a, sweeps_a, report_writer):
    config, db, conn, _ = config_a

    def run():
        out = {}
        for query in ("Q1", "Q2"):
            tree = trees_a[query]
            reduced = sweeps_a.sweep(query, True)
            plain = sweeps_a.sweep(query, False)
            outer_union = run_single_partition(
                tree, db.schema, conn, unified_partition(tree),
                style=PlanStyle.OUTER_UNION, reduce=False,
                budget_ms=config.subquery_budget_ms,
            )
            out[query] = (plain, reduced, outer_union)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []

    for query, (plain, reduced, outer_union) in results.items():
        tree = trees_a[query]
        plain_summary = summarize_sweep(
            plain, {"fully": fully_partitioned(tree)}, "query_ms"
        )
        reduced_summary = summarize_sweep(
            reduced, {"fully": fully_partitioned(tree)}, "query_ms"
        )
        optimal_streams = plain_summary["optimal"][2]
        speedup = (
            sum(t.query_ms for t in plain.fastest(10))
            / sum(t.query_ms for t in reduced.fastest(10))
        )
        ou_factor = outer_union.query_ms / reduced_summary["optimal"][0]
        fully_factor = reduced_summary["fully"][1]
        lines.append(
            f"{query}: optimal@{optimal_streams} streams (non-reduced); "
            f"reduction speedup {speedup:.2f}x; vs outer-union "
            f"{ou_factor:.2f}x; vs fully partitioned {fully_factor:.2f}x; "
            f"timeouts {len(plain.timed_out())}"
        )

        # Claim 1: 1 < optimal streams < 10.
        assert 1 < optimal_streams < 10
        # Claim 2: optimal 2.5-5x faster than both baselines (with the
        # calibration tolerance band widened to 1.8-5x).
        assert 1.8 < ou_factor < 5.5
        assert 1.8 < fully_factor < 5.5
        # Claim 3: ~2.5x from reduction on the ten fastest.
        assert speedup > 1.5

    # Claim 4: timeouts only for Query 1's chained * edges.
    assert len(results["Q1"][0].timed_out()) > 50
    assert len(results["Q2"][0].timed_out()) == 0

    report_writer("headline_claims", "\n".join(lines))
