"""Wall-clock smoke bench: batch vs tuple engine on a real sweep.

Unlike every other benchmark (which reports *simulated* milliseconds), this
one measures the harness itself: how long the exhaustive Query 1 /
Configuration A sweep takes under the tuple interpreter, the vectorized
batch engine, and the batch engine with the cross-plan
:class:`~repro.relational.cache.PlanResultCache` — verifying along the way
that neither the engine mode nor the cache moves a single simulated
millisecond: every recorded :class:`~repro.bench.sweep.PlanTiming` must be
bit-identical across all three runs.

Wall seconds include SQL generation and dispatch; the *engine-bound*
seconds (accumulated around :meth:`QueryEngine.execute
<repro.relational.engine.QueryEngine.execute>`) isolate the evaluation
work the engine rewrite targets.  The measured speedups are written to
``BENCH_sweep.json`` at the repository root so CI can track them.

Each mode runs against a freshly built configuration so no per-engine
cache (compiled plans, node results, row-width estimates) warmed by an
earlier mode can flatter a later one.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1, load_view
from repro.bench.sweep import sweep_partitions
from repro.core.silkroute import SilkRoute
from repro.relational.engine import QueryEngine
from repro.tpch.configs import CONFIG_A, build_configuration

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed_sweep(engine_mode, cache):
    """Run the Q1/A non-reduced sweep on a fresh configuration; return
    ``(sweep, wall_seconds, engine_seconds)`` where engine_seconds is the
    wall time spent inside ``QueryEngine.execute``."""
    db, conn, _ = build_configuration(CONFIG_A)
    tree = load_view(QUERY_1, db.schema)
    engine_s = [0.0]
    original = QueryEngine.execute

    def instrumented(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return original(self, *args, **kwargs)
        finally:
            engine_s[0] += time.perf_counter() - start

    QueryEngine.execute = instrumented
    try:
        start = time.perf_counter()
        sweep = sweep_partitions(
            tree,
            db.schema,
            conn,
            reduce=False,
            budget_ms=CONFIG_A.subquery_budget_ms,
            cache=cache,
            engine=engine_mode,
        )
        wall_s = time.perf_counter() - start
    finally:
        QueryEngine.execute = original
    return sweep, wall_s, engine_s[0]


def test_engine_sweep_speedup(report_writer):
    tuple_sweep, tuple_wall, tuple_engine = timed_sweep("tuple", False)
    batch_sweep, batch_wall, batch_engine = timed_sweep("batch", False)
    cached_sweep, cached_wall, cached_engine = timed_sweep("batch", True)

    # Neither the engine mode nor the cache may move a single simulated
    # millisecond.
    assert batch_sweep.timings == tuple_sweep.timings
    assert cached_sweep.timings == tuple_sweep.timings
    assert len(tuple_sweep.timings) == 512

    engine_speedup = (
        tuple_engine / batch_engine if batch_engine else float("inf")
    )
    wall_speedup = tuple_wall / batch_wall if batch_wall else float("inf")
    cache_speedup = (
        tuple_wall / cached_wall if cached_wall else float("inf")
    )
    stats = cached_sweep.cache_stats
    payload = {
        "experiment": "q1_config_a_nonreduced_sweep",
        "plans": len(tuple_sweep.timings),
        # Legacy keys: wall seconds of the seed (tuple, no result cache)
        # sweep vs the shipped default (batch engine + result cache).
        "uncached_seconds": round(tuple_wall, 3),
        "cached_seconds": round(cached_wall, 3),
        "speedup": round(cache_speedup, 2),
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "entries": stats.entries,
            "bytes": int(stats.current_bytes),
        },
        "tuple_engine": {
            "wall_seconds": round(tuple_wall, 3),
            "engine_seconds": round(tuple_engine, 3),
        },
        "batch_engine": {
            "wall_seconds": round(batch_wall, 3),
            "engine_seconds": round(batch_engine, 3),
            "cached_wall_seconds": round(cached_wall, 3),
            "cached_engine_seconds": round(cached_engine, 3),
        },
        "engine_speedup": round(engine_speedup, 2),
        "wall_speedup": round(wall_speedup, 2),
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "wallclock_sweep_engines",
        "\n".join(
            [
                "Q1 / Config A non-reduced 512-plan sweep (wall-clock)",
                f"  tuple  uncached: {tuple_wall:8.2f} s wall, "
                f"{tuple_engine:8.2f} s engine",
                f"  batch  uncached: {batch_wall:8.2f} s wall, "
                f"{batch_engine:8.2f} s engine",
                f"  batch  cached:   {cached_wall:8.2f} s wall, "
                f"{cached_engine:8.2f} s engine   ({stats})",
                f"  engine-bound speedup: {engine_speedup:.2f}x   "
                f"wall speedup: {wall_speedup:.2f}x",
            ]
        ),
    )
    # Loose bounds: the acceptance target is >=5x engine-bound on a quiet
    # machine; keep the assertions tolerant of loaded CI runners.
    assert engine_speedup >= 3.0
    assert wall_speedup >= 1.5


def test_concurrent_dispatch_makespan(config_a, report_writer):
    """Concurrent dispatch of one multi-stream plan.

    Sequentially a plan's simulated elapsed query time is the *sum* of its
    subquery server times; with one worker per stream it is their *max*
    (plus nothing — the dispatcher has no simulated overhead).  The
    speedup is deterministic: it only depends on the plan's server-time
    profile, so the assertion is exact even on loaded CI runners.  Real
    wall seconds are recorded for information only — the pure-Python
    engine holds the GIL, so threads overlap simulated, not real, work.
    """
    _, db, conn, _ = config_a
    view = SilkRoute(conn).define_view(QUERY_1)
    partition = view.fully_partitioned()

    start = time.perf_counter()
    _, streams, seq = view.execute_partition(partition, reduce=False)
    seq_wall = time.perf_counter() - start
    workers = seq.n_streams
    start = time.perf_counter()
    _, _, con = view.execute_partition(
        partition, reduce=False, workers=workers
    )
    con_wall = time.perf_counter() - start

    max_server = max(s.server_ms for s in streams)
    speedup = seq.elapsed_query_ms / con.elapsed_query_ms
    payload = {
        "experiment": "q1_config_a_concurrent_dispatch",
        "streams": seq.n_streams,
        "workers": workers,
        "sequential_elapsed_query_ms": round(seq.elapsed_query_ms, 3),
        "concurrent_elapsed_query_ms": round(con.elapsed_query_ms, 3),
        "max_stream_server_ms": round(max_server, 3),
        "speedup": round(speedup, 2),
        "sequential_wall_s": round(seq_wall, 3),
        "concurrent_wall_s": round(con_wall, 3),
    }
    (REPO_ROOT / "BENCH_dispatch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "wallclock_concurrent_dispatch",
        "\n".join(
            [
                f"Q1 / Config A fully-partitioned plan, {seq.n_streams} "
                f"streams, {workers} workers",
                f"  sequential elapsed: {seq.elapsed_query_ms:10.2f} ms "
                f"(simulated; wall {seq_wall:.2f} s)",
                f"  concurrent elapsed: {con.elapsed_query_ms:10.2f} ms "
                f"(simulated; wall {con_wall:.2f} s)",
                f"  max stream server:  {max_server:10.2f} ms   "
                f"speedup {speedup:.2f}x",
            ]
        ),
    )
    # Per-stream results and simulated sums are identical either way.
    assert con.query_ms == seq.query_ms
    assert con.transfer_ms == seq.transfer_ms
    # With a worker per stream the makespan IS the slowest subquery.
    assert con.elapsed_query_ms == max_server
    assert speedup >= 1.5
