"""Wall-clock smoke bench: the cross-plan result cache on a real sweep.

Unlike every other benchmark (which reports *simulated* milliseconds), this
one measures the harness itself: how long the exhaustive Query 1 /
Configuration A sweep takes with and without the
:class:`~repro.relational.cache.PlanResultCache`, verifying along the way
that caching changes only wall-clock — every recorded
:class:`~repro.bench.sweep.PlanTiming` must be bit-identical.

The measured speedup is written to ``BENCH_sweep.json`` at the repository
root so CI can track it.
"""

import json
import pathlib
import time

from repro.bench.sweep import sweep_partitions

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed_sweep(tree, db, conn, config, cache):
    start = time.perf_counter()
    sweep = sweep_partitions(
        tree,
        db.schema,
        conn,
        reduce=False,
        budget_ms=config.subquery_budget_ms,
        cache=cache,
    )
    return sweep, time.perf_counter() - start


def test_cached_sweep_speedup(config_a, trees_a, report_writer):
    config, db, conn, _ = config_a
    tree = trees_a["Q1"]

    uncached, uncached_s = timed_sweep(tree, db, conn, config, cache=False)
    cached, cached_s = timed_sweep(tree, db, conn, config, cache=True)

    # The cache must not move a single simulated millisecond.
    assert cached.timings == uncached.timings
    assert len(cached.timings) == 512

    speedup = uncached_s / cached_s if cached_s else float("inf")
    stats = cached.cache_stats
    payload = {
        "experiment": "q1_config_a_nonreduced_sweep",
        "plans": len(cached.timings),
        "uncached_seconds": round(uncached_s, 3),
        "cached_seconds": round(cached_s, 3),
        "speedup": round(speedup, 2),
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "entries": stats.entries,
            "bytes": int(stats.current_bytes),
        },
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "wallclock_sweep_cache",
        "\n".join(
            [
                "Q1 / Config A non-reduced 512-plan sweep (wall-clock)",
                f"  uncached: {uncached_s:8.2f} s",
                f"  cached:   {cached_s:8.2f} s   ({speedup:.1f}x, "
                f"{stats})",
            ]
        ),
    )
    # Loose bound: the acceptance target is >=3x on a quiet machine; keep
    # the assertion tolerant of loaded CI runners.
    assert speedup >= 1.5
