"""Wall-clock smoke bench: the cross-plan result cache on a real sweep.

Unlike every other benchmark (which reports *simulated* milliseconds), this
one measures the harness itself: how long the exhaustive Query 1 /
Configuration A sweep takes with and without the
:class:`~repro.relational.cache.PlanResultCache`, verifying along the way
that caching changes only wall-clock — every recorded
:class:`~repro.bench.sweep.PlanTiming` must be bit-identical.

The measured speedup is written to ``BENCH_sweep.json`` at the repository
root so CI can track it.
"""

import json
import pathlib
import time

from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.core.silkroute import SilkRoute

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def timed_sweep(tree, db, conn, config, cache):
    start = time.perf_counter()
    sweep = sweep_partitions(
        tree,
        db.schema,
        conn,
        reduce=False,
        budget_ms=config.subquery_budget_ms,
        cache=cache,
    )
    return sweep, time.perf_counter() - start


def test_cached_sweep_speedup(config_a, trees_a, report_writer):
    config, db, conn, _ = config_a
    tree = trees_a["Q1"]

    uncached, uncached_s = timed_sweep(tree, db, conn, config, cache=False)
    cached, cached_s = timed_sweep(tree, db, conn, config, cache=True)

    # The cache must not move a single simulated millisecond.
    assert cached.timings == uncached.timings
    assert len(cached.timings) == 512

    speedup = uncached_s / cached_s if cached_s else float("inf")
    stats = cached.cache_stats
    payload = {
        "experiment": "q1_config_a_nonreduced_sweep",
        "plans": len(cached.timings),
        "uncached_seconds": round(uncached_s, 3),
        "cached_seconds": round(cached_s, 3),
        "speedup": round(speedup, 2),
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "entries": stats.entries,
            "bytes": int(stats.current_bytes),
        },
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "wallclock_sweep_cache",
        "\n".join(
            [
                "Q1 / Config A non-reduced 512-plan sweep (wall-clock)",
                f"  uncached: {uncached_s:8.2f} s",
                f"  cached:   {cached_s:8.2f} s   ({speedup:.1f}x, "
                f"{stats})",
            ]
        ),
    )
    # Loose bound: the acceptance target is >=3x on a quiet machine; keep
    # the assertion tolerant of loaded CI runners.
    assert speedup >= 1.5


def test_concurrent_dispatch_makespan(config_a, report_writer):
    """Concurrent dispatch of one multi-stream plan.

    Sequentially a plan's simulated elapsed query time is the *sum* of its
    subquery server times; with one worker per stream it is their *max*
    (plus nothing — the dispatcher has no simulated overhead).  The
    speedup is deterministic: it only depends on the plan's server-time
    profile, so the assertion is exact even on loaded CI runners.  Real
    wall seconds are recorded for information only — the pure-Python
    engine holds the GIL, so threads overlap simulated, not real, work.
    """
    _, db, conn, _ = config_a
    view = SilkRoute(conn).define_view(QUERY_1)
    partition = view.fully_partitioned()

    start = time.perf_counter()
    _, streams, seq = view.execute_partition(partition, reduce=False)
    seq_wall = time.perf_counter() - start
    workers = seq.n_streams
    start = time.perf_counter()
    _, _, con = view.execute_partition(
        partition, reduce=False, workers=workers
    )
    con_wall = time.perf_counter() - start

    max_server = max(s.server_ms for s in streams)
    speedup = seq.elapsed_query_ms / con.elapsed_query_ms
    payload = {
        "experiment": "q1_config_a_concurrent_dispatch",
        "streams": seq.n_streams,
        "workers": workers,
        "sequential_elapsed_query_ms": round(seq.elapsed_query_ms, 3),
        "concurrent_elapsed_query_ms": round(con.elapsed_query_ms, 3),
        "max_stream_server_ms": round(max_server, 3),
        "speedup": round(speedup, 2),
        "sequential_wall_s": round(seq_wall, 3),
        "concurrent_wall_s": round(con_wall, 3),
    }
    (REPO_ROOT / "BENCH_dispatch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "wallclock_concurrent_dispatch",
        "\n".join(
            [
                f"Q1 / Config A fully-partitioned plan, {seq.n_streams} "
                f"streams, {workers} workers",
                f"  sequential elapsed: {seq.elapsed_query_ms:10.2f} ms "
                f"(simulated; wall {seq_wall:.2f} s)",
                f"  concurrent elapsed: {con.elapsed_query_ms:10.2f} ms "
                f"(simulated; wall {con_wall:.2f} s)",
                f"  max stream server:  {max_server:10.2f} ms   "
                f"speedup {speedup:.2f}x",
            ]
        ),
    )
    # Per-stream results and simulated sums are identical either way.
    assert con.query_ms == seq.query_ms
    assert con.transfer_ms == seq.transfer_ms
    # With a worker per stream the makespan IS the slowest subquery.
    assert con.elapsed_query_ms == max_server
    assert speedup >= 1.5
