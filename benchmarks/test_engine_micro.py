"""Per-operator engine micro-benchmarks: batch vs tuple throughput.

Each case builds one algebra plan that stresses a single operator over the
Configuration A TPC-H sample and measures wall-clock rows/second in three
modes:

* ``tuple`` — the row-at-a-time interpreter (fresh engine per repetition);
* ``batch cold`` — the vectorized engine with empty caches (fresh engine
  per repetition: pays plan compilation and the kernels' real row work);
* ``batch warm`` — the vectorized engine re-executing on one engine, where
  the node-result cache serves every sub-plan and only the charge
  accounting runs.

Identity is asserted on every case: rows, simulated ``server_ms``, and
``rows_examined`` must match the tuple engine bit-for-bit at every batch
size.  Throughput numbers go to ``BENCH_engine.json`` at the repository
root (a non-blocking CI artifact); the perf assertions here are
deliberately loose — regressions are tracked by the committed JSON, not by
failing CI on a noisy runner.
"""

import json
import pathlib
import time

from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.engine import QueryEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BATCH_SIZES = [256, 4096, 65536]
COLD_REPS = 10
WARM_REPS = 50


def _operator_plans(schema):
    """One plan per operator label, each dominated by that operator."""
    lineitem = Scan(schema.table("LineItem"), "l")
    orders = Scan(schema.table("Orders"), "o")

    filtered = Filter(
        lineitem,
        Comparison(">", ColumnRef("l.qty"), Literal(10)),
    )
    projected = Project(
        lineitem,
        [
            ProjectItem(ColumnRef("l.orderkey"), "orderkey"),
            ProjectItem(ColumnRef("l.qty"), "qty"),
            ConstantColumn("tag", 1),
        ],
    )
    distinct = Distinct(
        Project(lineitem, [ProjectItem(ColumnRef("l.suppkey"), "suppkey")])
    )
    joined = InnerJoin(orders, lineitem, [("o.orderkey", "l.orderkey")])
    union = OuterUnion(
        [
            Project(orders, [ProjectItem(ColumnRef("o.orderkey"), "key")]),
            Project(
                lineitem, [ProjectItem(ColumnRef("l.orderkey"), "key")]
            ),
        ],
        distinct=True,
    )
    sort = Sort(lineitem, ["l.suppkey", "l.orderkey", "l.lno"])

    return {
        "scan": lineitem,
        "filter": filtered,
        "project": projected,
        "distinct": distinct,
        "join": joined,
        "union": union,
        "sort": sort,
    }


def _timed(make_engine, plan, reps, fresh_each):
    engine = make_engine()
    reference = engine.execute(plan)
    start = time.perf_counter()
    for _ in range(reps):
        if fresh_each:
            engine = make_engine()
        engine.execute(plan)
    elapsed = time.perf_counter() - start
    return reference, elapsed


def test_engine_micro(config_a, report_writer):
    _, db, _, _ = config_a
    plans = _operator_plans(db.schema)

    cases = {}
    lines = ["Per-operator throughput, rows examined / second"]
    for label, plan in plans.items():
        tuple_ref, tuple_s = _timed(
            lambda: QueryEngine(db, engine="tuple"), plan,
            COLD_REPS, fresh_each=True,
        )
        rows_per_exec = tuple_ref.rows_examined
        case = {
            "rows_examined": rows_per_exec,
            "tuple_rows_per_s": round(
                rows_per_exec * COLD_REPS / tuple_s
            ) if tuple_s else None,
            "batch": {},
        }
        lines.append(
            f"  {label:10s} tuple {case['tuple_rows_per_s'] or 0:>12,}"
        )
        for batch_size in BATCH_SIZES:
            def make_batch_engine(bs=batch_size):
                return QueryEngine(db, engine="batch", batch_size=bs)

            cold_ref, cold_s = _timed(
                make_batch_engine, plan, COLD_REPS, fresh_each=True
            )
            warm_ref, warm_s = _timed(
                make_batch_engine, plan, WARM_REPS, fresh_each=False
            )
            # Bit-identity at every batch size, cold and warm.
            for result in (cold_ref, warm_ref):
                assert result.rows == tuple_ref.rows, label
                assert result.server_ms == tuple_ref.server_ms, label
                assert result.rows_examined == tuple_ref.rows_examined
            cold_rate = (
                round(rows_per_exec * COLD_REPS / cold_s) if cold_s else None
            )
            warm_rate = (
                round(rows_per_exec * WARM_REPS / warm_s) if warm_s else None
            )
            case["batch"][str(batch_size)] = {
                "cold_rows_per_s": cold_rate,
                "warm_rows_per_s": warm_rate,
            }
            lines.append(
                f"  {label:10s} batch/{batch_size:<6d} "
                f"cold {cold_rate or 0:>12,}   warm {warm_rate or 0:>12,}"
            )
        cases[label] = case

    payload = {
        "experiment": "per_operator_engine_micro",
        "cold_reps": COLD_REPS,
        "warm_reps": WARM_REPS,
        "batch_sizes": BATCH_SIZES,
        "operators": cases,
    }
    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer("engine_micro", "\n".join(lines))

    # Loose sanity: warm batch execution (node-cache hits) must beat the
    # tuple interpreter on the expensive operators even on a loaded runner.
    for label in ("join", "sort", "distinct"):
        warm = max(
            entry["warm_rows_per_s"] or 0
            for entry in cases[label]["batch"].values()
        )
        assert warm > (cases[label]["tuple_rows_per_s"] or 0), label
