"""Shared benchmark fixtures: configurations, view trees, and a sweep cache.

Each benchmark regenerates one of the paper's tables or figures.  Timings
inside the experiments are *simulated* milliseconds from the deterministic
cost model (see DESIGN.md); pytest-benchmark's wall-clock numbers only
measure the harness itself.

Every experiment's output is printed and also written to
``benchmarks/results/<name>.txt`` so `bench_output.txt` plus the results
directory capture the full reproduction.
"""

import pathlib

import pytest

from repro.bench.queries import QUERY_1, QUERY_2, load_view
from repro.bench.sweep import sweep_partitions
from repro.core.sqlgen import PlanStyle
from repro.tpch.configs import CONFIG_A, CONFIG_B, build_configuration

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report_writer(results_dir):
    def write(name, text):
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(f"===== {name} =====")
        print(text)

    return write


@pytest.fixture(scope="session")
def config_a():
    db, conn, est = build_configuration(CONFIG_A)
    return CONFIG_A, db, conn, est


@pytest.fixture(scope="session")
def config_b():
    db, conn, est = build_configuration(CONFIG_B)
    return CONFIG_B, db, conn, est


@pytest.fixture(scope="session")
def trees_a(config_a):
    _, db, _, _ = config_a
    return {
        "Q1": load_view(QUERY_1, db.schema),
        "Q2": load_view(QUERY_2, db.schema),
    }


@pytest.fixture(scope="session")
def trees_b(config_b):
    _, db, _, _ = config_b
    return {
        "Q1": load_view(QUERY_1, db.schema),
        "Q2": load_view(QUERY_2, db.schema),
    }


class SweepCache:
    """Memoizes full 512-plan sweeps so Figs. 13/14 and the headline-claims
    bench share one execution per (query, reduce) combination."""

    def __init__(self, config, db, conn, trees):
        self.config = config
        self.db = db
        self.conn = conn
        self.trees = trees
        self._cache = {}

    def sweep(self, query, reduce, style=PlanStyle.OUTER_JOIN):
        key = (query, reduce, style)
        if key not in self._cache:
            tree = self.trees[query]
            self._cache[key] = sweep_partitions(
                tree,
                self.db.schema,
                self.conn,
                style=style,
                reduce=reduce,
                budget_ms=self.config.subquery_budget_ms,
            )
        return self._cache[key]


@pytest.fixture(scope="session")
def sweeps_a(config_a, trees_a):
    config, db, conn, _ = config_a
    return SweepCache(config, db, conn, trees_a)
