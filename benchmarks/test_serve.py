"""Serving-layer bench: sustained QPS and tail latency of the
multi-tenant query service under concurrency, faults, and replica chaos.

Eight client threads hammer one :class:`~repro.serve.Server` over the
Configuration-A database with a mixed workload — mostly repeated Query 1
materializations (the coalescing / document-cache sweet spot), a slice
of fully-partitioned plans, a slice routed through a 3-replica pool with
seeded fault injection and hedged requests, and periodic mutations that
invalidate the dependent cache entries live.

Identity is the hard constraint: after the storm, the server's execution
log is replayed serially on a fresh database and every document must
match byte-for-byte with identical simulated timings — zero diffs.  The
wall-clock QPS and latency percentiles land in ``BENCH_serve.json`` at
the repository root so CI can track serving throughput.
"""

import json
import pathlib
import threading
import time

from repro.bench.queries import QUERY_1, QUERY_2
from repro.core.options import ExecutionOptions
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.serve import Server
from repro.session import Session
from repro.tpch.configs import CONFIG_A, build_configuration

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CLIENTS = 8
REQUESTS_PER_CLIENT = 40

#: Every 3-replica chaos request retries around one seeded-faulty replica
#: and hedges slow streams; the XML must stay byte-identical regardless.
CHAOS_OPTIONS = ExecutionOptions(
    retry=RetryPolicy(max_attempts=3),
    faults=FaultPolicy(seed=17, error_rate=0.05),
    replicas=3,
    hedge_ms=50.0,
)


def build_server():
    _, connection, estimator = build_configuration(CONFIG_A)
    return Server(
        session=Session(connection, estimator=estimator),
        queries={"q1": QUERY_1, "q2": QUERY_2},
    )


def run_client(server, ci, live, errors, barrier):
    try:
        barrier.wait(60)
        for i in range(REQUESTS_PER_CLIENT):
            rid = f"c{ci}-{i}"
            slot = (ci + i) % 10
            if slot == 9:
                # Periodic writes keep the incremental-maintenance path
                # hot: each one moves a generation and invalidates the
                # dependent plan/splice/document entries mid-storm.
                live[rid] = server.mutate(
                    ("Supplier", "Customer")[ci % 2], op="update",
                    rows=5, seed=ci * 1000 + i,
                    tenant=f"t{ci}", request_id=rid,
                )
            elif slot == 8:
                live[rid] = server.query(
                    "q1", tenant=f"t{ci}", request_id=rid,
                    partition="unified", options=CHAOS_OPTIONS,
                )
            elif slot >= 6:
                live[rid] = server.query(
                    "q1", tenant=f"t{ci}", request_id=rid,
                    partition="fully-partitioned",
                )
            else:
                live[rid] = server.query(
                    "q1", tenant=f"t{ci}", request_id=rid,
                    partition="unified",
                )
    except Exception as exc:  # pragma: no cover - surfaced by the assert
        errors.append((ci, exc))


def test_serve_sustained_load(report_writer):
    server = build_server()
    # Warm the caches the way a steady-state service runs.
    server.query("q1", partition="unified")

    live = {}
    errors = []
    barrier = threading.Barrier(CLIENTS)
    threads = [
        threading.Thread(target=run_client,
                         args=(server, ci, live, errors, barrier))
        for ci in range(CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    wall_s = time.perf_counter() - start
    assert not any(t.is_alive() for t in threads), "serving storm hung"
    assert not errors, errors

    stats = server.stats()
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert stats["requests"] == total + 1  # the warmup request
    qps = total / wall_s

    # The serial oracle: replay the log on a fresh database and diff
    # every document and simulated timing against what the live clients
    # actually received.
    _, replay_conn, replay_estimator = build_configuration(CONFIG_A)
    replay_start = time.perf_counter()
    replayed = server.replay(
        session=Session(replay_conn, estimator=replay_estimator),
    )
    replay_s = time.perf_counter() - replay_start
    log = server.execution_log()
    byte_diffs = timing_diffs = 0
    for entry, theirs in zip(log[1:], replayed[1:]):  # skip the warmup
        mine = live[entry["request_id"]]
        if entry["kind"] == "query":
            if theirs.xml != mine.xml:
                byte_diffs += 1
            if (theirs.report.query_ms != mine.report.query_ms
                    or theirs.report.transfer_ms != mine.report.transfer_ms):
                timing_diffs += 1
        elif theirs.mutated != mine.mutated:
            byte_diffs += 1
    assert byte_diffs == 0
    assert timing_diffs == 0

    latency = stats["latency_ms"]
    # Loose in-test floor; the committed JSON tracks the real figures.
    assert qps > 10.0

    payload = {
        "experiment": "q1_config_a_serve_storm",
        "clients": CLIENTS,
        "requests": total,
        "mutations": stats["mutations"],
        "chaos_requests": total // 10,
        "wall_seconds": round(wall_s, 3),
        "qps": round(qps, 1),
        "coalesced": stats["coalesced"],
        "shed": stats["shed"],
        "errors": stats["errors"],
        "latency_ms": {
            "p50": round(latency["p50"], 3),
            "p95": round(latency["p95"], 3),
            "p99": round(latency["p99"], 3),
            "max": round(latency["max"], 3),
        },
        "replay_seconds": round(replay_s, 3),
        "byte_diffs": byte_diffs,
        "timing_diffs": timing_diffs,
        "plan_cache": stats.get("plan_cache"),
    }
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report_writer(
        "serve_storm",
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests in "
        f"{wall_s:.2f}s = {qps:.0f} QPS sustained "
        f"({stats['mutations']} live mutations, "
        f"{stats['coalesced']} coalesced)\n"
        f"latency p50 {latency['p50']:.1f}ms / p95 {latency['p95']:.1f}ms "
        f"/ p99 {latency['p99']:.1f}ms\n"
        f"serial replay of {len(log)} log entries in {replay_s:.2f}s: "
        f"{byte_diffs} byte diffs, {timing_diffs} timing diffs",
    )
