"""E1 — the Sec. 2 timing table.

Paper (TPC-H 100 MB = Configuration B, Query 1)::

    No. of queries   Total Time   Query Time
    10               1837s        584s
    5                 592s        244s
    1                2729s       1234s

The 10-query plan is the fully partitioned strategy, the 1-query plan the
sorted outer-union, and the winning middle plan has a handful of streams.
Absolute numbers here are simulated ms; the *shape* — the middle plan wins,
the endpoints lose by 2.5-5x — is the reproduced result.
"""

from repro.bench.report import format_sweep_table
from repro.bench.sweep import run_single_partition
from repro.core.greedy import GreedyPlanner
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle


def test_sec2_plan_comparison(benchmark, config_b, trees_b, report_writer):
    config, db, conn, estimator = config_b
    tree = trees_b["Q1"]

    def run():
        fully = run_single_partition(
            tree, db.schema, conn, fully_partitioned(tree),
            style=PlanStyle.OUTER_JOIN, reduce=True,
        )
        greedy = GreedyPlanner(
            tree, db.schema, estimator, reduce=True
        ).plan()
        best = min(
            (
                run_single_partition(
                    tree, db.schema, conn, partition,
                    style=PlanStyle.OUTER_JOIN, reduce=True,
                )
                for partition in greedy.partitions()
            ),
            key=lambda t: t.total_ms,
        )
        outer_union = run_single_partition(
            tree, db.schema, conn, unified_partition(tree),
            style=PlanStyle.OUTER_UNION, reduce=False,
        )
        return fully, best, outer_union

    fully, best, outer_union = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [fully.n_streams, fully.total_ms, fully.query_ms],
        [best.n_streams, best.total_ms, best.query_ms],
        [outer_union.n_streams, outer_union.total_ms, outer_union.query_ms],
    ]
    table = format_sweep_table(
        rows, ["No. of queries", "Total Time (ms)", "Query Time (ms)"]
    )
    paper = (
        "paper (seconds): 10 -> 1837/584 ; 5 -> 592/244 ; 1 -> 2729/1234"
    )
    report_writer("sec2_table", table + "\n" + paper)

    # Shape assertions: the middle plan wins both metrics; the outer-union
    # single query is the slowest; factors are in the paper's 2-5x band.
    assert 1 < best.n_streams < 10
    assert best.total_ms < fully.total_ms < outer_union.total_ms
    assert best.query_ms < fully.query_ms < outer_union.query_ms
    assert 1.5 < fully.total_ms / best.total_ms < 6
    assert 2.0 < outer_union.total_ms / best.total_ms < 8
