"""Partner-specific exchange formats: two different XML views of one
database, with Skolem-function element fusion.

The paper stresses that "DTDs for data exchange are created by agreement
between partners and will not match each partner's relational schema
exactly" — the same database must be publishable under several different
exchange DTDs.  This example publishes the TPC-H fragment two ways:

1. a *region-centric* catalog for a logistics partner (regions contain
   nations contain suppliers), and
2. a flat *directory* for a procurement partner where suppliers and
   customers are fused into a single <party> list via a user Skolem
   function.

Run::

    python examples/custom_catalog.py
"""

from repro import Session, parse_dtd, validate_document
from repro.tpch import CONFIG_A, build_configuration

REGION_CATALOG = """
from Region $r
construct
  <region>
    <rname>$r.name</rname>
    { from Nation $n
      where $r.regionkey = $n.regionkey
      construct
        <nation>
          <nname>$n.name</nname>
          { from Supplier $s
            where $n.nationkey = $s.nationkey
            construct <supplier>$s.name</supplier> }
        </nation> }
  </region>
"""

REGION_DTD = parse_dtd("""
<!ELEMENT region (rname, nation*)>
<!ELEMENT rname (#PCDATA)>
<!ELEMENT nation (nname, supplier*)>
<!ELEMENT nname (#PCDATA)>
<!ELEMENT supplier (#PCDATA)>
""")

# Suppliers and customers fused into one <party> element type via the
# explicit Skolem function Party(name): the planner produces one node with
# two datalog rules (one per source table).
PARTY_DIRECTORY = """
from Region $r0
construct
  <directory>
    { from Supplier $s
      construct <party ID=Party($s.name)>$s.name</party> }
    { from Customer $c
      construct <party ID=Party($c.name)>$c.name</party> }
  </directory>
"""


def main():
    database, connection, estimator = build_configuration(CONFIG_A)
    session = Session(connection, estimator=estimator)

    print("=== region-centric catalog ===")
    catalog = session.view(REGION_CATALOG)
    print("edge labels:",
          {n.sfi: n.label for n in catalog.tree.nodes if n.parent})
    result = session.materialize(REGION_CATALOG, root_tag="catalog", indent=2)
    validate_document(result.xml, REGION_DTD, root="catalog")
    print(f"valid against the region DTD; {len(result.xml)} characters, "
          f"{result.report.n_streams} stream(s)")
    print(result.xml[:400], "...")

    print("\n=== fused party directory ===")
    directory = session.view(PARTY_DIRECTORY)
    party_nodes = [n for n in directory.tree.nodes if n.tag == "party"]
    print(f"<party> template nodes: {len(party_nodes)} "
          f"(with {len(party_nodes[0].rules)} datalog rules — one per source)")
    result = session.materialize(
        PARTY_DIRECTORY, "fully-partitioned", root_tag=None, indent=2
    )
    n_parties = result.xml.count("<party>")
    n_expected = len(database.table("Supplier")) + len(database.table("Customer"))
    print(f"parties published: {n_parties} "
          f"(suppliers + customers = {n_expected})")
    print(result.xml[:320], "...")


if __name__ == "__main__":
    main()
