"""Plan-space exploration: sweep all 512 decompositions of Query 1 and
watch the greedy algorithm find the fastest ones.

Reproduces the Sec. 2 experiment interactively: enumerates every spanning
forest of the view tree, times each plan on the simulated RDBMS, draws the
Fig. 13-style distribution as text, and checks where the greedy algorithm's
plan family lands in the ranking.  Run::

    python examples/plan_exploration.py
"""

from repro import (
    GreedyPlanner,
    PlanStyle,
    Session,
    fully_partitioned,
    unified_partition,
)
from repro.bench.queries import QUERY_1
from repro.bench.report import format_series
from repro.tpch import CONFIG_A, build_configuration


def main():
    config = CONFIG_A
    database, connection, estimator = build_configuration(config)
    session = Session(connection, estimator=estimator)
    tree = session.view(QUERY_1).tree
    print(f"view tree: {tree}  =>  2^{len(tree.edges)} = "
          f"{2 ** len(tree.edges)} possible plans")

    print("\nsweeping every plan (view-tree reduction on)...")

    def progress(i, total):
        if i % 128 == 0 or i == total:
            print(f"  {i}/{total}")

    sweep = session.sweep(
        QUERY_1, style=PlanStyle.OUTER_JOIN, reduce=True,
        budget_ms=config.subquery_budget_ms, progress=progress,
    ).sweep

    print()
    print(format_series(sweep, "query_ms",
                        title="query-only time by stream count (ms)"))

    best = sweep.fastest(5)
    print("\nfive fastest plans:")
    for timing in best:
        print(f"  {timing.query_ms:7.0f}ms  {timing.n_streams} streams  "
              f"{timing.partition}")

    named = {
        "unified": unified_partition(tree),
        "fully partitioned": fully_partitioned(tree),
    }
    for name, partition in named.items():
        timing = sweep.timing_for(partition)
        shown = "TIMEOUT" if timing.timed_out else f"{timing.query_ms:.0f}ms"
        print(f"  {name}: {shown}")

    print("\nrunning the greedy plan-generation algorithm...")
    planner = GreedyPlanner(tree, database.schema, estimator, reduce=True)
    plan = planner.plan()
    print(f"  {plan.describe()}")
    print(f"  oracle requests: {plan.oracle_requests} "
          f"(worst case {len(tree.edges) ** 2})")

    ranked = sorted(sweep.completed(), key=lambda t: t.query_ms)
    rank_of = {t.partition: i for i, t in enumerate(ranked)}
    ranks = sorted(rank_of[p] for p in plan.partitions())
    print(f"  family ranks in the exhaustive sweep: {ranks} "
          f"(of {len(ranked)} completed plans)")


if __name__ == "__main__":
    main()
