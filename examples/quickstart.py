"""Quickstart: publish a small relational database as XML.

Builds a three-table database from scratch, defines an RXL view over it,
and materializes the XML — letting the greedy planner pick the SQL
decomposition.  Run::

    python examples/quickstart.py
"""

from repro import (
    Column,
    Database,
    DatabaseSchema,
    ForeignKey,
    Session,
    SqlType,
    TableSchema,
)

# 1. A relational schema: albums by artists, with labels.
schema = DatabaseSchema(
    tables=[
        TableSchema(
            "Label",
            [Column("labelid", SqlType.INTEGER),
             Column("name", SqlType.VARCHAR)],
            key=["labelid"],
        ),
        TableSchema(
            "Artist",
            [Column("artistid", SqlType.INTEGER),
             Column("name", SqlType.VARCHAR),
             Column("labelid", SqlType.INTEGER)],
            key=["artistid"],
        ),
        TableSchema(
            "Album",
            [Column("albumid", SqlType.INTEGER),
             Column("artistid", SqlType.INTEGER),
             Column("title", SqlType.VARCHAR),
             Column("year", SqlType.INTEGER)],
            key=["albumid"],
        ),
    ],
    foreign_keys=[
        ForeignKey("Artist", ("labelid",), "Label", ("labelid",)),
        ForeignKey("Album", ("artistid",), "Artist", ("artistid",)),
    ],
)

# 2. Some data.
db = Database(schema)
db.insert("Label", 1, "Parlophone")
db.insert("Label", 2, "Columbia")
db.insert("Artist", 10, "The Beatles", 1)
db.insert("Artist", 11, "Miles Davis", 2)
db.insert("Artist", 12, "Unsigned Newcomer", 2)
db.insert("Album", 100, 10, "Abbey Road", 1969)
db.insert("Album", 101, 10, "Revolver", 1966)
db.insert("Album", 102, 11, "Kind of Blue", 1959)
db.analyze()

# 3. An RXL view: nested XML from flat tables.  The label element is
#    guarded by a NOT NULL foreign key, so its edge is labeled '1' and can
#    be reduced into the artist query; albums are a '*' edge (an artist may
#    have none — they must still appear, hence the outer join).
VIEW = """
from Artist $a
construct
  <artist>
    <name>$a.name</name>
    { from Label $l
      where $a.labelid = $l.labelid
      construct <label>$l.name</label> }
    { from Album $b
      where $a.artistid = $b.artistid
      construct
        <album>
          <title>$b.title</title>
          <year>$b.year</year>
        </album> }
  </artist>
"""


def main():
    session = Session(db)
    view = session.view(VIEW)

    print("view tree:")
    for node in view.tree.nodes:
        label = node.label or "-"
        print(f"  {node.sfi:8} <{node.tag}>  edge label: {label}")

    print("\nSQL sent for the greedy-chosen plan:")
    plan = view.greedy_plan()
    explained = session.explain(VIEW, plan.recommended(), reduce=True)
    for i, sql in enumerate(explained.sql, 1):
        print(f"\n-- query {i} " + "-" * 40)
        print(sql)

    result = session.materialize(VIEW, root_tag="music", indent=2)
    print("\nmaterialized document:")
    print(result.xml)
    print(
        f"\n{result.report.n_streams} tuple stream(s); simulated "
        f"{result.report.query_ms:.1f}ms query + "
        f"{result.report.transfer_ms:.1f}ms transfer"
    )


if __name__ == "__main__":
    main()
