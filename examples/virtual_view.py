"""Virtual views: query XML that is never materialized (Sec. 7).

Most of the time users don't want the entire exported document — they ask
small questions against the XML view.  SilkRoute keeps the view *virtual*:
an XML-QL query is composed with the RXL view definition into one (usually
simple) SQL query over the base tables.  This example contrasts that with
materializing the whole view first.  Run::

    python examples/virtual_view.py
"""

from repro import Session
from repro.bench.queries import QUERY_1
from repro.tpch import CONFIG_A, build_configuration

IRANIAN_SALES = """
where <supplier>
        <nation>"IRAN"</nation>
        <name>$s</name>
        <part>
          <pname>$p</pname>
          <order><customer>$c</customer></order>
        </part>
      </supplier>
construct
  <sale><supplier>$s</supplier><part>$p</part><buyer>$c</buyer></sale>
"""

CHEAP_LOOKUP = """
where <supplier><name>$s</name><region>$r</region></supplier>,
      $r = "EUROPE"
construct <european>$s</european>
"""


def main():
    database, connection, estimator = build_configuration(CONFIG_A)
    session = Session(connection, estimator=estimator)
    view = session.view(QUERY_1)

    print("=== fragment query: Iranian suppliers' sales ===")
    result = view.query(IRANIAN_SALES, root_tag="sales", indent=2)
    print(result.xml[:600], "...\n" if len(result.xml) > 600 else "")
    print(f"{result.bindings} bindings via ONE SQL query "
          f"({result.server_ms:.1f}ms server):\n")
    print(result.sql)

    print("\n=== fragment query: European suppliers ===")
    result2 = view.query(CHEAP_LOOKUP, root_tag="names")
    print(result2.xml)

    print("\n=== the same questions against the materialized view ===")
    materialized = session.materialize(QUERY_1, root_tag="view")
    print(
        f"materializing everything: {materialized.report.total_ms:.0f}ms "
        f"simulated for {len(materialized.xml)} characters of XML,\n"
        f"vs {result.total_ms:.0f}ms and {result2.total_ms:.0f}ms for the "
        "virtual fragment queries."
    )


if __name__ == "__main__":
    main()
