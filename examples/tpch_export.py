"""Data-export scenario: materialize the paper's Query 1 supplier view of
TPC-H and compare evaluation strategies.

This is the paper's motivating application (Sec. 1): a B2B data-export /
warehousing job that needs the *entire* database as one XML document, where
plan choice makes a 2.5-5x difference.  Run::

    python examples/tpch_export.py
"""

from repro import PlanStyle, Session, parse_dtd, validate_document
from repro.bench.queries import QUERY_1, SUPPLIER_DTD
from repro.tpch import CONFIG_A, build_configuration


def main():
    database, connection, estimator = build_configuration(CONFIG_A)
    print(f"TPC-H database: {database}")

    session = Session(connection, estimator=estimator)

    strategies = {
        "fully partitioned (10 queries)": dict(
            partition="fully-partitioned", reduce=False
        ),
        "unified outer-union (1 query)": dict(
            partition="unified", style=PlanStyle.OUTER_UNION, reduce=False
        ),
        "greedy-chosen (reduced)": dict(partition=None, reduce=True),
    }

    documents = {}
    print(f"\n{'strategy':35} {'streams':>7} {'query ms':>9} {'total ms':>9}")
    for name, kwargs in strategies.items():
        result = session.materialize(QUERY_1, kwargs.pop("partition"),
                                     root_tag="suppliers", **kwargs)
        documents[name] = result.xml
        report = result.report
        print(
            f"{name:35} {report.n_streams:>7} "
            f"{report.query_ms:>9.0f} {report.total_ms:>9.0f}"
        )

    # Every strategy materializes the identical document...
    reference = next(iter(documents.values()))
    assert all(doc == reference for doc in documents.values())
    # ...and it is valid against the exchange DTD of Fig. 2.
    dtd = parse_dtd(SUPPLIER_DTD)
    elements = validate_document(reference, dtd, root="suppliers")
    print(f"\nall strategies agree; {elements} elements valid against the DTD")
    print(f"document size: {len(reference)} characters")
    print("\nfirst supplier:")
    print(reference[: reference.find("</supplier>") + 11])


if __name__ == "__main__":
    main()
