"""Run the generated SQL on a real engine: SQLite behind the Connection.

Everything in this repository normally executes on the simulated engine
with deterministic, paper-shaped timings.  This example attaches the real
SQLite backend: the same generated SQL runs on an in-memory SQLite mirror
of the database, every row is cross-validated against the simulated
oracle, the XML comes out byte-identical, and the measured wall-clock is
reported *separately* so the simulated numbers never move.  It then fits
the cost model's constants to the measured walls (calibration) and shows
how the calibrated model re-ranks candidate partitions.  Run::

    python examples/sqlite_backend.py
"""

from repro import (
    CostModel,
    ExecutionOptions,
    Session,
    SqliteBackend,
    calibrate,
)
from repro.bench.queries import QUERY_1
from repro.core.sqlgen import SqlGenerator
from repro.relational.calibrate import plan_agreement
from repro.relational.connection import Connection
from repro.tpch.generator import TpchGenerator, TpchScale


def main():
    # A small TPC-H instance keeps the example quick.
    scale = TpchScale(suppliers=8, parts=16, customers=10, orders=40)
    database = TpchGenerator(scale=scale, seed=42).generate()

    # 1. Materialize the Query 1 view twice: simulated only, then with
    #    the SQLite backend attached.  Timings stay identical; the
    #    backend adds cross-validation and a real wall-clock.
    plain = Session(Connection(database, CostModel())).materialize(
        QUERY_1, "fully-partitioned"
    )
    backed = Session(Connection(database, CostModel())).materialize(
        QUERY_1, "fully-partitioned",
        options=ExecutionOptions(backend="sqlite"),
    )
    assert backed.xml == plain.xml
    assert backed.report.query_ms == plain.report.query_ms
    print(f"XML byte-identical across engines: {len(backed.xml)} bytes")
    print(f"simulated query time (unchanged): "
          f"{backed.report.query_ms:.1f}ms")
    print(f"measured SQLite wall (reported separately): "
          f"{backed.report.backend_wall_ms:.1f}ms over "
          f"{backed.report.n_streams} streams")

    # 2. Calibrate the cost model against measured walls: sweep a few
    #    partitions' streams on SQLite and fit per-group scale factors.
    connection = Connection(database, CostModel())
    from repro.bench.queries import load_view
    from repro.core.partition import enumerate_partitions

    tree = load_view(QUERY_1, database.schema)
    partitions = list(enumerate_partitions(tree))
    generator = SqlGenerator(tree, database.schema)
    sample = partitions[:: max(1, len(partitions) // 8)]
    specs = [
        spec for partition in sample
        for spec in generator.streams_for_partition(partition)
    ]
    result = calibrate(connection, specs, repeats=2)
    print(f"\ncalibrated on {len(result.observations)} measured "
          f"statements; fitted scales:")
    for group, scale_factor in sorted(result.scales.items()):
        print(f"  {group:>13}: x{scale_factor:.4f}")

    # 3. The calibrated model is a drop-in CostModel: rank the sampled
    #    partitions under both models and compare against measurement.
    from repro.relational.engine import QueryEngine

    default_engine = connection.engine
    calibrated_engine = QueryEngine(database, result.model)
    walls, default_costs, calibrated_costs = [], [], []
    backend = SqliteBackend(database)
    for partition in sample:
        partition_specs = generator.streams_for_partition(partition)
        walls.append(sum(
            backend.execute_sql(s.plan, s.sql)[1] for s in partition_specs
        ))
        default_costs.append(sum(
            default_engine.execute(s.plan).server_ms
            for s in partition_specs
        ))
        calibrated_costs.append(sum(
            calibrated_engine.execute(s.plan).server_ms
            for s in partition_specs
        ))
    backend.close()
    print("\nplan-pick agreement with measured walls over "
          f"{len(sample)} partitions:")
    for name, costs in (("default", default_costs),
                        ("calibrated", calibrated_costs)):
        agreement = plan_agreement(costs, walls)
        print(f"  {name:>10}: top1={agreement['top1']}, "
              f"concordance={agreement['concordance']:.3f}")


if __name__ == "__main__":
    main()
