"""Tests for SQL generation from partitioned view trees (repro.core.sqlgen)."""

import pytest

from repro.core.partition import Partition, fully_partitioned, unified_partition
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.algebra import (
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Scan,
    Sort,
    count_operators,
    outer_join_nesting,
)


@pytest.fixture
def generator(q1_tree, tiny_db):
    return SqlGenerator(q1_tree, tiny_db.schema)


class TestStreamSpecs:
    def test_one_spec_per_subtree(self, generator, q1_tree):
        partition = Partition([(1, 2), (1, 4)])
        specs = generator.streams_for_partition(partition)
        assert len(specs) == 8

    def test_canonical_columns_fig9_layout(self, generator, q1_tree):
        """Fig. 9: the L tag columns lead, then the Skolem-term variables
        in (p, q) order."""
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        names = spec.column_names
        assert names[:4] == ("L1", "L2", "L3", "L4")
        assert names[4] == "v1_1_suppkey"
        stv_names = names[4:]
        assert list(stv_names) == [s.name for s in spec.stvs]

    def test_sort_keys_interleaved(self, generator, q1_tree):
        """Sec. 3.2: sorted by L1, V(1,*), L2, V(2,*), ... — the sort key
        interleaves levels even though the column layout leads with Ls."""
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        keys = list(spec.sort_keys)
        assert keys[0] == "L1"
        assert keys[1] == "v1_1_suppkey"
        assert keys[2] == "L2"
        assert set(keys) == set(spec.column_names)

    def test_leaf_subtree_l_levels(self, generator, q1_tree):
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        by_label = {s.label: s for s in specs}
        # A single-node subtree at depth 2 carries L1 and L2 (Fig. 10).
        nation = by_label["S1.2"]
        assert nation.l_levels == (1, 2)
        assert nation.column_names[:2] == ("L1", "L2")

    def test_upper_l_tags_constant(self, generator, q1_tree, tiny_conn):
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        nation = [s for s in specs if s.label == "S1.2"][0]
        rows = tiny_conn.execute(nation.plan).rows
        assert all(row[0] == 1 and row[1] == 2 for row in rows)

    def test_unit_paths(self, generator, q1_tree):
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        assert len(spec.unit_paths) == 10
        path = spec.unit_paths[(1, 4, 2)]
        assert [u.index for u in path] == [(1,), (1, 4), (1, 4, 2)]

    def test_feature_flags(self, generator, q1_tree):
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        assert spec.uses_outer_join()
        assert spec.uses_union()
        leaf_specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        assert not any(s.uses_outer_join() for s in leaf_specs)
        assert not any(s.uses_union() for s in leaf_specs)


class TestOuterJoinStyle:
    def test_unified_plan_structure(self, generator, q1_tree):
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        plan = spec.plan
        assert isinstance(plan, Sort)
        # One outer join per internal node with children: S1, S1.4, S1.4.2.
        assert count_operators(plan, LeftOuterJoin) == 3
        assert outer_join_nesting(plan) == 3
        assert not spec.compact

    def test_tagged_branches(self, generator, q1_tree):
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        joins = [
            op for op in _walk(spec.plan) if isinstance(op, LeftOuterJoin)
        ]
        top = max(joins, key=lambda j: len(j.branches))
        assert len(top.branches) == 4  # supplier's four children
        tags = {(b.tag_column, b.tag_value) for b in top.branches}
        assert tags == {("L2", 1), ("L2", 2), ("L2", 3), ("L2", 4)}

    def test_single_node_plan_is_flat(self, generator, q1_tree):
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        for spec in specs:
            assert count_operators(spec.plan, LeftOuterJoin) == 0
            assert count_operators(spec.plan, Distinct) == 1

    def test_node_query_joins_in_rule_order(self, generator, q1_tree, tiny_db):
        """The join chain folds atoms in scope order so parent prefixes are
        shared subexpressions."""
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        by_label = {s.label: s for s in specs}
        part_scans = [
            op.table_schema.name
            for op in _walk(by_label["S1.4"].plan)
            if isinstance(op, Scan)
        ]
        assert part_scans == ["Supplier", "PartSupp", "Part"]

    def test_prefix_sharing_fingerprints(self, generator, q1_tree):
        """The part node's base join is a structural prefix of pname's."""
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        by_label = {s.label: s for s in specs}
        part_joins = {
            op.fingerprint()
            for op in _walk(by_label["S1.4"].plan)
            if isinstance(op, (InnerJoin, Scan))
        }
        pname_joins = {
            op.fingerprint()
            for op in _walk(by_label["S1.4.1"].plan)
            if isinstance(op, (InnerJoin, Scan))
        }
        assert part_joins <= pname_joins


class TestOuterUnionStyle:
    def test_branch_per_node(self, q1_tree, tiny_db):
        generator = SqlGenerator(
            q1_tree, tiny_db.schema, style=PlanStyle.OUTER_UNION
        )
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        unions = [op for op in _walk(spec.plan) if isinstance(op, OuterUnion)]
        assert len(unions) == 1
        assert len(unions[0].inputs) == 10
        assert spec.compact

    def test_inner_joins_for_one_edges(self, q1_tree, tiny_db):
        generator = SqlGenerator(
            q1_tree, tiny_db.schema, style=PlanStyle.OUTER_UNION
        )
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        # Path to S1.1 (label '1') uses an inner join; path to S1.4
        # (label '*') uses an outer join.
        assert count_operators(spec.plan, LeftOuterJoin) > 0
        assert outer_join_nesting(spec.plan) <= 2

    def test_same_rows_as_outer_join_style_after_decode(
        self, q1_tree, tiny_db, tiny_conn
    ):
        """Both styles must produce the same XML; row multisets differ
        (outer-union has extra bare rows) but instances agree — covered by
        the integration tests; here we just check both execute."""
        for style in (PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION):
            generator = SqlGenerator(q1_tree, tiny_db.schema, style=style)
            [spec] = generator.streams_for_partition(unified_partition(q1_tree))
            result = tiny_conn.execute(spec.plan)
            assert len(result) > 0


class TestReducedGeneration:
    def test_reduced_unified_fewer_rows(self, q1_tree, tiny_db, tiny_conn):
        plain = SqlGenerator(q1_tree, tiny_db.schema, reduce=False)
        reduced = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        partition = unified_partition(q1_tree)
        [plain_spec] = plain.streams_for_partition(partition)
        [reduced_spec] = reduced.streams_for_partition(partition)
        plain_rows = tiny_conn.execute(plain_spec.plan)
        reduced_rows = tiny_conn.execute(reduced_spec.plan)
        assert len(reduced_rows) < len(plain_rows)

    def test_reduced_spec_keeps_all_stvs(self, q1_tree, tiny_db):
        reduced = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        [spec] = reduced.streams_for_partition(unified_partition(q1_tree))
        fields = {s.field_hint for s in spec.stvs}
        assert "suppkey" in fields and "orderkey" in fields

    def test_keep_parameter_passes_through(self, q1_tree, tiny_db):
        reduced = SqlGenerator(
            q1_tree, tiny_db.schema, reduce=True, keep=[(1, 2)]
        )
        [spec] = reduced.streams_for_partition(unified_partition(q1_tree))
        assert len(spec.unit_tree.units) == 4


class TestExecutionRowShape:
    def test_bare_supplier_rows_present(self, q1_tree, tiny_db, tiny_conn):
        """Suppliers without parts appear with NULL deeper levels — the
        outer join of Sec. 2."""
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        partition = Partition([(1, 4)])  # supplier-part subtree
        specs = generator.streams_for_partition(partition)
        supplier_spec = specs[0]
        rows = tiny_conn.execute(supplier_spec.plan).rows
        names = supplier_spec.column_names
        l2 = names.index("L2")
        stocked = {r[1] for r in tiny_db.table("PartSupp")}
        bare = [row for row in rows if row[l2] is None]
        assert bare
        suppkey_pos = names.index("v1_1_suppkey")
        assert all(row[suppkey_pos] not in stocked for row in bare)

    def test_rows_sorted_by_spec_keys(self, q1_tree, tiny_db, tiny_conn):
        from repro.common.ordering import sort_key

        generator = SqlGenerator(q1_tree, tiny_db.schema)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        rows = tiny_conn.execute(spec.plan).rows
        positions = [spec.column_names.index(k) for k in spec.sort_keys]
        keys = [sort_key(tuple(row[p] for p in positions)) for row in rows]
        assert keys == sorted(keys)


def _walk(plan):
    from repro.relational.algebra import walk

    return walk(plan)
