"""The :class:`repro.Session` facade and its :class:`QueryResult`.

The contract under test: every Session method is a thin veneer over the
existing machinery — byte-identical XML and identical simulated timings
to calling :class:`~repro.core.silkroute.XmlView` directly — with one
result type across materialize/explain/sweep/mutate; the old
module-level entry points keep working behind ``DeprecationWarning``.
"""

import io

import pytest

from repro import (
    QueryResult,
    Session,
    apply_delta,
    fully_partitioned,
    unified_partition,
)
from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.common.errors import OverloadError
from repro.core.options import ExecutionOptions
from repro.core.silkroute import SilkRoute
from repro.relational.replicas import AdmissionPolicy
from repro.tpch.generator import TpchGenerator, TpchScale

TINY = TpchScale(suppliers=8, parts=16, customers=10, orders=40)


def fresh_db(seed=42):
    """A private mutable database (the session-scoped fixtures are
    shared, so mutation tests build their own)."""
    return TpchGenerator(scale=TINY, seed=seed).generate()


@pytest.fixture()
def session(tiny_conn, tiny_estimator):
    return Session(tiny_conn, estimator=tiny_estimator)


class TestConstruction:
    def test_wraps_a_connection(self, tiny_conn, session):
        assert session.connection is tiny_conn
        assert session.database is tiny_conn.database

    def test_wraps_a_bare_database(self):
        db = fresh_db()
        session = Session(db)
        assert session.database is db
        assert session.materialize(QUERY_1).xml

    def test_wraps_an_existing_silkroute(self, tiny_conn, tiny_estimator):
        silk = SilkRoute(tiny_conn, estimator=tiny_estimator)
        session = Session(silk)
        assert session.silkroute is silk

    def test_view_is_cached_per_rxl_text(self, session):
        assert session.view(QUERY_1) is session.view(QUERY_1)

    def test_document_cache_byte_budget_is_wired(self, tiny_conn,
                                                 tiny_estimator):
        session = Session(tiny_conn, estimator=tiny_estimator,
                          document_cache_bytes=123)
        assert session.view(QUERY_1).document_cache.max_bytes == 123


class TestMaterialize:
    def test_matches_direct_xmlview(self, tiny_conn, tiny_estimator, session):
        direct = SilkRoute(tiny_conn, estimator=tiny_estimator) \
            .define_view(QUERY_1) \
            .materialize("unified", root_tag="suppliers", indent=2)
        result = session.materialize(QUERY_1, "unified",
                                     root_tag="suppliers", indent=2)
        assert isinstance(result, QueryResult)
        assert result.xml == direct.xml
        assert result.report.query_ms == direct.report.query_ms
        assert result.report.transfer_ms == direct.report.transfer_ms

    def test_result_carries_report_and_stats(self, session):
        result = session.materialize(QUERY_1, "fully-partitioned")
        assert result.report.n_streams > 1
        assert result.query_ms == result.report.query_ms
        assert result.transfer_ms == result.report.transfer_ms
        assert "plan_cache" in result.stats
        assert "document_cache" in result.stats
        assert "splice_cache" in result.stats

    def test_keyword_overrides_win_over_session_options(self, tiny_conn,
                                                        tiny_estimator):
        session = Session(tiny_conn, estimator=tiny_estimator,
                          options=ExecutionOptions(workers=1))
        result = session.materialize(QUERY_1, "fully-partitioned", workers=3)
        assert result.report.workers == 3

    def test_session_options_are_the_default(self, tiny_conn, tiny_estimator):
        session = Session(tiny_conn, estimator=tiny_estimator,
                          options=ExecutionOptions(workers=2))
        result = session.materialize(QUERY_1, "fully-partitioned")
        assert result.report.workers == 2

    def test_materialize_to_streams_the_same_bytes(self, session):
        whole = session.materialize(QUERY_1, "unified", indent=2)
        sink = io.StringIO()
        streamed = session.materialize_to(QUERY_1, sink, "unified", indent=2)
        assert streamed.xml is None
        assert sink.getvalue() == whole.xml
        assert streamed.report.query_ms == whole.report.query_ms


class TestExplain:
    def test_sql_matches_direct_explain(self, session):
        view = session.view(QUERY_1)
        result = session.explain(QUERY_1, "unified")
        assert result.sql == tuple(view.explain("unified"))
        assert len(result.sql) == 1
        assert result.xml is None and result.report is None


class TestSweep:
    def test_sweep_returns_the_sweep_result(self, session):
        view = session.view(QUERY_1)
        partitions = [unified_partition(view.tree),
                      fully_partitioned(view.tree)]
        result = session.sweep(QUERY_1, partitions=partitions)
        assert len(result.sweep.timings) == 2
        assert "sweep_cache" in result.stats

    def test_module_level_sweep_is_deprecated_but_equivalent(
            self, session, q1_tree, schema, tiny_conn):
        partitions = [unified_partition(q1_tree)]
        with pytest.warns(DeprecationWarning, match="Session.sweep"):
            old = sweep_partitions(q1_tree, schema, tiny_conn,
                                   partitions=partitions)
        new = session.sweep(QUERY_1, partitions=[
            unified_partition(session.view(QUERY_1).tree)])
        assert [t.query_ms for t in old.timings] == \
               [t.query_ms for t in new.sweep.timings]


class TestMutate:
    def test_mutate_bumps_generation_and_reports_rows(self):
        session = Session(fresh_db())
        before = session.database.table("Nation").version
        result = session.mutate("Nation", op="insert", rows=2, seed=3)
        assert result.mutated == 2
        assert result.table == "Nation"
        assert result.stats["generation"] > before

    def test_incremental_matches_cold_oracle(self):
        session = Session(fresh_db())
        session.materialize(QUERY_1, "unified")
        session.mutate("Supplier", op="update", rows=2, seed=1)
        incremental = session.materialize(QUERY_1, "unified")

        cold = Session(fresh_db(), cache=False)
        apply_delta(cold.database, "Supplier", op="update", rows=2, seed=1)
        oracle = cold.materialize(QUERY_1, "unified")
        assert incremental.xml == oracle.xml
        assert incremental.report.query_ms == oracle.report.query_ms

    def test_apply_delta_roundtrip(self):
        db = fresh_db()
        n = len(db.table("Nation"))
        assert apply_delta(db, "Nation", op="insert", rows=2, seed=0) == 2
        assert len(db.table("Nation")) == n + 2
        assert apply_delta(db, "Nation", op="delete", rows=2, seed=0) == 2
        assert len(db.table("Nation")) == n
        assert apply_delta(db, "Nation", op="update", rows=1, seed=0) == 1

    def test_apply_delta_refuses_unknown_op(self):
        with pytest.raises(ValueError, match="unknown mutation op"):
            apply_delta(fresh_db(), "Nation", op="upsert")

    def test_cli_private_alias_still_importable(self):
        from repro.cli import _apply_delta

        assert _apply_delta is apply_delta


class TestShedPartialReports:
    """Every shed path surfaces a partial PlanReport on the error."""

    def test_streaming_queue_shed_attaches_partial_report(self, session):
        policy = AdmissionPolicy(max_concurrent_streams=1,
                                 max_queued_streams=0)
        with pytest.raises(OverloadError) as info:
            session.materialize_to(QUERY_1, io.StringIO(),
                                   "fully-partitioned",
                                   max_concurrent=policy)
        exc = info.value
        assert exc.reason == "queue"
        assert exc.report is not None
        assert exc.report.n_streams > 1
        assert tuple(exc.report.shed_streams) == tuple(exc.shed)
        assert exc.report.streams == []
