"""Tests for SQL text rendering (repro.relational.sqltext)."""

import pytest

from repro.common.errors import QueryError
from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    JoinBranch,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.sqltext import render_sql
from repro.relational.schema import Column, TableSchema
from repro.relational.types import SqlType


@pytest.fixture
def supplier():
    return TableSchema(
        "Supplier",
        [Column("suppkey", SqlType.INTEGER), Column("name", SqlType.VARCHAR),
         Column("nationkey", SqlType.INTEGER)],
        key=["suppkey"],
    )


@pytest.fixture
def nation():
    return TableSchema(
        "Nation",
        [Column("nationkey", SqlType.INTEGER), Column("name", SqlType.VARCHAR)],
        key=["nationkey"],
    )


def node_query(supplier, nation):
    join = InnerJoin(
        Scan(supplier, "s"), Scan(nation, "n"), [("s.nationkey", "n.nationkey")]
    )
    return Distinct(
        Project(join, [
            ProjectItem(ColumnRef("s.suppkey"), "v1_1_suppkey"),
            ProjectItem(ColumnRef("n.name"), "v2_1_name"),
        ])
    )


class TestFlatSelect:
    def test_node_query_renders_flat(self, supplier, nation):
        sql = render_sql(node_query(supplier, nation))
        assert "SELECT DISTINCT" in sql
        assert "FROM Supplier s, Nation n" in sql
        assert "WHERE s.nationkey = n.nationkey" in sql
        assert "AS v1_1_suppkey" in sql

    def test_filter_in_where(self, supplier, nation):
        plan = Filter(
            Scan(supplier, "s"),
            Comparison("=", ColumnRef("s.suppkey"), Literal(3)),
        )
        sql = render_sql(plan)
        assert "WHERE s.suppkey = 3" in sql

    def test_string_literal_quoted(self, supplier):
        plan = Filter(
            Scan(supplier, "s"),
            Comparison("=", ColumnRef("s.name"), Literal("O'Brien")),
        )
        assert "'O''Brien'" in render_sql(plan)

    def test_constant_column(self, supplier):
        plan = Project(Scan(supplier, "s"), [ConstantColumn("L1", 1)])
        assert "1 AS L1" in render_sql(plan)

    def test_compact_mode(self, supplier):
        sql = render_sql(Scan(supplier, "s"), pretty=False)
        assert "\n" not in sql


class TestOrderBy:
    def test_order_by_nulls_first(self, supplier, nation):
        plan = Sort(node_query(supplier, nation), ["v1_1_suppkey"])
        sql = render_sql(plan)
        assert sql.endswith("ORDER BY v1_1_suppkey NULLS FIRST")

    def test_multiple_keys(self, supplier, nation):
        plan = Sort(node_query(supplier, nation), ["v1_1_suppkey", "v2_1_name"])
        assert "v1_1_suppkey NULLS FIRST, v2_1_name NULLS FIRST" in render_sql(plan)


class TestOuterJoin:
    def test_tagged_on_disjunction(self, supplier, nation):
        """The paper's ``on (L2=1 and ...) or (L2=2 and ...)`` shape."""
        left = Project(Scan(supplier, "s"), [
            ProjectItem(ColumnRef("s.suppkey"), "sk"),
        ])
        right = Project(Scan(nation, "n"), [
            ConstantColumn("L2", 1),
            ProjectItem(ColumnRef("n.nationkey"), "nk"),
        ])
        join = LeftOuterJoin(
            left, right,
            [JoinBranch((("sk", "nk"),), "L2", 1),
             JoinBranch((("sk", "nk"),), "L2", 2)],
        )
        sql = render_sql(join)
        assert "LEFT OUTER JOIN" in sql
        assert ".L2 = 1 AND" in sql
        assert ") OR (" in sql

    def test_unprojected_wrap_rejected(self, supplier, nation):
        join = LeftOuterJoin.simple(
            Scan(supplier, "s"), Scan(nation, "n"),
            [("s.nationkey", "n.nationkey")],
        )
        with pytest.raises(QueryError, match="project"):
            render_sql(join)


class TestUnion:
    def test_null_padding(self, supplier, nation):
        a = Project(Scan(supplier, "s"), [ProjectItem(ColumnRef("s.suppkey"), "a")])
        b = Project(Scan(nation, "n"), [ProjectItem(ColumnRef("n.nationkey"), "b")])
        sql = render_sql(OuterUnion([a, b]))
        assert "UNION ALL" in sql
        assert "NULL AS b" in sql
        assert "NULL AS a" in sql

    def test_union_distinct_keyword(self, supplier):
        a = Project(Scan(supplier, "s"), [ProjectItem(ColumnRef("s.suppkey"), "a")])
        sql = render_sql(OuterUnion([a, a], distinct=True))
        assert "UNION\n" in sql and "UNION ALL" not in sql


class TestEndToEnd:
    def test_generated_stream_sql(self, q1_tree, tiny_db):
        """Every stream of a mid-partition plan renders to plausible SQL."""
        from repro.core.partition import Partition
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_tree, tiny_db.schema)
        partition = Partition([(1, 2), (1, 4, 1), (1, 4, 2)])
        for spec in generator.streams_for_partition(partition):
            sql = spec.sql
            assert sql.startswith("SELECT")
            assert "ORDER BY" in sql
            assert "NULLS FIRST" in sql

    def test_unified_sql_mentions_all_tables(self, q1_tree, tiny_db):
        from repro.core.partition import unified_partition
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_tree, tiny_db.schema)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        for table in ("Supplier", "Nation", "Region", "PartSupp", "Part",
                      "LineItem", "Orders", "Customer"):
            assert table in spec.sql
