"""Tests for the SilkRoute facade (repro.core.silkroute)."""

import math

import pytest

from repro.common.errors import PlanError, TimeoutExceeded
from repro.core.partition import Partition
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import PlanStyle
from repro.relational.connection import Connection, SourceDescription
from repro.relational.engine import CostModel
from repro.bench.queries import QUERY_1, SUPPLIER_DTD
from repro.xmlgen.dtd import parse_dtd, validate_document


@pytest.fixture
def silk(tiny_db):
    return SilkRoute(Connection(tiny_db, CostModel()))


@pytest.fixture
def view(silk):
    return silk.define_view(QUERY_1)


class TestDefineView:
    def test_view_tree_built_and_labeled(self, view):
        assert len(view.tree.nodes) == 10
        assert view.tree.node((1, 4)).label == "*"

    def test_named_partitions(self, view):
        assert len(view.unified_partition()) == 9
        assert len(view.fully_partitioned()) == 0
        assert len(list(view.enumerate_partitions())) == 512


class TestExplain:
    def test_explain_unified(self, view):
        [sql] = view.explain("unified")
        assert "LEFT OUTER JOIN" in sql

    def test_explain_fully_partitioned(self, view):
        sqls = view.explain("fully-partitioned")
        assert len(sqls) == 10
        assert all("ORDER BY" in sql for sql in sqls)

    def test_explain_unknown_strategy(self, view):
        with pytest.raises(PlanError, match="unknown strategy"):
            view.explain("bogus")

    def test_explain_custom_partition(self, view):
        sqls = view.explain(Partition([(1, 4)]))
        assert len(sqls) == 9


class TestMaterialize:
    def test_default_uses_greedy(self, view, tiny_db):
        result = view.materialize(root_tag="view")
        assert result.xml.startswith("<view>")
        assert result.report.n_streams >= 1
        assert result.report.total_ms > 0
        dtd = parse_dtd(SUPPLIER_DTD)
        validate_document(result.xml, dtd, root="view")

    def test_strategies_agree_on_document(self, view):
        unified = view.materialize("unified", reduce=False).xml
        fully = view.materialize("fully-partitioned", reduce=False).xml
        greedy = view.materialize(reduce=True).xml
        assert unified == fully == greedy

    def test_outer_union_style_agrees(self, view):
        a = view.materialize("unified", style=PlanStyle.OUTER_JOIN, reduce=False)
        b = view.materialize("unified", style=PlanStyle.OUTER_UNION, reduce=False)
        assert a.xml == b.xml

    def test_indent(self, view):
        xml = view.materialize("fully-partitioned", indent=2).xml
        assert "\n  <supplier>" in xml

    def test_report_streams(self, view):
        result = view.materialize("fully-partitioned")
        assert result.report.n_streams == 10
        assert len(result.report.streams) == 10
        assert result.report.query_ms == pytest.approx(
            sum(s.server_ms for s in result.report.streams)
        )

    def test_timeout_raises(self, view):
        with pytest.raises(TimeoutExceeded):
            view.materialize("unified", budget_ms=0.001)


class TestExecutePartition:
    def test_timeout_reported_not_raised(self, view):
        specs, streams, report = view.execute_partition(
            view.unified_partition(), budget_ms=0.001
        )
        assert streams is None
        assert report.timed_out
        assert math.isnan(report.query_ms)

    def test_source_description_blocks_unsupported(self, tiny_db):
        conn = Connection(tiny_db, CostModel())
        silk = SilkRoute(
            conn, source=SourceDescription(supports_left_outer_join=False)
        )
        view = silk.define_view(QUERY_1)
        with pytest.raises(PlanError, match="OUTER JOIN"):
            view.execute_partition(view.unified_partition())
        # Fully partitioned plans need neither outer joins nor unions.
        specs, streams, report = view.execute_partition(view.fully_partitioned())
        assert streams is not None


class TestGreedyIntegration:
    def test_greedy_plan_structure(self, view):
        plan = view.greedy_plan()
        assert plan.oracle_requests > 0
        described = plan.describe()
        assert described["family_size"] == 2 ** len(plan.optional)
        assert plan.recommended() in plan.partitions()

    def test_greedy_avoids_blowup(self, view, tiny_db):
        """The recommended plan never keeps the chain that triggers the
        nested outer-join re-evaluation."""
        plan = view.greedy_plan(reduce=False)
        kept = plan.mandatory | plan.optional
        chain = {(1, 4), (1, 4, 2)}
        deep = {(1, 4, 2, 1), (1, 4, 2, 2), (1, 4, 2, 3)}
        assert not (chain <= kept and kept & deep)


class TestExplainWith:
    def test_use_with_emits_ctes(self, view):
        sqls = view.explain("unified", reduce=False, use_with=True)
        assert any(sql.startswith("WITH nq_1 AS (") for sql in sqls)

    def test_plain_explain_has_no_ctes(self, view):
        sqls = view.explain("unified", reduce=False)
        assert not any(sql.startswith("WITH") for sql in sqls)


class TestPlannerCaching:
    def test_planner_reused_per_style_and_reduce(self, view):
        first = view.greedy_plan()
        assert first.oracle_requests > 0
        assert len(view._planners) == 1
        [planner] = view._planners.values()
        view.greedy_plan()
        assert len(view._planners) == 1
        assert next(iter(view._planners.values())) is planner
        # The memoized oracle answered every repeated component query.
        assert planner.oracle_requests == first.oracle_requests
        view.greedy_plan(reduce=False)
        view.greedy_plan(style=PlanStyle.OUTER_UNION)
        assert len(view._planners) == 3

    def test_keep_passthrough(self, view):
        plan = view.greedy_plan(keep=[(1, 4)])
        assert (1, 4) in (plan.mandatory | plan.optional)
        # A distinct keep list is a distinct planner.
        assert (PlanStyle.OUTER_JOIN, True, ((1, 4),)) in view._planners
