"""Durability: the write-ahead log, crash recovery, and exactly-once.

The load-bearing contracts:

* **log-then-apply** — a mutation that returns has hit the disk first; a
  mutation that fails validation never reaches the log;
* **bit-identical recovery** — snapshot + log-tail replay reconstructs
  table contents, row order, AND per-table generation counters exactly,
  so a recovered database serves byte-identical XML with identical
  simulated timings, on both engines and against the SQLite mirror;
* **torn tails are dropped, never fatal** — truncating or corrupting the
  log at *every byte boundary* of the final record loses only that
  uncommitted suffix (the fuzz tests);
* **checkpoints are crash-safe at every step** — a crash between the
  snapshot rename and the log truncation replays the log onto a snapshot
  that already contains it; version stamps make that a no-op;
* **exactly-once** — a request id committed before a crash deduplicates
  after the restart, returning the recorded result.
"""

import datetime
import json
import os
import shutil
import struct
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1
from repro.common.errors import SchemaError, WalError
from repro.core.options import ExecutionOptions
from repro.relational.wal import (
    MAGIC,
    RecoveryReport,
    WriteAheadLog,
    iter_records,
    pack_record,
    recover,
)
from repro.session import Session, apply_delta
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.tpch.schema import tpch_schema

TINY = TpchScale(suppliers=6, parts=10, customers=8, orders=24)


def fresh_db(seed=42):
    return TpchGenerator(scale=TINY, seed=seed).generate()


def db_state(db):
    return (
        {name: list(t.rows) for name, t in db.tables.items()},
        db.table_generations(),
    )


@pytest.fixture
def wal_dir():
    path = tempfile.mkdtemp(prefix="wal-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def attach_fresh(path, seed=42, **kwargs):
    db = fresh_db(seed)
    wal = WriteAheadLog(path, **kwargs)
    report = wal.attach(db)
    return db, wal, report


class TestFraming:
    def test_record_roundtrip(self):
        payloads = [b'{"a":1}', b'{"b":' + b"x" * 1000 + b'}']
        blob = MAGIC + b"".join(pack_record(p) for p in payloads)
        got = [p for p, _ in iter_records(blob, len(MAGIC))]
        assert got == payloads

    def test_reader_stops_at_crc_mismatch(self):
        good = pack_record(b'{"a":1}')
        bad = bytearray(pack_record(b'{"b":2}'))
        bad[-1] ^= 0xFF
        blob = MAGIC + good + bytes(bad) + pack_record(b'{"c":3}')
        got = [p for p, _ in iter_records(blob, len(MAGIC))]
        # Everything after the first corrupt record is unreachable: record
        # boundaries cannot be trusted past a bad checksum.
        assert got == [b'{"a":1}']

    def test_wrong_magic_is_an_error(self, wal_dir):
        (os.path.join(wal_dir, "wal.log"))
        with open(os.path.join(wal_dir, "wal.log"), "wb") as f:
            f.write(b"NOTAWAL!" + pack_record(b"{}"))
        with pytest.raises(WalError):
            recover(wal_dir, schema=tpch_schema())


class TestLogThenApply:
    def test_mutations_survive_restart_bit_identically(self, wal_dir):
        db, wal, report = attach_fresh(wal_dir)
        assert report is None  # cold start: initial checkpoint, no replay
        db.insert("Nation", 99, "Zigzag", 0)
        db.update("Nation", {"nationkey": 99}, {"name": "Zagzig"})
        db.delete("Nation", {"nationkey": 99})
        db.insert("Nation", 98, "Kept", 1)
        rows, gens = db_state(db)
        wal.close()

        db2, wal2, report2 = attach_fresh(wal_dir)
        assert db_state(db2) == (rows, gens)
        assert report2.records_scanned == 4
        assert report2.torn_bytes == 0
        wal2.close()

    def test_rejected_mutation_never_reaches_the_log(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        size_before = wal.size_bytes()
        key = db.table("Nation").rows[0][0]
        with pytest.raises(SchemaError):
            db.insert("Nation", key, "Duplicate", 0)  # key collision
        with pytest.raises(SchemaError):
            db.insert("Nation", 500, None, 0)  # NOT NULL name
        assert wal.size_bytes() == size_before
        # And the in-memory state is untouched (validation precedes both
        # the log append and the apply).
        assert db.table("Nation").version == fresh_db().table("Nation").version
        wal.close()

    def test_update_callables_replay_by_value(self, wal_dir):
        # The logged delta is physical: replay never re-runs the lambda,
        # so even a side-effecting closure recovers deterministically.
        db, wal, _ = attach_fresh(wal_dir)
        calls = []

        def bump(row):
            calls.append(row["name"])
            return row["name"] + "!"

        db.update("Nation", lambda r: r["nationkey"] < 2, {"name": bump})
        n_calls = len(calls)
        rows, gens = db_state(db)
        wal.close()

        db2, wal2, _ = attach_fresh(wal_dir)
        assert db_state(db2) == (rows, gens)
        assert len(calls) == n_calls  # replay did not re-invoke
        wal2.close()

    def test_dates_roundtrip_through_the_log(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        order = db.table("Orders").rows[0]
        key = order[0]
        db.update("Orders", {"orderkey": key},
                  {"date": datetime.date(1997, 2, 28)})
        rows, gens = db_state(db)
        wal.close()
        db2, wal2, _ = attach_fresh(wal_dir)
        assert db_state(db2) == (rows, gens)
        restored = db2.table("Orders").lookup_key((key,))
        assert restored[db2.table("Orders").schema.column_index("date")] \
            == datetime.date(1997, 2, 28)
        wal2.close()

    def test_transaction_groups_commit_atomically(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        before = wal.size_bytes()
        with db.transaction("req-9") as txn:
            db.insert("Nation", 90, "Ninety", 0)
            db.insert("Nation", 91, "NinetyOne", 1)
            txn.result = {"mutated": 2, "table": "Nation",
                          "generation": db.table("Nation").version}
        after = wal.size_bytes()
        assert after > before
        # ONE record for the whole group.
        data = open(wal.wal_file, "rb").read()
        records = [json.loads(p) for p, _ in iter_records(data, len(MAGIC))]
        assert len(records) == 1
        assert len(records[0]["ops"]) == 2
        assert records[0]["request_id"] == "req-9"
        wal.close()

    def test_failed_transaction_logs_nothing(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        before = wal.size_bytes()
        with pytest.raises(RuntimeError):
            with db.transaction("req-dead"):
                db.insert("Nation", 90, "Ninety", 0)
                raise RuntimeError("mid-request crash")
        assert wal.size_bytes() == before
        assert wal.request_result("req-dead") is None
        wal.close()

    def test_nested_transactions_refused(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        with db.transaction():
            with pytest.raises(WalError):
                with db.transaction():
                    pass
        wal.close()

    def test_double_attach_refused(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        other = WriteAheadLog(os.path.join(wal_dir, "other"))
        with pytest.raises(WalError):
            other.attach(db)
        wal.close()


class TestTornTails:
    """The fuzz satellite: damage the final record at every byte."""

    def _committed_wal(self, wal_dir, n_mutations=3):
        db, wal, _ = attach_fresh(wal_dir)
        for i in range(n_mutations):
            db.insert("Nation", 80 + i, f"N{i}", i % 3)
        states = db_state(db)
        wal.close()
        data = open(wal.wal_file, "rb").read()
        boundaries = [end for _, end in iter_records(data, len(MAGIC))]
        assert len(boundaries) == n_mutations
        return data, boundaries, states

    def test_truncation_at_every_byte_of_final_record(self, wal_dir):
        data, boundaries, _ = self._committed_wal(wal_dir)
        last_start = boundaries[-2]
        wal_file = os.path.join(wal_dir, "wal.log")
        for cut in range(last_start, len(data)):
            with open(wal_file, "wb") as f:
                f.write(data[:cut])
            db, report = recover(wal_dir, database=fresh_db())
            if cut == len(data):
                expected, torn = 3, 0
            else:
                expected, torn = 2, cut - last_start
            assert report.records_scanned == expected, f"cut={cut}"
            assert report.torn_bytes == torn, f"cut={cut}"
            # Only the uncommitted suffix is gone.
            names = {r[1] for r in db.table("Nation").rows}
            assert {"N0", "N1"} <= names, f"cut={cut}"
            assert ("N2" in names) == (expected == 3), f"cut={cut}"

    def test_corruption_at_every_byte_of_final_record(self, wal_dir):
        data, boundaries, _ = self._committed_wal(wal_dir)
        last_start = boundaries[-2]
        wal_file = os.path.join(wal_dir, "wal.log")
        for pos in range(last_start, len(data)):
            damaged = bytearray(data)
            damaged[pos] ^= 0xFF
            with open(wal_file, "wb") as f:
                f.write(bytes(damaged))
            db, report = recover(wal_dir, database=fresh_db())
            # A flipped byte in the final record (header or payload) must
            # never make recovery raise or apply damaged data: either the
            # record is dropped (length/CRC refuse it) or — flipping a
            # length byte that makes the frame *appear* longer — it reads
            # as torn.  Both land on records_scanned == 2.
            assert report.records_scanned == 2, f"pos={pos}"
            names = {r[1] for r in db.table("Nation").rows}
            assert {"N0", "N1"} <= names and "N2" not in names, f"pos={pos}"

    def test_attach_clips_torn_tail_and_appends_cleanly(self, wal_dir):
        data, boundaries, _ = self._committed_wal(wal_dir)
        wal_file = os.path.join(wal_dir, "wal.log")
        with open(wal_file, "wb") as f:
            f.write(data[: len(data) - 3])  # tear the last record
        db, wal, report = attach_fresh(wal_dir)
        assert report.torn_bytes > 0
        # The torn suffix is physically clipped so new appends start on a
        # record boundary...
        assert os.path.getsize(wal_file) == boundaries[-2]
        db.insert("Nation", 70, "AfterTear", 0)
        wal.close()
        # ...and a second recovery sees a clean log: two survivors + one
        # new record, no torn bytes.
        db2, wal2, report2 = attach_fresh(wal_dir)
        assert report2.torn_bytes == 0
        assert report2.records_scanned == 3
        names = {r[1] for r in db2.table("Nation").rows}
        assert "AfterTear" in names and "N2" not in names
        wal2.close()

    def test_oversized_length_field_reads_as_torn(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        db.insert("Nation", 80, "Good", 0)
        wal.close()
        with open(wal.wal_file, "ab") as f:
            f.write(struct.pack("<II", 1 << 31, 0) + b"short")
        _, report = recover(wal_dir, database=fresh_db())
        assert report.records_scanned == 1
        assert report.torn_bytes == 13


class TestCheckpoint:
    def test_checkpoint_truncates_and_recovery_uses_snapshot(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        for i in range(4):
            db.insert("Nation", 60 + i, f"C{i}", 0)
        assert wal.size_bytes() > len(MAGIC)
        wal.checkpoint(db)
        assert wal.size_bytes() == len(MAGIC)
        rows, gens = db_state(db)
        wal.close()
        db2, wal2, report = attach_fresh(wal_dir)
        assert db_state(db2) == (rows, gens)
        assert report.records_scanned == 0
        assert report.snapshot_rows == sum(len(r) for r in rows.values())
        wal2.close()

    def test_auto_checkpoint_every_n_records(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir, checkpoint_every=3)
        for i in range(7):
            db.insert("Nation", 60 + i, f"C{i}", 0)
        # 7 records: checkpoints after the 3rd and 6th, one in the log.
        data = open(wal.wal_file, "rb").read()
        assert len(list(iter_records(data, len(MAGIC)))) == 1
        wal.close()

    def test_crash_between_rename_and_truncate_is_idempotent(self, wal_dir):
        # The checkpoint race: snapshot renamed, log NOT truncated — the
        # log's records are already inside the snapshot.  Version stamps
        # must make the replay skip them instead of double-applying.
        db, wal, _ = attach_fresh(wal_dir)
        for i in range(3):
            db.insert("Nation", 60 + i, f"C{i}", 0)
        rows, gens = db_state(db)
        log_data = open(wal.wal_file, "rb").read()
        wal.checkpoint(db)
        wal.close()
        # Resurrect the pre-checkpoint log next to the new snapshot.
        with open(os.path.join(wal_dir, "wal.log"), "wb") as f:
            f.write(log_data)
        db2, report = recover(wal_dir, database=fresh_db())
        assert report.records_scanned == 3
        assert report.ops_applied == 0
        assert report.ops_skipped == 3
        assert db_state(db2) == (rows, gens)

    def test_corrupt_snapshot_raises(self, wal_dir):
        db, wal, _ = attach_fresh(wal_dir)
        wal.close()
        snapshot = os.path.join(wal_dir, "snapshot")
        data = bytearray(open(snapshot, "rb").read())
        data[len(MAGIC) + 12] ^= 0xFF
        with open(snapshot, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(WalError):
            recover(wal_dir, schema=tpch_schema())


class TestExactlyOnce:
    def test_dedup_map_survives_restart(self, wal_dir):
        session = Session(fresh_db(), wal=wal_dir)
        first = session.mutate("Nation", op="insert", rows=2,
                               request_id="rq-1")
        again = session.mutate("Nation", op="insert", rows=2,
                               request_id="rq-1")
        assert again.mutated == first.mutated
        assert again.stats.get("deduplicated") is True
        gens = session.database.table_generations()
        session.wal.close()

        restarted = Session(fresh_db(), wal=wal_dir)
        assert restarted.recovery is not None
        assert restarted.database.table_generations() == gens
        replay = restarted.mutate("Nation", op="insert", rows=2,
                                  request_id="rq-1")
        assert replay.stats.get("deduplicated") is True
        assert replay.mutated == first.mutated
        assert restarted.database.table_generations() == gens
        restarted.wal.close()

    def test_dedup_map_survives_checkpoint(self, wal_dir):
        session = Session(fresh_db(), wal=wal_dir)
        session.mutate("Nation", op="insert", rows=1, request_id="rq-2")
        session.wal.checkpoint(session.database)  # truncates the log
        session.wal.close()
        restarted = Session(fresh_db(), wal=wal_dir)
        assert restarted.wal.request_result("rq-2") is not None
        restarted.wal.close()


class TestSessionWiring:
    def test_options_wal_path_builds_the_log(self, wal_dir):
        options = ExecutionOptions(wal_path=wal_dir, checkpoint_every=2)
        session = Session(fresh_db(), options=options)
        assert session.wal is not None
        assert session.wal.checkpoint_every == 2
        session.mutate("Nation", op="insert", rows=1)
        session.wal.close()
        assert os.path.exists(os.path.join(wal_dir, "snapshot"))

    def test_recovered_session_serves_bit_identically(self, wal_dir):
        session = Session(fresh_db(), wal=wal_dir)
        session.mutate("Supplier", op="update", rows=2, seed=5)
        session.mutate("Nation", op="insert", rows=1, seed=5)
        live = session.materialize(QUERY_1, root_tag="view")
        session.wal.close()

        restarted = Session(fresh_db(), wal=wal_dir)
        recovered = restarted.materialize(QUERY_1, root_tag="view")
        assert recovered.xml == live.xml
        assert recovered.report.query_ms == live.report.query_ms
        assert recovered.report.transfer_ms == live.report.transfer_ms
        restarted.wal.close()

    def test_recovery_remirrors_sqlite_backend(self, wal_dir):
        from repro.core.options import ExecutionOptions

        session = Session(fresh_db(), wal=wal_dir)
        session.mutate("Nation", op="insert", rows=2, seed=3)
        session.wal.close()

        restarted = Session(fresh_db(), wal=wal_dir)
        # The sqlite backend cross-validates every stream against the
        # simulated engine; a stale mirror would raise
        # BackendMismatchError here.
        sqlite_run = restarted.materialize(
            QUERY_1, root_tag="view",
            options=ExecutionOptions(backend="sqlite"),
        )
        pure = restarted.materialize(QUERY_1, root_tag="view")
        assert sqlite_run.xml == pure.xml
        restarted.wal.close()

    def test_recover_function_reports(self, wal_dir):
        session = Session(fresh_db(), wal=wal_dir)
        session.mutate("Nation", op="insert", rows=2, seed=1)
        session.wal.close()
        database, report = recover(wal_dir, schema=tpch_schema())
        assert isinstance(report, RecoveryReport)
        assert report.snapshot_rows > 0
        assert report.records_scanned == 1
        assert database.table_generations() \
            == session.database.table_generations()
        as_dict = report.as_dict()
        assert as_dict["records_scanned"] == 1
        assert "Nation" in as_dict["tables"]


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
@given(
    data=st.data(),
    engine=st.sampled_from(["tuple", "batch"]),
)
def test_soak_crashes_interleaved_with_traffic(data, engine):
    """The chaos soak: random mutation/query mixes with crashes (drop the
    log mid-stream without checkpoint or close) injected between them.
    After every crash the recovered database must serve byte-identical
    XML with identical simulated timings versus an oracle that applied
    the same committed mutations directly — on both engines."""
    wal_path = tempfile.mkdtemp(prefix="wal-soak-")
    try:
        options = ExecutionOptions(engine=engine)
        session = Session(fresh_db(), wal=wal_path)
        oracle = fresh_db()
        steps = data.draw(st.lists(
            st.tuples(
                st.sampled_from(["mutate", "query", "crash"]),
                st.sampled_from(["Nation", "Supplier", "Customer"]),
                st.sampled_from(["insert", "update"]),
                st.integers(min_value=1, max_value=3),
            ),
            min_size=3, max_size=10,
        ))
        for i, (kind, table, op, rows) in enumerate(steps):
            if kind == "mutate":
                session.mutate(table, op=op, rows=rows, seed=i)
                apply_delta(oracle, table, op=op, rows=rows, seed=i)
            elif kind == "query":
                live = session.materialize(QUERY_1, root_tag="view",
                                           options=options)
                expected = Session(oracle, cache=False).materialize(
                    QUERY_1, root_tag="view", options=options)
                assert live.xml == expected.xml
                assert live.report.query_ms == expected.report.query_ms
            else:  # crash: abandon the session, recover from disk
                session.wal.close()
                session = Session(fresh_db(), wal=wal_path)
                assert session.database.table_generations() \
                    == oracle.table_generations()
                assert {n: list(t.rows)
                        for n, t in session.database.tables.items()} \
                    == {n: list(t.rows) for n, t in oracle.tables.items()}
        session.wal.close()
    finally:
        shutil.rmtree(wal_path, ignore_errors=True)
