"""Tests for the cost/cardinality oracle (repro.relational.estimator)."""

import pytest

from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    Distinct,
    Filter,
    InnerJoin,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.estimator import CostEstimator, EstimateCache


@pytest.fixture
def estimator(tiny_db):
    return CostEstimator(tiny_db, CostModel())


def scan(db, table, alias):
    return Scan(db.schema.table(table), alias)


class TestScanEstimates:
    def test_cardinality_from_stats(self, estimator, tiny_db):
        plan = scan(tiny_db, "Supplier", "s")
        assert estimator.cardinality(plan) == len(tiny_db.table("Supplier"))

    def test_distincts_from_stats(self, estimator, tiny_db):
        plan = scan(tiny_db, "Supplier", "s")
        est = estimator.estimate(plan)
        assert est.distinct("s.suppkey") == len(tiny_db.table("Supplier"))

    def test_width_positive(self, estimator, tiny_db):
        est = estimator.estimate(scan(tiny_db, "Supplier", "s"))
        assert est.row_width > 4


class TestJoinEstimates:
    def test_key_fk_join_cardinality(self, estimator, tiny_db):
        """Supplier ⋈ Nation on the FK is one row per supplier."""
        plan = InnerJoin(
            scan(tiny_db, "Supplier", "s"),
            scan(tiny_db, "Nation", "n"),
            [("s.nationkey", "n.nationkey")],
        )
        n_suppliers = len(tiny_db.table("Supplier"))
        assert estimator.cardinality(plan) == pytest.approx(n_suppliers, rel=0.3)

    def test_join_estimate_close_to_actual(self, estimator, tiny_db):
        plan = InnerJoin(
            scan(tiny_db, "PartSupp", "ps"),
            scan(tiny_db, "Part", "p"),
            [("ps.partkey", "p.partkey")],
        )
        actual = len(QueryEngine(tiny_db, CostModel()).execute(plan).rows)
        assert estimator.cardinality(plan) == pytest.approx(actual, rel=0.3)

    def test_outer_join_at_least_left(self, estimator, tiny_db):
        plan = LeftOuterJoin.simple(
            scan(tiny_db, "Supplier", "s"),
            scan(tiny_db, "PartSupp", "ps"),
            [("s.suppkey", "ps.suppkey")],
        )
        assert estimator.cardinality(plan) >= len(tiny_db.table("Supplier"))

    def test_filter_selectivity(self, estimator, tiny_db):
        base = scan(tiny_db, "Supplier", "s")
        filtered = Filter(
            base, Comparison("=", ColumnRef("s.suppkey"), Literal(1))
        )
        assert estimator.cardinality(filtered) == pytest.approx(1.0, rel=0.01)

    def test_range_filter_selectivity(self, estimator, tiny_db):
        base = scan(tiny_db, "Supplier", "s")
        filtered = Filter(
            base, Comparison("<", ColumnRef("s.suppkey"), Literal(3))
        )
        assert 0 < estimator.cardinality(filtered) < estimator.cardinality(base)

    def test_union_sums(self, estimator, tiny_db):
        a = Project(scan(tiny_db, "Supplier", "s"),
                    [ProjectItem(ColumnRef("s.suppkey"), "k")])
        b = Project(scan(tiny_db, "Part", "p"),
                    [ProjectItem(ColumnRef("p.partkey"), "k2")])
        union = OuterUnion([a, b])
        assert estimator.cardinality(union) == pytest.approx(
            estimator.cardinality(a) + estimator.cardinality(b)
        )


class TestCostEstimates:
    def test_cost_monotone_in_plan_size(self, estimator, tiny_db):
        base = scan(tiny_db, "Supplier", "s")
        joined = InnerJoin(
            base, scan(tiny_db, "Nation", "n"), [("s.nationkey", "n.nationkey")]
        )
        assert estimator.evaluation_cost(joined) > estimator.evaluation_cost(base)

    def test_sort_adds_cost(self, estimator, tiny_db):
        base = Project(scan(tiny_db, "Supplier", "s"),
                       [ProjectItem(ColumnRef("s.suppkey"), "k")])
        assert estimator.evaluation_cost(Sort(base, ["k"])) > (
            estimator.evaluation_cost(base)
        )

    def test_data_size(self, estimator, tiny_db):
        plan = scan(tiny_db, "Supplier", "s")
        n = len(tiny_db.table("Supplier"))
        assert estimator.data_size(plan) == pytest.approx(n * 4)

    def test_reevaluation_mirrored(self, tiny_db):
        """The oracle predicts the engine's nested outer-join penalty."""
        model = CostModel(reevaluation_threshold=1)
        est = CostEstimator(tiny_db, model)
        est_relaxed = CostEstimator(tiny_db, model.without("reevaluation_factor"))
        inner = LeftOuterJoin.simple(
            Project(scan(tiny_db, "Supplier", "s"),
                    [ProjectItem(ColumnRef("s.suppkey"), "sk"),
                     ProjectItem(ColumnRef("s.nationkey"), "nk")]),
            Project(scan(tiny_db, "Nation", "n"),
                    [ProjectItem(ColumnRef("n.nationkey"), "nk2")]),
            [("nk", "nk2")],
        )
        outer = LeftOuterJoin.simple(
            Project(scan(tiny_db, "PartSupp", "ps"),
                    [ProjectItem(ColumnRef("ps.suppkey"), "psk")]),
            inner,
            [("psk", "sk")],
        )
        assert est.evaluation_cost(outer) > 5 * est_relaxed.evaluation_cost(outer)

    def test_distinct_keeps_cardinality(self, estimator, tiny_db):
        base = Project(scan(tiny_db, "Supplier", "s"),
                       [ProjectItem(ColumnRef("s.suppkey"), "k")])
        assert estimator.cardinality(Distinct(base)) == estimator.cardinality(base)


class TestCaching:
    def test_cache_counts_requests_and_hits(self, tiny_db):
        cache = EstimateCache()
        estimator = CostEstimator(tiny_db, CostModel(), cache=cache)
        plan = scan(tiny_db, "Supplier", "s")
        estimator.estimate(plan)
        first = cache.requests
        estimator.estimate(plan)
        estimator.estimate(Scan(tiny_db.schema.table("Supplier"), "s"))
        assert cache.requests == first
        assert cache.hits == 2

    def test_cache_clear(self, tiny_db):
        cache = EstimateCache()
        estimator = CostEstimator(tiny_db, CostModel(), cache=cache)
        estimator.estimate(scan(tiny_db, "Supplier", "s"))
        cache.clear()
        assert cache.requests == 0
        estimator.estimate(scan(tiny_db, "Supplier", "s"))
        assert cache.requests == 1


class TestOrderingAgreement:
    def test_estimator_orders_like_engine(self, tiny_db):
        """The oracle's cost ordering matches actual execution ordering for
        plans of clearly different sizes — what the greedy planner needs."""
        model = CostModel()
        estimator = CostEstimator(tiny_db, model)
        engine = QueryEngine(tiny_db, model)
        small = scan(tiny_db, "Nation", "n")
        medium = InnerJoin(
            scan(tiny_db, "Supplier", "s"),
            scan(tiny_db, "Nation", "n"),
            [("s.nationkey", "n.nationkey")],
        )
        large = InnerJoin(
            InnerJoin(
                scan(tiny_db, "LineItem", "l"),
                scan(tiny_db, "Orders", "o"),
                [("l.orderkey", "o.orderkey")],
            ),
            scan(tiny_db, "Customer", "c"),
            [("o.custkey", "c.custkey")],
        )
        est_costs = [estimator.evaluation_cost(p) for p in (small, medium, large)]
        real_costs = [
            engine.execute(p, include_startup=False).server_ms
            for p in (small, medium, large)
        ]
        assert est_costs == sorted(est_costs)
        assert real_costs == sorted(real_costs)
