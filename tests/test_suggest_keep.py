"""Tests for the Sec. 3.5 data-size reduction-prohibition heuristic."""


from repro.core.partition import unified_partition, partition_subtrees
from repro.core.reduction import reduce_subtree, suggest_keep
from repro.core.sqlgen import SqlGenerator
from repro.xmlgen.tagger import tag_streams


class TestSuggestKeep:
    def test_small_values_not_flagged(self, q1_tree, tiny_db):
        assert suggest_keep(q1_tree, tiny_db, max_avg_bytes=256.0) == ()

    def test_low_threshold_flags_display_nodes(self, q1_tree, tiny_db):
        flagged = suggest_keep(q1_tree, tiny_db, max_avg_bytes=0.5)
        # Every '1'-labeled node displaying a column gets flagged.
        assert (1, 1) in flagged      # supplier name
        assert (1, 2) in flagged      # nation name
        assert (1, 4, 1) in flagged   # part name
        # '*' nodes are never reduction candidates, so never flagged.
        assert (1, 4) not in flagged

    def test_flagged_nodes_stay_separate(self, q1_tree, tiny_db):
        flagged = suggest_keep(q1_tree, tiny_db, max_avg_bytes=0.5)
        [subtree] = partition_subtrees(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True, keep=flagged)
        for index in flagged:
            unit = unit_tree.unit_of(q1_tree.node(index))
            assert unit.representative.index == index

    def test_document_unchanged_with_keep(self, q1_tree, tiny_db, tiny_conn):
        flagged = suggest_keep(q1_tree, tiny_db, max_avg_bytes=0.5)
        partition = unified_partition(q1_tree)

        def xml_with(keep):
            generator = SqlGenerator(
                q1_tree, tiny_db.schema, reduce=True, keep=keep
            )
            specs = generator.streams_for_partition(partition)
            streams = [tiny_conn.execute(s.plan) for s in specs]
            xml, _ = tag_streams(q1_tree, specs, streams, root_tag="view")
            return xml

        assert xml_with(flagged) == xml_with(())

    def test_keep_reduces_transferred_bytes_for_wide_values(self, q1_tree,
                                                            tiny_db,
                                                            tiny_conn):
        """The heuristic's point: keeping a large display value out of the
        merged relation shrinks the merged stream's transfer cost."""
        partition = unified_partition(q1_tree)

        def transfer(keep):
            generator = SqlGenerator(
                q1_tree, tiny_db.schema, reduce=True, keep=keep
            )
            specs = generator.streams_for_partition(partition)
            streams = [tiny_conn.execute(s.plan) for s in specs]
            # transfer charged on the merged (first) stream only
            return streams[0].transfer_ms

        merged_everything = transfer(())
        region_kept_out = transfer([(1, 3)])
        # With <region> merged, its value rides on every supplier-group
        # tuple; prohibited, the merged relation narrows.  The difference
        # is small at this scale but must have the right sign per row of
        # the supplier group; total effect depends on the extra rows the
        # kept node needs, so just check both execute and differ.
        assert merged_everything != region_kept_out
