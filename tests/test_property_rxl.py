"""Property-based tests over randomly generated RXL views.

A hypothesis strategy builds random (but schema-valid) RXL view queries
over the TPC-H fragment by walking foreign keys in both directions, then
checks the system's central invariant on each: every partition, in either
SQL style, reduced or not, materializes the identical XML document, with
no implicit opens and a depth-bounded tagger stack.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.labeling import label_view_tree
from repro.core.partition import Partition, unified_partition
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.rxl.parser import parse_rxl
from repro.xmlgen.tagger import tag_streams

#: Join moves: (source table, condition template, target table).  ``{s}``
#: is the in-scope variable, ``{t}`` the fresh one.  Both FK directions.
_MOVES = {
    "Supplier": [
        ("Nation", "${s}.nationkey = ${t}.nationkey"),
        ("PartSupp", "${s}.suppkey = ${t}.suppkey"),
        ("LineItem", "${s}.suppkey = ${t}.suppkey"),
    ],
    "Nation": [
        ("Region", "${s}.regionkey = ${t}.regionkey"),
        ("Supplier", "${s}.nationkey = ${t}.nationkey"),
        ("Customer", "${s}.nationkey = ${t}.nationkey"),
    ],
    "Customer": [
        ("Nation", "${s}.nationkey = ${t}.nationkey"),
        ("Orders", "${s}.custkey = ${t}.custkey"),
    ],
    "Orders": [
        ("Customer", "${s}.custkey = ${t}.custkey"),
        ("LineItem", "${s}.orderkey = ${t}.orderkey"),
    ],
    "Part": [
        ("PartSupp", "${s}.partkey = ${t}.partkey"),
        ("LineItem", "${s}.partkey = ${t}.partkey"),
    ],
    "PartSupp": [
        ("Part", "${s}.partkey = ${t}.partkey"),
        ("Supplier", "${s}.suppkey = ${t}.suppkey"),
    ],
    "LineItem": [
        ("Orders", "${s}.orderkey = ${t}.orderkey"),
        ("Part", "${s}.partkey = ${t}.partkey"),
    ],
    "Region": [
        ("Nation", "${s}.regionkey = ${t}.regionkey"),
    ],
}

_TEXT_COLUMN = {
    "Supplier": "name", "Nation": "name", "Region": "name", "Part": "name",
    "Customer": "name", "Orders": "orderkey", "LineItem": "qty",
    "PartSupp": "availqty",
}

_ROOTS = ["Supplier", "Customer", "Orders", "Part", "Nation"]


@st.composite
def rxl_views(draw):
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"v{counter[0]}"

    def block(table, var, depth):
        tag = f"e{counter[0]}"
        parts = [f"<{tag}>"]
        parts.append(f"<t{counter[0]}>${var}.{_TEXT_COLUMN[table]}</t{counter[0]}>")
        if depth > 0:
            n_children = draw(st.integers(0, 2))
            for _ in range(n_children):
                target, condition = draw(st.sampled_from(_MOVES[table]))
                child_var = fresh()
                cond = condition.replace("{s}", var).replace("{t}", child_var)
                parts.append(
                    "{ from " + target + " $" + child_var
                    + " where " + cond + " construct "
                    + block(target, child_var, depth - 1) + " }"
                )
        parts.append(f"</{tag}>")
        return "".join(parts)

    root_table = draw(st.sampled_from(_ROOTS))
    root_var = fresh()
    body = block(root_table, root_var, draw(st.integers(0, 2)))
    return f"from {root_table} ${root_var} construct {body}"


def _materialize(tree, db, conn, partition, style, reduce):
    generator = SqlGenerator(tree, db.schema, style=style, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    streams = [conn.execute(s.plan, compact_rows=s.compact) for s in specs]
    return tag_streams(tree, specs, streams, root_tag="doc")


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_view_plan_invariance(tiny_db, tiny_conn, data):
    rxl = data.draw(rxl_views())
    tree = build_view_tree(parse_rxl(rxl), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)

    reference, ref_tagger = _materialize(
        tree, tiny_db, tiny_conn, unified_partition(tree),
        PlanStyle.OUTER_JOIN, False,
    )
    assert ref_tagger.implicit_opens == 0
    assert ref_tagger.max_stack_depth <= tree.max_depth()

    edges = [child.index for _, child in tree.edges]
    kept = {e for e in edges if data.draw(st.booleans(), label=f"keep {e}")}
    style = data.draw(
        st.sampled_from([PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION])
    )
    reduce = data.draw(st.booleans(), label="reduce")

    xml, tagger = _materialize(
        tree, tiny_db, tiny_conn, Partition(kept), style, reduce
    )
    assert xml == reference
    assert tagger.implicit_opens == 0
    assert tagger.max_stack_depth <= tree.max_depth()


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_view_well_formed(tiny_db, data):
    """Structural invariants of generated view trees."""
    rxl = data.draw(rxl_views())
    tree = build_view_tree(parse_rxl(rxl), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)
    for node in tree.nodes:
        # Skolem-function indices are consistent with tree structure.
        if node.parent is not None:
            assert node.index[:-1] == node.parent.index
            assert node.label in ("1", "?", "+", "*")
            # descendants carry ancestor keys
            assert set(node.parent.key_args) <= set(node.args)
        assert set(node.key_args) <= set(node.args)
    # (p, q) indices are unique across the tree.
    pairs = [(v.level, v.ordinal) for v in tree.stvs]
    assert len(pairs) == len(set(pairs))


@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_view_sql_roundtrip(tiny_db, tiny_conn, data):
    """Generated SQL for random views re-parses to the same rows."""
    from repro.common.ordering import sort_key
    from repro.relational.engine import CostModel, QueryEngine
    from repro.relational.sqlparse import parse_sql

    rxl = data.draw(rxl_views())
    tree = build_view_tree(parse_rxl(rxl), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)
    engine = QueryEngine(tiny_db, CostModel())
    generator = SqlGenerator(tree, tiny_db.schema)
    [spec] = generator.streams_for_partition(unified_partition(tree))
    reparsed = parse_sql(spec.sql, tiny_db.schema)
    original = engine.execute(spec.plan).rows
    again = engine.execute(reparsed).rows
    assert sorted(original, key=sort_key) == sorted(again, key=sort_key)
