"""Tests for the real-backend layer (repro.relational.backends).

The contract under test: a real backend never changes *anything*
observable from the simulated path — rows, XML bytes, simulated timings,
cache behaviour — it only adds cross-validation and a separately-reported
measured wall clock.  The simulated engine stays the oracle; SQLite is
the witness.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1, QUERY_2
from repro.common.errors import BackendMismatchError, QueryError
from repro.core.options import ExecutionOptions
from repro.core.partition import enumerate_partitions
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    Filter,
    Literal,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.backends import (
    BACKEND_NAMES,
    Backend,
    SimulatedBackend,
    SqliteBackend,
    resolve_backend,
)
from repro.relational.connection import Connection
from repro.relational.database import Database
from repro.relational.engine import CostModel
from repro.relational.schema import Column, DatabaseSchema, TableSchema
from repro.relational.sqlparse import parse_sql
from repro.relational.sqltext import render_sql
from repro.relational.types import SqlType


@pytest.fixture()
def sqlite_backend(tiny_db):
    backend = SqliteBackend(tiny_db)
    yield backend
    backend.close()


@pytest.fixture()
def conn(tiny_db):
    """A fresh connection per test — backend experiments must not leak
    into the session-scoped ``tiny_conn``."""
    return Connection(tiny_db, CostModel())


class TestResolveBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("simulated", "sqlite")

    def test_none_passes_through(self):
        assert resolve_backend(None) is None

    def test_instance_passes_through(self, tiny_db):
        backend = SqliteBackend(tiny_db)
        assert resolve_backend(backend, tiny_db) is backend
        backend.close()

    def test_simulated_by_name(self):
        backend = resolve_backend("simulated")
        assert isinstance(backend, SimulatedBackend)
        assert not backend.is_real

    def test_sqlite_by_name_needs_database(self):
        with pytest.raises(QueryError):
            resolve_backend("sqlite")

    def test_unknown_name_lists_choices(self, tiny_db):
        with pytest.raises(QueryError) as info:
            resolve_backend("postgres", tiny_db)
        assert "simulated" in str(info.value)
        assert "sqlite" in str(info.value)

    def test_base_backend_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Backend().execute_sql(None, "SELECT 1")


class TestSqliteMirror:
    def test_row_counts_match(self, tiny_db, sqlite_backend):
        for name in tiny_db.schema.table_names:
            assert sqlite_backend.table_count(name) == len(
                tiny_db.table(name)
            )

    def test_simple_scan_rows_match(self, tiny_db, conn, sqlite_backend):
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        oracle = conn.engine.execute(plan).rows
        rows, wall_ms = sqlite_backend.execute_sql(plan, render_sql(plan))
        assert rows == oracle
        assert wall_ms >= 0.0

    def test_dates_round_trip_typed(self, tiny_db, conn, sqlite_backend):
        import datetime

        plan = Sort(
            Project(
                Scan(tiny_db.schema.table("Orders"), "o"),
                [ProjectItem(ColumnRef("o.orderkey"), "okey"),
                 ProjectItem(ColumnRef("o.date"), "odate")],
            ),
            ["okey"],
        )
        rows, _ = sqlite_backend.execute_sql(plan, render_sql(plan))
        assert rows == conn.engine.execute(plan).rows
        assert all(isinstance(row[1], datetime.date) for row in rows)

    def test_mutation_triggers_reload(self, sqlite_backend):
        # A private database: the shared fixture must stay pristine.
        from repro.tpch.generator import TpchGenerator, TpchScale

        db = TpchGenerator(
            scale=TpchScale(suppliers=2, parts=2, customers=2, orders=2),
            seed=7,
        ).generate()
        backend = SqliteBackend(db)
        try:
            before = backend.table_count("Region")
            db.insert("Region", 99, "ATLANTIS")
            assert backend.table_count("Region") == before + 1
        finally:
            backend.close()

    def test_db_path_creates_file(self, tiny_db, tmp_path):
        path = tmp_path / "mirror.db"
        backend = SqliteBackend(tiny_db, db_path=str(path))
        try:
            assert backend.table_count("Nation") == len(
                tiny_db.table("Nation")
            )
        finally:
            backend.close()
        assert path.exists() and path.stat().st_size > 0

    def test_close_is_idempotent_and_reopens(self, tiny_db):
        backend = SqliteBackend(tiny_db)
        assert backend.table_count("Region") > 0
        backend.close()
        backend.close()
        # Lazy reopen on next use.
        assert backend.table_count("Region") > 0
        backend.close()

    def test_repr(self, tiny_db):
        assert ":memory:" in repr(SqliteBackend(tiny_db))


class TestConnectionIntegration:
    def test_rows_and_timings_identical(self, conn, q1_tree, tiny_db):
        gen = SqlGenerator(q1_tree, tiny_db.schema)
        spec = gen.streams_for_partition(
            list(enumerate_partitions(q1_tree))[0]
        )[0]
        plain = conn.execute(spec.plan, sql=spec.sql, label=spec.label)
        real = conn.execute(spec.plan, sql=spec.sql, label=spec.label,
                            backend="sqlite")
        assert list(real) == list(plain)
        assert real.server_ms == plain.server_ms
        assert real.transfer_ms == plain.transfer_ms
        assert real.backend == "sqlite"
        assert real.backend_wall_ms > 0.0
        assert plain.backend is None

    def test_connection_default_backend(self, tiny_db):
        connection = Connection(tiny_db, CostModel(), backend="sqlite")
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        stream = connection.execute(plan)
        assert stream.backend == "sqlite"
        assert stream.backend_wall_ms > 0.0

    def test_simulated_backend_name_is_inert(self, conn, tiny_db):
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        stream = conn.execute(plan, backend="simulated")
        assert stream.backend == "simulated"
        assert stream.backend_wall_ms == 0.0

    def test_cache_replay_skips_backend(self, tiny_db):
        calls = []

        class CountingBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                calls.append(sql)
                return super().execute_sql(plan, sql)

        connection = Connection(tiny_db, CostModel(), cache=True)
        backend = CountingBackend(tiny_db)
        plan = Sort(Scan(tiny_db.schema.table("Nation"), "n"),
                    ["n.nationkey"])
        first = connection.execute(plan, backend=backend)
        assert len(calls) == 1
        replay = connection.execute(plan, backend=backend)
        assert len(calls) == 1, "cache replay must not contact the backend"
        assert list(replay) == list(first)
        assert replay.backend_wall_ms == 0.0
        backend.close()

    def test_missing_rows_raise_mismatch(self, tiny_db):
        class LyingBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                rows, wall_ms = super().execute_sql(plan, sql)
                return rows[1:], wall_ms

        connection = Connection(tiny_db, CostModel())
        backend = LyingBackend(tiny_db)
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        with pytest.raises(BackendMismatchError) as info:
            connection.execute(plan, backend=backend)
        assert info.value.backend == "sqlite"
        backend.close()

    def test_wrong_order_raises_mismatch(self, tiny_db):
        class ShuffledBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                rows, wall_ms = super().execute_sql(plan, sql)
                return list(reversed(rows)), wall_ms

        connection = Connection(tiny_db, CostModel())
        backend = ShuffledBackend(tiny_db)
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        with pytest.raises(BackendMismatchError) as info:
            connection.execute(plan, backend=backend)
        assert "order" in str(info.value).lower()
        backend.close()

    def test_cursor_validates_on_exhaustion(self, conn, tiny_db):
        plan = Sort(Scan(tiny_db.schema.table("Nation"), "n"),
                    ["n.nationkey"])
        cursor = conn.execute_iter(plan, backend="sqlite")
        rows = list(cursor)
        assert rows == conn.engine.execute(plan).rows
        assert cursor.backend == "sqlite"
        assert cursor.backend_wall_ms > 0.0

    def test_cursor_mismatch_raises_on_exhaustion(self, tiny_db):
        class LyingBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                rows, wall_ms = super().execute_sql(plan, sql)
                return rows[:-1], wall_ms

        connection = Connection(tiny_db, CostModel())
        backend = LyingBackend(tiny_db)
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        cursor = connection.execute_iter(plan, backend=backend)
        with pytest.raises(BackendMismatchError):
            list(cursor)
        backend.close()

    def test_partial_drain_skips_validation(self, tiny_db):
        class LyingBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                rows, wall_ms = super().execute_sql(plan, sql)
                return rows[:-1], wall_ms

        connection = Connection(tiny_db, CostModel())
        backend = LyingBackend(tiny_db)
        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        cursor = connection.execute_iter(plan, backend=backend)
        next(iter(cursor))
        cursor.close()   # abandoned before exhaustion: no verdict, no raise
        backend.close()


class TestOptionsAndSession:
    def test_options_hashable_with_backend(self, tiny_db):
        backend = SqliteBackend(tiny_db)
        opts = ExecutionOptions(backend=backend)
        assert hash(opts) == hash(ExecutionOptions(backend=backend))
        assert opts != ExecutionOptions(backend="sqlite")
        assert hash(ExecutionOptions(backend="sqlite")) is not None
        backend.close()

    def test_session_materialize_with_backend(self, tiny_db):
        from repro.session import Session

        # Separate sessions: a shared session would replay the first
        # run's cached streams, and cache replays never contact the
        # backend (so its wall would legitimately be zero).
        plain = Session(Connection(tiny_db, CostModel())).materialize(
            QUERY_1, "fully-partitioned"
        )
        real = Session(Connection(tiny_db, CostModel())).materialize(
            QUERY_1, "fully-partitioned",
            options=ExecutionOptions(backend="sqlite"),
        )
        assert real.xml == plain.xml
        assert real.report.query_ms == plain.report.query_ms
        assert real.report.backend == "sqlite"
        assert real.report.backend_wall_ms > 0.0
        assert plain.report.backend is None


def _views(tiny_db):
    silk = SilkRoute(Connection(tiny_db, CostModel()))
    return {
        "q1": silk.define_view(QUERY_1),
        "q2": silk.define_view(QUERY_2),
    }


class TestCrossEngineByteIdentity:
    """Hypothesis-random partitions of both query families are
    byte-identical across simulated-only and sqlite-validated runs, for
    both execution engines and concurrent dispatch."""

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_partition_byte_identity(self, tiny_db, data):
        views = _views(tiny_db)
        query = data.draw(st.sampled_from(sorted(views)))
        view = views[query]
        partitions = list(enumerate_partitions(view.tree))
        partition = partitions[
            data.draw(st.integers(0, len(partitions) - 1))
        ]
        engine = data.draw(st.sampled_from(["tuple", "batch"]))
        style = data.draw(st.sampled_from([
            PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION,
        ]))
        plain = view.materialize(
            partition, engine=engine, style=style, workers=3,
        )
        real = view.materialize(
            partition, engine=engine, style=style, workers=3,
            backend="sqlite",
        )
        assert real.xml == plain.xml
        assert real.report.query_ms == plain.report.query_ms
        assert real.report.transfer_ms == plain.report.transfer_ms
        for plain_stream, real_stream in zip(
            plain.report.streams, real.report.streams
        ):
            assert real_stream.server_ms == plain_stream.server_ms
            assert real_stream.backend == "sqlite"

    def test_streaming_path_byte_identity(self, tiny_db):
        views = _views(tiny_db)
        for view in views.values():
            plain = view.materialize("fully-partitioned")
            sink = io.StringIO()
            streamed = view.materialize_to(
                sink, "fully-partitioned", backend="sqlite"
            )
            assert sink.getvalue() == plain.xml
            assert streamed.report.backend == "sqlite"
            assert streamed.report.backend_wall_ms > 0.0

    def test_replica_pool_with_backend(self, tiny_db):
        views = _views(tiny_db)
        view = views["q1"]
        plain = view.materialize("fully-partitioned", workers=2)
        real = view.materialize(
            "fully-partitioned", workers=2, replicas=2, backend="sqlite",
        )
        assert real.xml == plain.xml
        assert real.report.backend == "sqlite"

    def test_mixed_replica_set(self, tiny_db):
        from repro.relational.replicas import ReplicaSet

        connection = Connection(tiny_db, CostModel())
        silk = SilkRoute(connection)
        view = silk.define_view(QUERY_1)
        plain = view.materialize("fully-partitioned", workers=2)
        replicas = ReplicaSet.from_connection(
            connection, 3, backends=[None, "sqlite", None]
        )
        mixed = view.materialize(
            "fully-partitioned", workers=2, replicas=replicas,
        )
        assert mixed.xml == plain.xml
        assert mixed.report.query_ms == plain.report.query_ms

    def test_mixed_replica_set_length_checked(self, tiny_db):
        from repro.relational.replicas import ReplicaSet

        connection = Connection(tiny_db, CostModel())
        with pytest.raises(ValueError):
            ReplicaSet.from_connection(connection, 2, backends=["sqlite"])


RESERVED_ROWS = [
    (1, "alpha", "x'y"),
    (2, "beta", None),
    (3, "o'brien", "quote''quote"),
]


def _reserved_db():
    """A schema whose identifiers are all SQL reserved words — the
    quoting gauntlet for generated text on a real parser."""
    schema = DatabaseSchema(
        tables=[
            TableSchema(
                "order",
                [
                    Column("key", SqlType.INTEGER),
                    Column("from", SqlType.VARCHAR),
                    Column("select", SqlType.VARCHAR, nullable=True),
                ],
                key=["key"],
            ),
        ],
    )
    db = Database(schema)
    for row in RESERVED_ROWS:
        db.insert("order", *row)
    return db


class TestReservedWordIdentifiers:
    def test_rendered_sql_quotes_reserved_words(self):
        db = _reserved_db()
        plan = Sort(Scan(db.schema.table("order"), "o"), ["o.key"])
        sql = render_sql(plan)
        assert '"order"' in sql
        assert '"from"' in sql
        assert '"select"' in sql

    def test_roundtrips_through_own_parser(self):
        db = _reserved_db()
        engine_conn = Connection(db, CostModel())
        plan = Sort(
            Filter(
                Scan(db.schema.table("order"), "o"),
                Comparison("!=", ColumnRef("o.key"), Literal(2)),
            ),
            ["o.key"],
        )
        sql = render_sql(plan)
        reparsed = parse_sql(sql, db.schema)
        assert engine_conn.engine.execute(reparsed).rows \
            == engine_conn.engine.execute(plan).rows

    def test_executes_identically_on_sqlite(self):
        db = _reserved_db()
        connection = Connection(db, CostModel())
        plan = Sort(
            Project(
                Filter(
                    Scan(db.schema.table("order"), "o"),
                    Comparison("!=", ColumnRef("o.from"), Literal("beta")),
                ),
                [ProjectItem(ColumnRef("o.key"), "key"),
                 ProjectItem(ColumnRef("o.select"), "select")],
            ),
            ["key"],
        )
        stream = connection.execute(plan, backend="sqlite")
        assert stream.backend == "sqlite"
        assert list(stream) == connection.engine.execute(plan).rows
