"""Incremental view maintenance: mutations, delta propagation, splicing.

The contract under test: a mutation through the
:class:`~repro.relational.database.Database` API moves only the touched
tables' generations, the dependency-scoped caches drop exactly the
entries that read those tables, and re-materializing a view afterwards
is byte-identical — XML and simulated timings — to a cold run against a
fresh database holding the same final state.  The property test drives
random interleavings of writes and materializations through both
engines, concurrent dispatch, faults, and replicas.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1
from repro.cli import _apply_delta
from repro.common.errors import ReproError, SchemaError, StaleGenerationError
from repro.core.options import ExecutionOptions
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import SqlGenerator
from repro.obs import ObsOptions
from repro.relational.cache import NodeResultCache, PlanResultCache
from repro.relational.connection import Connection
from repro.relational.database import Database, synthesize_rows
from repro.relational.dependencies import plan_tables
from repro.relational.dispatch import execute_specs
from repro.relational.engine import CostModel
from repro.relational.estimator import CostEstimator
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.tpch.generator import TpchGenerator, TpchScale

TINY = TpchScale(suppliers=8, parts=16, customers=10, orders=40)


def fresh_setup(seed=42, cache=True):
    """A private mutable database plus a cached SilkRoute view over it
    (the session fixtures are shared, so mutation tests build their own)."""
    db = TpchGenerator(scale=TINY, seed=seed).generate()
    connection = Connection(db, CostModel())
    silk = SilkRoute(
        connection, estimator=CostEstimator(db, CostModel()), cache=cache,
    )
    return db, connection, silk, silk.define_view(QUERY_1)


def clone_from_state(db):
    """A fresh :class:`Database` holding ``db``'s current rows in stored
    order — the cold-run oracle for incremental maintenance."""
    clone = Database(db.schema)
    for name, table in db.tables.items():
        fresh = clone.table(name)
        for row in table.rows:
            fresh.insert(*row)
    return clone


def cold_materialize(db, strategy, options):
    """Materialize ``QUERY_1`` over a clone of ``db`` through a fresh
    (cache-empty) connection."""
    clone = clone_from_state(db)
    connection = Connection(clone, CostModel())
    view = SilkRoute(
        connection, estimator=CostEstimator(clone, CostModel()),
    ).define_view(QUERY_1)
    return view.materialize(strategy, root_tag="view", options=options)


# ---------------------------------------------------------------------------
# Mutation API


class TestMutationApi:
    def test_insert_bumps_only_that_table(self):
        db, _, _, _ = fresh_setup()
        before = db.table_generations()
        [row] = synthesize_rows(db, "Nation", 1)
        db.insert("Nation", *row)
        after = db.table_generations()
        assert after["Nation"] == before["Nation"] + 1
        assert {k: v for k, v in after.items() if k != "Nation"} == \
            {k: v for k, v in before.items() if k != "Nation"}

    def test_update_counts_and_preserves_slots(self):
        db, _, _, _ = fresh_setup()
        table = db.table("Supplier")
        keys_before = [row[0] for row in table.rows]
        matched = db.update(
            "Supplier", lambda row: row["suppkey"] == keys_before[0],
            {"name": "renamed"},
        )
        assert matched == 1
        assert [row[0] for row in table.rows] == keys_before
        assert table.rows[0][table.schema.column_index("name")] == "renamed"

    def test_no_match_update_is_a_version_noop(self):
        db, _, _, _ = fresh_setup()
        version = db.table("Supplier").version
        assert db.update("Supplier", {"suppkey": -1}, {"name": "x"}) == 0
        assert db.table("Supplier").version == version

    def test_delete_counts_and_preserves_order(self):
        db, _, _, _ = fresh_setup()
        table = db.table("Supplier")
        survivors = [row[0] for row in table.rows[1:]]
        victim = table.rows[0][0]
        assert db.delete("Supplier", {"suppkey": victim}) == 1
        assert [row[0] for row in table.rows] == survivors

    def test_failed_update_commits_nothing(self):
        db, _, _, _ = fresh_setup()
        table = db.table("Supplier")
        rows_before = list(table.rows)
        version = table.version
        first_key = table.rows[0][0]
        with pytest.raises(SchemaError):
            # Collapse every key onto one value: duplicate primary key.
            db.update("Supplier", lambda row: True, {"suppkey": first_key})
        assert table.rows == rows_before
        assert table.version == version

    def test_synthesized_rows_join_and_validate(self):
        db, _, _, _ = fresh_setup()
        rows = synthesize_rows(db, "Supplier", 3, seed=7)
        assert len(rows) == 3
        for row in rows:
            db.insert("Supplier", *row)
        db.check_foreign_keys()
        nationkeys = set(db.table("Nation").column_values("nationkey"))
        position = db.table("Supplier").schema.column_index("nationkey")
        assert all(row[position] in nationkeys for row in rows)


# ---------------------------------------------------------------------------
# Dependency footprints and cache keys


class TestDependencyKeys:
    def _specs(self, db, view):
        generator = SqlGenerator(view.tree, db.schema)
        return generator.streams_for_partition(view.fully_partitioned())

    def test_plan_tables_names_the_scanned_tables(self):
        db, _, _, view = fresh_setup()
        specs = self._specs(db, view)
        footprints = [plan_tables(spec.plan) for spec in specs]
        assert all(fp for fp in footprints)
        everything = frozenset().union(*footprints)
        assert "Supplier" in everything and "Nation" in everything
        # Fully partitioned: no single stream reads every table.
        assert all(fp < everything for fp in footprints)

    def test_dependency_key_moves_only_for_read_tables(self):
        db, connection, _, view = fresh_setup()
        engine = connection.engine
        spec = next(
            s for s in self._specs(db, view)
            if "Region" not in engine.tables_for(s.plan)
        )
        key = engine.dependency_key(spec.plan)
        cache_key = engine.cache_key_for(spec.plan)
        [row] = synthesize_rows(db, "Region", 1)
        db.insert("Region", *row)
        assert engine.dependency_key(spec.plan) == key
        assert engine.cache_key_for(spec.plan) == cache_key
        touched = sorted(engine.tables_for(spec.plan))[0]
        db.delete(touched, lambda row: False)
        assert engine.dependency_key(spec.plan) == key  # 0 rows: no-op
        first = db.table(touched).rows[0]
        db.delete(touched, lambda row: tuple(row.values()) == first)
        assert engine.dependency_key(spec.plan) != key
        assert engine.cache_key_for(spec.plan) != cache_key


# ---------------------------------------------------------------------------
# NodeResultCache


class _FakeBatch:
    def __init__(self, length, arity=2):
        self.length = length
        self.arity = arity


class TestNodeResultCache:
    def test_invalidate_drops_only_dependents(self):
        cache = NodeResultCache()
        cache.store("a", _FakeBatch(4), {"Nation"})
        cache.store("b", _FakeBatch(4), {"Supplier", "Nation"})
        cache.store("c", _FakeBatch(4), {"Region"})
        assert cache.invalidate({"Nation"}) == 2
        assert cache.get("c") is not None
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.stats().invalidations == 2

    def test_retention_keeps_hottest_per_byte(self):
        big, small = _FakeBatch(1000), _FakeBatch(1)
        budget = 2 * (64.0 + 16.0 * small.length * small.arity) + 1
        cache = NodeResultCache(retention_bytes=budget)
        cache.store("cold-big", big, {"Part"})
        cache.store("hot-small", small, {"Part"})
        cache.store("warm-small", small, {"Part"})
        for _ in range(5):
            cache.get("hot-small")
        cache.get("warm-small")
        cache.invalidate({"Nation"})  # no dependents; retention still runs
        assert cache.get("hot-small") is not None
        assert cache.get("warm-small") is not None
        assert cache.get("cold-big") is None
        assert cache.stats().evictions == 1

    def test_configure_tightens_and_lifts(self):
        cache = NodeResultCache()
        for i in range(6):
            cache.store(f"f{i}", _FakeBatch(1), {"Part"})
        cache.configure(max_entries=3)
        assert len(cache) == 3
        assert cache.stats().evictions == 3
        cache.configure(retention_bytes=1.0)
        assert cache.stats().max_bytes == 1.0
        cache.configure(retention_bytes=float("inf"))
        assert cache.stats().max_bytes == float("inf")

    def test_options_wire_the_bounds(self):
        _, connection, _, view = fresh_setup()
        view.materialize(
            "fully-partitioned",
            options=ExecutionOptions(node_cache_entries=5,
                                     retention_bytes=1e6),
        )
        node_cache = connection.engine.node_cache
        assert node_cache.max_entries == 5
        assert node_cache.retention_bytes == 1e6
        assert len(node_cache) <= 5


# ---------------------------------------------------------------------------
# PlanResultCache invalidation


class TestPlanCacheInvalidation:
    def test_mutation_drops_only_dependent_entries(self):
        db, connection, silk, view = fresh_setup()
        view.materialize("fully-partitioned",
                         options=ExecutionOptions(obs=ObsOptions()))
        cache = silk.cache
        entries_before = len(cache)
        assert entries_before > 0
        [row] = synthesize_rows(db, "Region", 1)
        db.insert("Region", *row)
        obs = ObsOptions()
        view.materialize("fully-partitioned",
                         options=ExecutionOptions(obs=obs))
        stats = cache.stats()
        assert stats.invalidations > 0
        assert stats.invalidations < entries_before
        counters = obs.metrics.snapshot()["counters"]
        assert counters["plan_cache.invalidations"] == stats.invalidations

    def test_opaque_keys_survive_invalidation(self):
        db, _, _, _ = fresh_setup()
        cache = PlanResultCache()

        class Entry:
            nbytes = 1.0
            complete = True
        cache.store(("plan", 1), Entry())
        dropped = cache.invalidate_tables(
            db._token, {"Nation"}, db.table_generations(),
        )
        assert dropped == 0
        assert cache.peek(("plan", 1)) is not None


# ---------------------------------------------------------------------------
# Stale-generation guard


class TestStaleGenerationGuard:
    def test_mid_sweep_mutation_raises_repro_error(self):
        db, connection, _, view = fresh_setup()
        generator = SqlGenerator(view.tree, db.schema)
        specs = generator.streams_for_partition(view.fully_partitioned())
        pinned = db.table_generations()
        [row] = synthesize_rows(db, "Nation", 1)
        db.insert("Nation", *row)
        with pytest.raises(StaleGenerationError) as exc_info:
            execute_specs(connection, specs, expect_generations=pinned)
        error = exc_info.value
        assert isinstance(error, ReproError)
        assert list(error.tables) == ["Nation"]
        assert "Nation" in str(error) and "mutated mid-sweep" in str(error)

    def test_matching_generations_pass(self):
        db, connection, _, view = fresh_setup()
        generator = SqlGenerator(view.tree, db.schema)
        specs = generator.streams_for_partition(view.unified_partition())
        result = execute_specs(
            connection, specs, expect_generations=db.table_generations(),
        )
        assert result.timeout is None


# ---------------------------------------------------------------------------
# Incremental re-materialization == cold run


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("engine", ["batch", "tuple"])
    @pytest.mark.parametrize("op,table", [
        ("insert", "Nation"),
        ("insert", "Supplier"),
        ("update", "LineItem"),
        ("delete", "PartSupp"),
    ])
    def test_delta_matches_cold_run(self, engine, op, table):
        db, _, _, view = fresh_setup()
        options = ExecutionOptions(engine=engine)
        view.materialize("fully-partitioned", root_tag="view",
                         options=options)
        assert _apply_delta(db, table, op, 2, seed=3) > 0
        incremental = view.materialize("fully-partitioned", root_tag="view",
                                       options=options)
        cold = cold_materialize(db, "fully-partitioned", options)
        assert incremental.xml == cold.xml
        assert incremental.report.query_ms == cold.report.query_ms
        assert incremental.report.transfer_ms == cold.report.transfer_ms

    def test_untouched_streams_splice_from_cache(self):
        db, _, _, view = fresh_setup()
        options = ExecutionOptions()
        view.materialize("fully-partitioned", root_tag="view",
                         options=options)
        first = view.instance_cache.stats()
        assert first["misses"] > 0 and first["hits"] == 0
        # An unchanged re-materialization serves the finished document —
        # no re-decode, no re-tag.
        repeat = view.materialize("fully-partitioned", root_tag="view",
                                  options=options)
        assert view.document_cache.stats()["hits"] == 1
        assert view.instance_cache.stats() == first
        # Any plan of the same view can serve the document too.
        unified = view.materialize("unified", root_tag="view",
                                   options=options)
        assert view.document_cache.stats()["hits"] == 2
        assert unified.xml == repeat.xml
        assert _apply_delta(db, "Region", "update", 1, seed=1) == 1
        incremental = view.materialize("fully-partitioned", root_tag="view",
                                       options=options)
        third = view.instance_cache.stats()
        replayed = third["hits"] - first["hits"]
        redecoded = third["misses"] - first["misses"]
        assert redecoded > 0            # the Region-reading streams moved
        assert replayed > 0             # ...but untouched siblings spliced
        assert replayed + redecoded == first["misses"]
        cold = cold_materialize(db, "fully-partitioned", options)
        assert incremental.xml == cold.xml
        assert repeat.xml != incremental.xml  # the delta is visible


# ---------------------------------------------------------------------------
# Property: random interleavings reconcile with the final state


_MUTABLE_TABLES = ["Nation", "Supplier", "PartSupp", "LineItem", "Customer"]

_STEPS = st.lists(
    st.one_of(
        st.just(("materialize",)),
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.sampled_from(_MUTABLE_TABLES),
            st.integers(min_value=1, max_value=3),
        ),
    ),
    min_size=1,
    max_size=5,
)


def _variant_options(engine, workers, resilience):
    retry = faults = replicas = None
    if resilience == "faults":
        faults = FaultPolicy(seed=5, error_rate=0.15)
        retry = RetryPolicy(max_attempts=6)
    elif resilience == "replicas":
        replicas = 2
        retry = RetryPolicy(max_attempts=6)
    return ExecutionOptions(engine=engine, workers=workers, retry=retry,
                            faults=faults, replicas=replicas)


class TestInterleavingProperty:
    @pytest.mark.parametrize("engine,workers,resilience", [
        ("batch", None, None),
        ("tuple", None, None),
        ("batch", 2, "faults"),
        ("batch", 2, "replicas"),
    ])
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(steps=_STEPS)
    def test_interleavings_match_final_state(self, steps, engine, workers,
                                             resilience):
        db, _, _, view = fresh_setup(seed=11)
        options = _variant_options(engine, workers, resilience)
        for i, step in enumerate(steps):
            if step[0] == "materialize":
                view.materialize("fully-partitioned", root_tag="view",
                                 options=options)
            else:
                op, table, count = step
                try:
                    _apply_delta(db, table, op, count, seed=i)
                except SchemaError:
                    continue  # e.g. key space exhausted; skip the step
        final = view.materialize("fully-partitioned", root_tag="view",
                                 options=options)
        cold = cold_materialize(db, "fully-partitioned", options)
        assert final.xml == cold.xml
        if resilience is None:
            assert final.report.query_ms == cold.report.query_ms
            assert final.report.transfer_ms == cold.report.transfer_ms
