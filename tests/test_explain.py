"""Tests for the textual EXPLAIN (repro.relational.explain)."""

import pytest

from repro.core.partition import unified_partition
from repro.core.sqlgen import SqlGenerator
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.estimator import CostEstimator
from repro.relational.explain import explain_plan


@pytest.fixture
def unified_plan(q1_tree, tiny_db):
    generator = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
    [spec] = generator.streams_for_partition(unified_partition(q1_tree))
    return spec.plan


class TestExplain:
    def test_plain(self, unified_plan):
        text = explain_plan(unified_plan)
        lines = text.splitlines()
        assert lines[0].startswith("Sort [")
        assert any("LeftOuterJoin [" in line for line in lines)
        assert any("Scan Supplier AS s" in line for line in lines)
        # Children indented deeper than parents.
        assert lines[1].startswith("  ")

    def test_with_estimates(self, unified_plan, tiny_db):
        estimator = CostEstimator(tiny_db, CostModel())
        text = explain_plan(unified_plan, estimator=estimator)
        assert "est_rows=" in text
        assert "est_ms=" in text

    def test_with_actuals(self, unified_plan, tiny_db):
        engine = QueryEngine(tiny_db, CostModel())
        text = explain_plan(unified_plan, engine=engine)
        assert "rows=" in text

    def test_describes_every_operator(self, tiny_db):
        from repro.relational.algebra import (
            ColumnRef, Comparison, Distinct, Filter, InnerJoin, Literal,
            OuterUnion, Project, ProjectItem, Scan, Sort,
        )
        supplier = Scan(tiny_db.schema.table("Supplier"), "s")
        nation = Scan(tiny_db.schema.table("Nation"), "n")
        plan = Sort(
            Distinct(
                Project(
                    Filter(
                        InnerJoin(supplier, nation,
                                  [("s.nationkey", "n.nationkey")]),
                        Comparison("=", ColumnRef("s.suppkey"), Literal(1)),
                    ),
                    [ProjectItem(ColumnRef("s.name"), "x")],
                )
            ),
            ["x"],
        )
        text = explain_plan(plan)
        for expected in ("Sort [x]", "Distinct", "Project [x]",
                         "Filter [s.suppkey = 1]",
                         "InnerJoin [s.nationkey = n.nationkey]",
                         "Scan Supplier AS s", "Scan Nation AS n"):
            assert expected in text

    def test_union_description(self, tiny_db):
        from repro.relational.algebra import (
            ColumnRef, OuterUnion, Project, ProjectItem, Scan,
        )
        a = Project(Scan(tiny_db.schema.table("Region"), "r"),
                    [ProjectItem(ColumnRef("r.name"), "x")])
        b = Project(Scan(tiny_db.schema.table("Nation"), "n"),
                    [ProjectItem(ColumnRef("n.name"), "y")])
        text = explain_plan(OuterUnion([a, b], distinct=True))
        assert "OuterUnion DISTINCT [2 branches]" in text

    def test_long_lists_truncated(self, unified_plan):
        text = explain_plan(unified_plan)
        assert any("..." in line for line in text.splitlines())
