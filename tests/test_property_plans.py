"""Property-based tests over randomly generated algebra plans.

A hypothesis strategy composes random (but well-formed) plans over the
Region/Nation tables, then checks:

* the engine executes them deterministically,
* the SQL renderer produces text that the SQL parser accepts, and
* the re-parsed plan executes to exactly the same rows (the middle-ware
  round trip: plan → SQL → RDBMS plan).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.ordering import sort_key
from repro.core.partition import enumerate_partitions
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.sqlparse import parse_sql
from repro.relational.sqltext import render_sql


@st.composite
def plans(draw, schema):
    """A random projected plan over Region/Nation with fresh aliases."""
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def base(depth):
        choice = draw(st.integers(0, 2 if depth > 0 else 1))
        if choice == 0:
            alias = fresh("r")
            return Scan(schema.table("Region"), alias)
        if choice == 1:
            alias = fresh("n")
            return Scan(schema.table("Nation"), alias)
        left = base(depth - 1)
        right_alias = fresh("j")
        right = Scan(schema.table("Nation"), right_alias)
        left_keys = [
            c.name for c in left.columns() if c.name.endswith("regionkey")
        ]
        if left_keys:
            return InnerJoin(
                left, right, [(draw(st.sampled_from(left_keys)),
                               f"{right_alias}.regionkey")]
            )
        return InnerJoin(left, right, [])

    plan = base(draw(st.integers(0, 2)))

    if draw(st.booleans()):
        columns = [c.name for c in plan.columns()]
        key_cols = [c for c in columns if "key" in c]
        target = draw(st.sampled_from(key_cols))
        plan = Filter(
            plan,
            Comparison(
                draw(st.sampled_from(["=", "<", ">=", "!="])),
                ColumnRef(target),
                Literal(draw(st.integers(0, 6))),
            ),
        )

    columns = list(plan.columns())
    n_cols = draw(st.integers(1, min(4, len(columns))))
    picked = draw(
        st.lists(
            st.sampled_from(columns), min_size=n_cols, max_size=n_cols,
            unique_by=lambda c: c.name,
        )
    )
    items = [
        ProjectItem(ColumnRef(c.name), f"c{i}") for i, c in enumerate(picked)
    ]
    if draw(st.booleans()):
        items.append(ConstantColumn(f"c{len(items)}", draw(st.integers(0, 9))))
    plan = Project(plan, items)

    if draw(st.booleans()):
        plan = Distinct(plan)
    if draw(st.booleans()):
        plan = Sort(plan, [i.name for i in plan.items]
                    if isinstance(plan, Project)
                    else [c.name for c in plan.columns()])
    return plan


@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_plan_roundtrip(tiny_db, data):
    plan = data.draw(plans(tiny_db.schema))
    engine = QueryEngine(tiny_db, CostModel())
    original = engine.execute(plan)

    # Deterministic execution.
    again = engine.execute(plan)
    assert original.rows == again.rows
    assert original.server_ms == again.server_ms

    # SQL round trip preserves the result multiset.
    sql = render_sql(plan)
    reparsed = parse_sql(sql, tiny_db.schema)
    reparsed_rows = engine.execute(reparsed).rows
    assert sorted(original.rows, key=sort_key) == sorted(
        reparsed_rows, key=sort_key
    )


@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_union_of_random_plans_roundtrip(tiny_db, data):
    left = data.draw(plans(tiny_db.schema))
    right = data.draw(plans(tiny_db.schema))

    def unsorted(plan):
        return plan.child if isinstance(plan, Sort) else plan

    # Disambiguate the right branch's columns: a real generator never unions
    # same-named columns of different types.
    right = Project(
        unsorted(right),
        [ProjectItem(ColumnRef(c.name), f"d{i}")
         for i, c in enumerate(unsorted(right).columns())],
    )
    union = OuterUnion([unsorted(left), right])
    engine = QueryEngine(tiny_db, CostModel())
    original = engine.execute(union).rows
    reparsed = parse_sql(render_sql(union), tiny_db.schema)
    reparsed_rows = engine.execute(reparsed).rows
    assert sorted(original, key=sort_key) == sorted(reparsed_rows, key=sort_key)


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_partition_sql_roundtrip(tiny_db, q1_tree, q2_tree, data):
    """Every stream of a random partition survives the full middle-ware
    text round trip: generated SQL → our parser → re-executed plan yields
    the generated plan's exact result multiset."""
    tree = data.draw(st.sampled_from([q1_tree, q2_tree]))
    style = data.draw(
        st.sampled_from([PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION])
    )
    partitions = list(enumerate_partitions(tree))
    partition = partitions[data.draw(st.integers(0, len(partitions) - 1))]
    specs = SqlGenerator(
        tree, tiny_db.schema, style=style
    ).streams_for_partition(partition)
    engine = QueryEngine(tiny_db, CostModel())
    for spec in specs:
        oracle = engine.execute(spec.plan).rows
        reparsed = parse_sql(spec.sql, tiny_db.schema)
        assert sorted(engine.execute(reparsed).rows, key=sort_key) \
            == sorted(oracle, key=sort_key), spec.label


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_partition_sqlite_identity(tiny_db, q1_tree, q2_tree, data):
    """The same streams, executed on a real SQLite mirror through the
    dialect layer, align with the simulated oracle row-for-row (the
    production cross-validation check, run directly)."""
    from repro.relational.backends import SqliteBackend
    from repro.relational.backends.base import align_backend_rows

    tree = data.draw(st.sampled_from([q1_tree, q2_tree]))
    style = data.draw(
        st.sampled_from([PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION])
    )
    partitions = list(enumerate_partitions(tree))
    partition = partitions[data.draw(st.integers(0, len(partitions) - 1))]
    specs = SqlGenerator(
        tree, tiny_db.schema, style=style
    ).streams_for_partition(partition)
    engine = QueryEngine(tiny_db, CostModel())
    backend = SqliteBackend(tiny_db)
    try:
        for spec in specs:
            oracle = engine.execute(spec.plan).rows
            rows, _ = backend.execute_sql(spec.plan, spec.sql)
            align_backend_rows(
                spec.plan, oracle, rows, backend.name,
                label=spec.label, sql=spec.sql,
            )
    finally:
        backend.close()


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_estimator_handles_any_plan(tiny_db, tiny_estimator, data):
    """The oracle never crashes and returns sane values for any plan."""
    plan = data.draw(plans(tiny_db.schema))
    estimate = tiny_estimator.estimate(plan)
    assert estimate.cardinality >= 0
    assert estimate.server_ms >= 0
    assert estimate.row_width >= 0
