"""Tests for source-capability plan filtering (repro.core.permissible)."""


from repro.core.partition import (
    Partition,
    fully_partitioned,
    unified_partition,
)
from repro.core.permissible import (
    is_permissible,
    partition_requirements,
    permissible_partitions,
    restrict_greedy_plan,
)
from repro.core.greedy import GreedyPlan
from repro.core.sqlgen import SqlGenerator
from repro.relational.connection import SourceDescription

FULL = SourceDescription()
NO_OUTER = SourceDescription(supports_left_outer_join=False)
NO_UNION = SourceDescription(supports_union=False)


class TestRequirements:
    def test_fully_partitioned_needs_nothing(self, q1_tree):
        oj, union = partition_requirements(q1_tree, fully_partitioned(q1_tree))
        assert not oj and not union

    def test_unified_needs_both(self, q1_tree):
        oj, union = partition_requirements(q1_tree, unified_partition(q1_tree))
        assert oj and union

    def test_chain_needs_no_union(self, q1_tree):
        # Keep only the chain S1.4 -> S1.4.2: one child per node.
        chain = Partition([(1, 4, 2)])
        oj, union = partition_requirements(q1_tree, chain)
        assert oj and not union

    def test_siblings_need_union(self, q1_tree):
        siblings = Partition([(1, 1), (1, 2)])
        oj, union = partition_requirements(q1_tree, siblings)
        assert oj and union

    def test_requirements_match_generated_plans(self, q1_tree, tiny_db):
        """Structural prediction agrees with the actual generated SQL."""
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        for partition in [
            fully_partitioned(q1_tree),
            unified_partition(q1_tree),
            Partition([(1, 4, 2)]),
            Partition([(1, 1), (1, 2)]),
            Partition([(1, 4), (1, 4, 1), (1, 4, 2)]),
        ]:
            oj, union = partition_requirements(q1_tree, partition)
            specs = generator.streams_for_partition(partition)
            assert any(s.uses_outer_join() for s in specs) == oj
            assert any(s.uses_union() for s in specs) == union


class TestPermissibility:
    def test_full_support_permits_everything(self, q1_tree):
        assert len(permissible_partitions(q1_tree, FULL)) == 512

    def test_no_outer_join_leaves_only_fully_partitioned(self, q1_tree):
        permitted = permissible_partitions(q1_tree, NO_OUTER)
        assert permitted == [fully_partitioned(q1_tree)]

    def test_no_union_permits_chains(self, q1_tree):
        permitted = permissible_partitions(q1_tree, NO_UNION)
        assert fully_partitioned(q1_tree) in permitted
        assert unified_partition(q1_tree) not in permitted
        assert Partition([(1, 4, 2)]) in permitted
        assert 1 < len(permitted) < 512

    def test_is_permissible(self, q1_tree):
        assert is_permissible(q1_tree, unified_partition(q1_tree), FULL)
        assert not is_permissible(q1_tree, unified_partition(q1_tree), NO_UNION)


class TestGreedyRestriction:
    def test_restrict_family(self, q1_tree):
        plan = GreedyPlan(
            mandatory=frozenset(),
            optional=frozenset({(1, 1), (1, 4, 2)}),
        )
        full = restrict_greedy_plan(q1_tree, plan, FULL)
        assert len(full) == 4
        no_outer = restrict_greedy_plan(q1_tree, plan, NO_OUTER)
        assert no_outer == [Partition([])]
        no_union = restrict_greedy_plan(q1_tree, plan, NO_UNION)
        # every member here is a chain or empty: all permitted
        assert len(no_union) == 4

    def test_mandatory_conflict_can_empty_family(self, q1_tree):
        plan = GreedyPlan(
            mandatory=frozenset({(1, 1), (1, 2)}),  # siblings: needs union
            optional=frozenset(),
        )
        assert restrict_greedy_plan(q1_tree, plan, NO_UNION) == []
