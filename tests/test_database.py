"""Tests for the database catalog and statistics (repro.relational.database)."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.relational.types import SqlType


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "Dept",
                [Column("deptno", SqlType.INTEGER), Column("name", SqlType.VARCHAR)],
                key=["deptno"],
            ),
            TableSchema(
                "Emp",
                [
                    Column("empno", SqlType.INTEGER),
                    Column("name", SqlType.VARCHAR),
                    Column("deptno", SqlType.INTEGER, nullable=True),
                ],
                key=["empno"],
            ),
        ],
        [ForeignKey("Emp", ("deptno",), "Dept", ("deptno",), not_null=False)],
    )
    return Database(schema)


class TestBasics:
    def test_insert_and_lookup(self, db):
        db.insert("Dept", 1, "eng")
        assert len(db.table("Dept")) == 1
        assert db.total_rows() == 1

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.table("Nope")

    def test_total_bytes_positive(self, db):
        db.insert("Dept", 1, "eng")
        assert db.total_bytes() > 0


class TestForeignKeys:
    def test_valid_references(self, db):
        db.insert("Dept", 1, "eng")
        db.insert("Emp", 10, "ada", 1)
        assert db.check_foreign_keys() == 1

    def test_dangling_reference(self, db):
        db.insert("Emp", 10, "ada", 99)
        with pytest.raises(SchemaError, match="dangling"):
            db.check_foreign_keys()

    def test_nullable_fk_allows_null(self, db):
        db.insert("Emp", 10, "ada", None)
        assert db.check_foreign_keys() == 0

    def test_not_null_fk_rejects_null(self):
        schema = DatabaseSchema(
            [
                TableSchema(
                    "Dept",
                    [Column("deptno", SqlType.INTEGER)],
                    key=["deptno"],
                ),
                TableSchema(
                    "Emp",
                    [
                        Column("empno", SqlType.INTEGER),
                        Column("deptno", SqlType.INTEGER, nullable=True),
                    ],
                    key=["empno"],
                ),
            ],
            [ForeignKey("Emp", ("deptno",), "Dept", ("deptno",), not_null=True)],
        )
        db = Database(schema)
        db.insert("Emp", 1, None)
        with pytest.raises(SchemaError, match="NOT NULL"):
            db.check_foreign_keys()


class TestStatistics:
    def test_stats_computed_lazily(self, db):
        db.insert("Dept", 1, "eng")
        db.insert("Dept", 2, "eng")
        stats = db.stats("Dept")
        assert stats.row_count == 2
        assert stats.column("deptno").n_distinct == 2
        assert stats.column("name").n_distinct == 1

    def test_null_fraction(self, db):
        db.insert("Emp", 1, "a", None)
        db.insert("Emp", 2, "b", None)
        db.insert("Dept", 5, "x")
        db.insert("Emp", 3, "c", 5)
        stats = db.stats("Emp")
        assert stats.column("deptno").null_fraction == pytest.approx(2 / 3)

    def test_avg_width(self, db):
        db.insert("Dept", 1, "ab")
        db.insert("Dept", 2, "abcd")
        assert db.stats("Dept").column("name").avg_width == pytest.approx(3.0)

    def test_analyze_covers_all_tables(self, db):
        stats = db.analyze()
        assert set(stats) == {"Dept", "Emp"}
        assert stats["Dept"].row_count == 0

    def test_unknown_column_stats(self, db):
        with pytest.raises(SchemaError):
            db.stats("Dept").column("zz")

    def test_empty_table_stats(self, db):
        stats = db.stats("Dept")
        assert stats.row_count == 0
        assert stats.column("name").avg_width == 0.0
