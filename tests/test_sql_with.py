"""Tests for WITH-clause SQL generation (the paper's footnote 1)."""

import pytest

from repro.common.ordering import sort_key
from repro.core.partition import (
    Partition,
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.sqlparse import parse_sql
from repro.relational.sqltext import render_sql, render_sql_with


@pytest.fixture
def engine(tiny_db):
    return QueryEngine(tiny_db, CostModel())


class TestRenderWith:
    def test_shared_subqueries_become_ctes(self, q1_tree, tiny_db):
        generator = SqlGenerator(q1_tree, tiny_db.schema,
                                 style=PlanStyle.OUTER_UNION)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        sql = render_sql_with(spec.plan)
        assert sql.startswith("WITH nq_1 AS (")
        # The paths through the part chain all share the supplier-partsupp
        # prefix, so several CTEs appear and are referenced.
        assert sql.count("nq_") > sql.count("AS (")  # definitions + uses

    def test_no_sharing_falls_back(self, q1_tree, tiny_db):
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        specs = generator.streams_for_partition(fully_partitioned(q1_tree))
        sql = render_sql_with(specs[0].plan)
        assert not sql.startswith("WITH")
        assert sql == render_sql(specs[0].plan)

    def test_compact_mode(self, q1_tree, tiny_db):
        generator = SqlGenerator(q1_tree, tiny_db.schema,
                                 style=PlanStyle.OUTER_UNION)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        compact = render_sql_with(spec.plan, pretty=False)
        assert "\n" not in compact


class TestWithRoundTrip:
    @pytest.mark.parametrize("style", list(PlanStyle))
    @pytest.mark.parametrize("reduce", [False, True])
    def test_unified(self, q1_tree, tiny_db, engine, style, reduce):
        generator = SqlGenerator(q1_tree, tiny_db.schema, style=style,
                                 reduce=reduce)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        self._check(spec, tiny_db, engine)

    def test_mid_partition(self, q1_tree, tiny_db, engine):
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        partition = Partition([(1, 4), (1, 4, 1), (1, 4, 2)])
        for spec in generator.streams_for_partition(partition):
            self._check(spec, tiny_db, engine)

    def test_query2(self, q2_tree, tiny_db, engine):
        generator = SqlGenerator(q2_tree, tiny_db.schema,
                                 style=PlanStyle.OUTER_UNION)
        [spec] = generator.streams_for_partition(unified_partition(q2_tree))
        self._check(spec, tiny_db, engine)

    def _check(self, spec, db, engine):
        sql = render_sql_with(spec.plan)
        reparsed = parse_sql(sql, db.schema)
        original = engine.execute(spec.plan).rows
        again = engine.execute(reparsed).rows
        assert sorted(original, key=sort_key) == sorted(again, key=sort_key)


class TestParserWith:
    def test_simple_cte(self, tiny_db, engine):
        plan = parse_sql(
            "WITH big AS (SELECT s.suppkey AS k FROM Supplier s) "
            "SELECT b.k AS k FROM big AS b WHERE b.k > 4",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert all(r[0] > 4 for r in rows)

    def test_cte_referencing_cte(self, tiny_db, engine):
        plan = parse_sql(
            "WITH a AS (SELECT s.suppkey AS k FROM Supplier s), "
            "b AS (SELECT a1.k AS k FROM a AS a1 WHERE a1.k > 4) "
            "SELECT b1.k AS k FROM b AS b1",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert rows and all(r[0] > 4 for r in rows)
