"""Tests for view-tree construction (repro.core.viewtree)."""

import pytest

from repro.common.errors import PlanError
from repro.core.viewtree import build_view_tree
from repro.rxl.parser import parse_rxl


class TestQuery1Shape:
    """The view tree of Fig. 6."""

    def test_ten_nodes_nine_edges(self, q1_tree):
        assert len(q1_tree.nodes) == 10
        assert len(q1_tree.edges) == 9

    def test_indices_breadth_first(self, q1_tree):
        sfis = [n.sfi for n in q1_tree.nodes]
        assert sfis == [
            "S1", "S1.1", "S1.2", "S1.3", "S1.4",
            "S1.4.1", "S1.4.2",
            "S1.4.2.1", "S1.4.2.2", "S1.4.2.3",
        ]

    def test_tags(self, q1_tree):
        tags = {n.sfi: n.tag for n in q1_tree.nodes}
        assert tags["S1"] == "supplier"
        assert tags["S1.4"] == "part"
        assert tags["S1.4.2"] == "order"
        assert tags["S1.4.2.3"] == "cnation"

    def test_skolem_args_match_paper(self, q1_tree):
        """S1(suppkey), S1.4(suppkey, partkey), S1.4.2(suppkey, partkey,
        orderkey) — the paper's Skolem terms."""
        args = {n.sfi: [a.field_hint for a in n.args] for n in q1_tree.nodes}
        assert args["S1"] == ["suppkey"]
        assert args["S1.4"] == ["suppkey", "partkey"]
        assert args["S1.4.2"] == ["suppkey", "partkey", "orderkey"]

    def test_variable_indices(self, q1_tree):
        """suppkey is (1,1); level-2 variables get consecutive ordinals."""
        suppkey = q1_tree.node((1,)).args[0]
        assert (suppkey.level, suppkey.ordinal) == (1, 1)
        name = q1_tree.node((1, 1)).args[1]
        assert (name.level, name.ordinal) == (2, 1)

    def test_variables_unified_across_joins(self, q1_tree):
        """$s.suppkey and $ps.suppkey are the same variable (the paper's
        single ``suppkey`` column)."""
        root_suppkey = q1_tree.node((1,)).args[0]
        part_args = q1_tree.node((1, 4)).args
        assert root_suppkey in part_args

    def test_key_args_subset_of_args(self, q1_tree):
        for node in q1_tree.nodes:
            assert set(node.key_args) <= set(node.args)

    def test_descendants_carry_ancestor_keys(self, q1_tree):
        for parent, child in q1_tree.edges:
            assert set(parent.key_args) <= set(child.args)

    def test_contents(self, q1_tree):
        name_node = q1_tree.node((1, 1))
        assert len(name_node.contents) == 1
        assert name_node.contents[0].field_hint == "name"
        assert q1_tree.node((1,)).contents == []

    def test_rules(self, q1_tree):
        """Rule bodies accumulate the enclosing scopes' atoms."""
        order = q1_tree.node((1, 4, 2)).rule
        tables = [t for t, _ in order.atoms]
        assert tables == ["Supplier", "PartSupp", "Part", "LineItem", "Orders"]
        assert len(order.equalities) == 5

    def test_stvs_ordered(self, q1_tree):
        pairs = [(v.level, v.ordinal) for v in q1_tree.stvs]
        assert pairs == sorted(pairs)

    def test_max_depth(self, q1_tree):
        assert q1_tree.max_depth() == 4

    def test_node_lookup_error(self, q1_tree):
        with pytest.raises(PlanError):
            q1_tree.node((9, 9))


class TestQuery2Shape:
    """The view tree of Fig. 12: order is a child of supplier."""

    def test_shape(self, q2_tree):
        sfis = [n.sfi for n in q2_tree.nodes]
        # Document (preorder) listing.
        assert sfis == [
            "S1", "S1.1", "S1.2", "S1.3", "S1.4", "S1.4.1",
            "S1.5", "S1.5.1", "S1.5.2", "S1.5.3",
        ]

    def test_parallel_star_edges(self, q2_tree):
        assert q2_tree.node((1, 4)).label == "*"
        assert q2_tree.node((1, 5)).label == "*"

    def test_max_depth_three(self, q2_tree):
        assert q2_tree.max_depth() == 3


class TestBuilderBehaviour:
    def test_multiple_roots_rejected(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <a>$s.name</a> <b>$s.name</b>"
        )
        with pytest.raises(PlanError, match="root"):
            build_view_tree(query, schema)

    def test_literal_condition_becomes_filter(self, schema):
        query = parse_rxl(
            'from Part $p where $p.size = "M" construct <t>$p.name</t>'
        )
        tree = build_view_tree(query, schema)
        rule = tree.root.rule
        assert any(op == "=" for _, op, _ in rule.filters)

    def test_duplicate_table_gets_fresh_alias(self, schema):
        query = parse_rxl(
            "from Nation $n construct <t>$n.name"
            "{ from Nation $n2 where $n.regionkey = $n2.regionkey "
            "construct <u>$n2.name</u> }</t>"
        )
        tree = build_view_tree(query, schema)
        child = tree.node((1, 1))
        aliases = [a for _, a in child.rule.atoms]
        assert len(set(aliases)) == 2

    def test_simplify_args_drops_determined_keys(self, schema):
        """The paper's Sec. 3.1 simplification: with name unique in Nation,
        the nation node's Skolem term is (suppkey, name)."""
        query = parse_rxl(
            "from Supplier $s construct <supplier>"
            "{ from Nation $n where $s.nationkey = $n.nationkey "
            "construct <nation>$n.name</nation> }</supplier>"
        )
        plain = build_view_tree(query, schema, simplify_args=False)
        assert [a.field_hint for a in plain.node((1, 1)).args] == [
            "suppkey", "nationkey", "name"
        ]
        simplified = build_view_tree(query, schema, simplify_args=True)
        assert [a.field_hint for a in simplified.node((1, 1)).args] == [
            "suppkey", "name"
        ]

    def test_explicit_skolem_controls_args(self, schema):
        query = parse_rxl(
            "from Supplier $s construct "
            "<t ID=Grp($s.nationkey)>$s.name</t>"
        )
        tree = build_view_tree(query, schema)
        # Explicit term plus the displayed variable.
        assert [a.field_hint for a in tree.root.args] == ["nationkey", "name"]
        assert [a.field_hint for a in tree.root.key_args] == ["nationkey"]

    def test_explicit_skolem_fusion_multiple_rules(self, schema):
        """Two blocks constructing the same Skolem term fuse into one node
        with two rules (the paper's data-integration feature)."""
        query = parse_rxl(
            "from Region $r construct <doc>"
            "{ from Supplier $s construct <who ID=W($s.name)>$s.name</who> }"
            "{ from Customer $c construct <who ID=W($c.name)>$c.name</who> }"
            "</doc>"
        )
        tree = build_view_tree(query, schema)
        who_nodes = [n for n in tree.nodes if n.tag == "who"]
        assert len(who_nodes) == 1
        assert len(who_nodes[0].rules) == 2

    def test_fusion_with_conflicting_tags_rejected(self, schema):
        query = parse_rxl(
            "from Region $r construct <doc>"
            "{ from Supplier $s construct <a ID=W($s.name)>$s.name</a> }"
            "{ from Customer $c construct <b ID=W($c.name)>$c.name</b> }"
            "</doc>"
        )
        with pytest.raises(PlanError, match="Skolem"):
            build_view_tree(query, schema)

    def test_rule_property_rejects_fused(self, schema):
        query = parse_rxl(
            "from Region $r construct <doc>"
            "{ from Supplier $s construct <who ID=W($s.name)>$s.name</who> }"
            "{ from Customer $c construct <who ID=W($c.name)>$c.name</who> }"
            "</doc>"
        )
        tree = build_view_tree(query, schema)
        [who] = [n for n in tree.nodes if n.tag == "who"]
        with pytest.raises(PlanError, match="rules"):
            who.rule

    def test_is_ancestor_of(self, q1_tree):
        root = q1_tree.node((1,))
        deep = q1_tree.node((1, 4, 2))
        assert root.is_ancestor_of(deep)
        assert not deep.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)

    def test_descendants(self, q1_tree):
        part = q1_tree.node((1, 4))
        sfis = {n.sfi for n in part.descendants()}
        assert sfis == {"S1.4.1", "S1.4.2", "S1.4.2.1", "S1.4.2.2", "S1.4.2.3"}
