"""Tests for FD reasoning (repro.relational.dependencies)."""

from hypothesis import given, strategies as st

from repro.relational.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    attribute_closure,
    implies_fd,
    minimal_cover_lhs,
)

FD = FunctionalDependency.of


class TestClosure:
    def test_reflexive(self):
        assert attribute_closure(["a"], []) == {"a"}

    def test_single_step(self):
        assert attribute_closure(["a"], [FD(["a"], ["b"])]) == {"a", "b"}

    def test_transitive(self):
        fds = [FD(["a"], ["b"]), FD(["b"], ["c"])]
        assert attribute_closure(["a"], fds) == {"a", "b", "c"}

    def test_composite_lhs(self):
        fds = [FD(["a", "b"], ["c"])]
        assert "c" not in attribute_closure(["a"], fds)
        assert "c" in attribute_closure(["a", "b"], fds)

    def test_empty_lhs_fd(self):
        # Constants: {} -> x means x is always derivable.
        assert attribute_closure([], [FD([], ["x"])]) == {"x"}

    def test_chain_through_composite(self):
        fds = [FD(["a"], ["b"]), FD(["b", "a"], ["c"]), FD(["c"], ["d"])]
        assert attribute_closure(["a"], fds) == {"a", "b", "c", "d"}

    def test_no_spurious_attributes(self):
        fds = [FD(["x"], ["y"])]
        assert attribute_closure(["a"], fds) == {"a"}


class TestImplies:
    def test_implied(self):
        fds = [FD(["a"], ["b"]), FD(["b"], ["c"])]
        assert implies_fd(fds, FD(["a"], ["c"]))

    def test_not_implied(self):
        fds = [FD(["a"], ["b"])]
        assert not implies_fd(fds, FD(["b"], ["a"]))

    def test_augmentation(self):
        fds = [FD(["a"], ["b"])]
        assert implies_fd(fds, FD(["a", "x"], ["b", "x"]))


class TestMinimalCover:
    def test_drops_implied(self):
        fds = [FD(["name"], ["key"])]
        assert minimal_cover_lhs(["key", "name"], fds) == ("name",)

    def test_keeps_independent(self):
        assert minimal_cover_lhs(["a", "b"], []) == ("a", "b")


class TestReprs:
    def test_fd_repr(self):
        assert "a" in repr(FD(["a"], ["b"]))

    def test_ind_repr(self):
        ind = InclusionDependency("R", ("x",), "S", ("y",))
        assert "R[x]" in repr(ind)


# -- property-based ----------------------------------------------------------

attrs = st.sampled_from("abcdef")
fd_strategy = st.builds(
    lambda l, r: FD(l, r),
    st.sets(attrs, min_size=0, max_size=3),
    st.sets(attrs, min_size=1, max_size=3),
)
fds_strategy = st.lists(fd_strategy, max_size=8)
attrset = st.sets(attrs, max_size=4)


@given(attrset, fds_strategy)
def test_closure_contains_input(start, fds):
    assert set(start) <= attribute_closure(start, fds)


@given(attrset, fds_strategy)
def test_closure_idempotent(start, fds):
    once = attribute_closure(start, fds)
    assert attribute_closure(once, fds) == once


@given(attrset, attrset, fds_strategy)
def test_closure_monotone(a, b, fds):
    closure_a = attribute_closure(a, fds)
    closure_ab = attribute_closure(a | b, fds)
    assert closure_a <= closure_ab


@given(attrset, fds_strategy)
def test_closure_sound(start, fds):
    """Every FD whose lhs is inside the closure has rhs inside too."""
    closure = attribute_closure(start, fds)
    for fd in fds:
        if fd.lhs <= closure:
            assert fd.rhs <= closure
