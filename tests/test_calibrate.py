"""Tests for measurement-calibrated cost estimation
(repro.relational.calibrate).

The fit itself is exercised on synthetic timings — walls manufactured
from known per-group scales — so recovery can be asserted exactly;
the end-to-end path runs a real (tiny) sweep on SQLite.
"""

import math

import pytest

from repro.common.errors import BackendMismatchError, QueryError
from repro.core.partition import enumerate_partitions
from repro.core.sqlgen import SqlGenerator
from repro.relational.backends import SqliteBackend
from repro.relational.cache import PlanResultCache
from repro.relational.calibrate import (
    CALIBRATION_GROUPS,
    CalibratedCostModel,
    CalibrationObservation,
    apply_scales,
    calibrate,
    fit_scales,
    group_features,
    measure_streams,
    plan_agreement,
    predict_wall_ms,
)
from repro.relational.connection import Connection
from repro.relational.engine import CostModel


def _features(**groups):
    base = dict.fromkeys(CALIBRATION_GROUPS, 0.0)
    base.update(groups)
    return base


def _synthetic_observations(true_scales, rows):
    """Observations whose walls are *exactly* the linear model at
    ``true_scales`` — the fit should recover them (up to the ridge)."""
    return [
        CalibrationObservation(
            label=f"obs{i}",
            features=_features(**row),
            wall_ms=sum(true_scales.get(g, 1.0) * ms
                        for g, ms in row.items()),
        )
        for i, row in enumerate(rows)
    ]


class TestGroupFeatures:
    def test_labels_fold_into_groups(self):
        features = group_features({
            "startup": 15.0, "scan": 2.0, "filter": 0.5, "project": 0.25,
            "distinct": 1.0, "join": 2.0, "outer_join": 3.0,
            "union": 0.125, "sort": 4.0, "rescan": 0.5,
            "outer_join_reevaluation": 10.0,
        })
        assert set(features) == set(CALIBRATION_GROUPS)
        assert features["hash"] == 1.0 + 2.0 + 3.0
        assert features["reevaluation"] == 10.0
        assert features["scan"] == 2.0

    def test_missing_labels_are_zero(self):
        features = group_features({"scan": 1.0})
        assert features["sort"] == 0.0

    def test_unknown_label_raises(self):
        with pytest.raises(QueryError):
            group_features({"quantum": 1.0})


class TestFitScales:
    def test_recovers_known_scales(self):
        true = {"startup": 0.2, "scan": 3.0, "sort": 0.5, "hash": 1.5}
        rows = [
            {"startup": 15.0, "scan": 2.0},
            {"startup": 15.0, "scan": 8.0, "sort": 4.0},
            {"startup": 30.0, "hash": 6.0},
            {"startup": 15.0, "scan": 1.0, "hash": 2.0, "sort": 9.0},
            {"startup": 45.0, "scan": 5.0, "sort": 2.0, "hash": 1.0},
        ]
        scales = fit_scales(_synthetic_observations(true, rows))
        for group, expected in true.items():
            assert scales[group] == pytest.approx(expected, rel=1e-2)

    def test_unexercised_groups_keep_prior(self):
        true = {"scan": 2.0}
        rows = [{"scan": 1.0}, {"scan": 4.0}, {"scan": 9.0}]
        scales = fit_scales(_synthetic_observations(true, rows))
        assert scales["scan"] == pytest.approx(2.0, rel=1e-3)
        # Groups the sweep never touched are pinned at 1.0 by the ridge.
        for group in CALIBRATION_GROUPS:
            if group != "scan":
                assert scales[group] == pytest.approx(1.0)

    def test_scales_clamped_non_negative(self):
        # Walls that *shrink* as the feature grows pull the scale
        # negative; the clamp floors it at zero.
        observations = [
            CalibrationObservation("a", _features(scan=1.0, startup=15.0),
                                   wall_ms=20.0),
            CalibrationObservation("b", _features(scan=50.0, startup=15.0),
                                   wall_ms=1.0),
            CalibrationObservation("c", _features(scan=100.0, startup=15.0),
                                   wall_ms=0.5),
        ]
        scales = fit_scales(observations)
        assert scales["scan"] == 0.0

    def test_no_observations_keeps_prior_everywhere(self):
        scales = fit_scales([])
        for group in CALIBRATION_GROUPS:
            assert scales[group] == pytest.approx(1.0)

    def test_predict_matches_construction(self):
        true = {"scan": 2.0, "sort": 0.25}
        obs = _synthetic_observations(true, [{"scan": 3.0, "sort": 8.0}])[0]
        assert predict_wall_ms(obs.features, true) \
            == pytest.approx(obs.wall_ms)


class TestApplyScales:
    def test_constants_multiplied_per_group(self):
        base = CostModel()
        model = apply_scales(base, {"scan": 2.0, "hash": 0.5})
        assert model.scan_row_ms == pytest.approx(base.scan_row_ms * 2.0)
        assert model.hash_row_ms == pytest.approx(base.hash_row_ms * 0.5)
        assert model.probe_row_ms == pytest.approx(base.probe_row_ms * 0.5)
        assert model.join_out_row_ms \
            == pytest.approx(base.join_out_row_ms * 0.5)
        # Untouched groups keep their hand-set constants.
        assert model.sort_cmp_ms == base.sort_cmp_ms
        assert model.startup_ms == base.startup_ms

    def test_result_is_calibrated_model(self):
        model = apply_scales(CostModel(), {}, backend_name="sqlite")
        assert isinstance(model, CalibratedCostModel)
        assert isinstance(model, CostModel)
        assert model.calibrated_on == "sqlite"
        assert len(model.calibration_scales) == len(CALIBRATION_GROUPS)

    def test_identity_scales_never_equal_base_model(self):
        base = CostModel()
        calibrated = apply_scales(base, {g: 1.0 for g in CALIBRATION_GROUPS})
        # Same constants — but dataclass equality is class-aware, so the
        # calibrated model can never impersonate the default one.
        assert calibrated.scan_row_ms == base.scan_row_ms
        assert calibrated != base
        assert base != calibrated
        hash(calibrated)  # stays usable as a cache-key component

    def test_no_stale_cross_model_cache_hits(self, tiny_db):
        plan_cache = PlanResultCache()
        base = CostModel()
        calibrated = apply_scales(base, {g: 1.0 for g in CALIBRATION_GROUPS})
        conn_a = Connection(tiny_db, base, cache=plan_cache)
        conn_b = Connection(tiny_db, calibrated, cache=plan_cache)
        from repro.relational.algebra import Scan, Sort

        plan = Sort(Scan(tiny_db.schema.table("Region"), "r"),
                    ["r.regionkey"])
        conn_a.execute(plan)
        assert conn_a.is_cached(plan)
        # Identical constants, shared cache — still no cross-model hit.
        assert not conn_b.is_cached(plan)
        conn_b.execute(plan)
        assert conn_b.is_cached(plan)
        assert conn_a.is_cached(plan)


class TestPlanAgreement:
    def test_perfect_agreement(self):
        result = plan_agreement([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        assert result == {"top1": True, "concordance": 1.0}

    def test_total_disagreement(self):
        result = plan_agreement([3.0, 2.0, 1.0], [10.0, 20.0, 30.0])
        assert result["top1"] is False
        assert result["concordance"] == 0.0

    def test_ties_count_half(self):
        result = plan_agreement([1.0, 1.0], [5.0, 9.0])
        assert result["concordance"] == 0.5

    def test_length_mismatch_raises(self):
        with pytest.raises(QueryError):
            plan_agreement([1.0], [1.0, 2.0])

    def test_empty(self):
        assert plan_agreement([], []) == {"top1": False, "concordance": 0.0}


@pytest.fixture(scope="module")
def sweep_specs(request):
    tiny_db = request.getfixturevalue("tiny_db")
    q1_tree = request.getfixturevalue("q1_tree")
    generator = SqlGenerator(q1_tree, tiny_db.schema)
    partitions = list(enumerate_partitions(q1_tree))
    specs = []
    for partition in (partitions[0], partitions[len(partitions) // 2],
                      partitions[-1]):
        specs.extend(generator.streams_for_partition(partition))
    return specs


class TestEndToEnd:
    def test_calibrate_on_sqlite(self, tiny_db, sweep_specs):
        connection = Connection(tiny_db, CostModel())
        result = calibrate(connection, sweep_specs, repeats=2)
        assert isinstance(result.model, CalibratedCostModel)
        assert result.model.calibrated_on == "sqlite"
        assert set(result.scales) == set(CALIBRATION_GROUPS)
        assert all(s >= 0.0 for s in result.scales.values())
        assert len(result.observations) == len(sweep_specs)
        assert all(obs.wall_ms >= 0.0 for obs in result.observations)
        residuals = result.residuals()
        assert len(residuals) == len(sweep_specs)
        assert all(
            math.isfinite(predicted) and math.isfinite(measured)
            for _, predicted, measured in residuals
        )

    def test_measure_streams_cross_validates(self, tiny_db, sweep_specs):
        class LyingBackend(SqliteBackend):
            def execute_sql(self, plan, sql):
                rows, wall_ms = super().execute_sql(plan, sql)
                return rows[:-1] if rows else rows, wall_ms

        connection = Connection(tiny_db, CostModel())
        backend = LyingBackend(tiny_db)
        with pytest.raises(BackendMismatchError):
            measure_streams(connection, sweep_specs, backend, repeats=1)
        backend.close()

    def test_calibrated_model_drives_estimator(self, tiny_db, sweep_specs):
        from repro.relational.estimator import CostEstimator

        connection = Connection(tiny_db, CostModel())
        model = calibrate(connection, sweep_specs, repeats=1).model
        estimator = CostEstimator(tiny_db, model)
        estimate = estimator.estimate(sweep_specs[0].plan)
        assert math.isfinite(estimate.server_ms)
        assert estimate.server_ms >= 0.0
