"""Tests for ASCII figure rendering (repro.bench.figures)."""


from repro.bench.figures import scatter_plot
from repro.bench.sweep import PlanTiming, SweepResult
from repro.core.partition import Partition
from repro.core.sqlgen import PlanStyle


def _sweep(timings):
    return SweepResult(timings=timings, style=PlanStyle.OUTER_JOIN,
                       reduced=False)


class TestScatterPlot:
    def test_empty_sweep(self):
        text = scatter_plot(_sweep([]), title="t")
        assert "no completed plans" in text

    def test_basic_plot(self):
        timings = [
            PlanTiming(Partition([(1, 1)]), 2, 10.0, 1.0),
            PlanTiming(Partition([(1, 2)]), 5, 100.0, 1.0),
            PlanTiming(Partition([]), 10, 1000.0, 1.0),
        ]
        text = scatter_plot(_sweep(timings), title="demo")
        assert "demo" in text
        assert "1000ms" in text and "10ms" in text
        assert "streams" in text
        assert "." in text

    def test_marks_and_legend(self):
        full = Partition([])
        timings = [
            PlanTiming(Partition([(1, 1)]), 2, 10.0, 1.0),
            PlanTiming(full, 10, 1000.0, 1.0),
        ]
        text = scatter_plot(
            _sweep(timings), marks=[("fully partitioned", full)]
        )
        assert "A = fully partitioned: 1000ms @ 10 streams" in text
        assert "A" in text.splitlines()[0] or any(
            "A" in line for line in text.splitlines()
        )

    def test_timed_out_note(self):
        timings = [
            PlanTiming(Partition([]), 10, 50.0, 1.0),
            PlanTiming(Partition([(1, 1)]), 9, timed_out=True),
        ]
        text = scatter_plot(_sweep(timings))
        assert "1 plan(s) timed out" in text

    def test_marked_timeout_in_legend(self):
        bad = Partition([(1, 1)])
        timings = [
            PlanTiming(Partition([]), 10, 50.0, 1.0),
            PlanTiming(bad, 9, timed_out=True),
        ]
        text = scatter_plot(_sweep(timings), marks=[("unified", bad)])
        assert "A = unified: timed out" in text

    def test_single_value_degenerate_scale(self):
        timings = [PlanTiming(Partition([]), 1, 42.0, 1.0)]
        text = scatter_plot(_sweep(timings))
        assert "42ms" in text

    def test_unknown_mark_skipped(self):
        timings = [PlanTiming(Partition([]), 1, 42.0, 1.0)]
        text = scatter_plot(
            _sweep(timings), marks=[("ghost", Partition([(9, 9)]))]
        )
        assert "ghost" not in text
