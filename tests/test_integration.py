"""Cross-module integration tests and property-based plan invariance.

The central invariant of the whole system (Sec. 3.3): *every* partition of
the view tree, in either SQL-generation style, reduced or not, materializes
exactly the same XML document.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.partition import (
    Partition,
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.xmlgen.dtd import parse_dtd, validate_document
from repro.xmlgen.tagger import tag_streams
from repro.bench.queries import (
    QUERY_1,
    QUERY_2,
    SUPPLIER_DTD,
    SUPPLIER_DTD_QUERY_2,
    load_view,
)

Q1_EDGES = [
    (1, 1), (1, 2), (1, 3), (1, 4), (1, 4, 1), (1, 4, 2),
    (1, 4, 2, 1), (1, 4, 2, 2), (1, 4, 2, 3),
]


def materialize(tree, db, conn, partition, style, reduce):
    generator = SqlGenerator(tree, db.schema, style=style, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    streams = [conn.execute(s.plan, compact_rows=s.compact) for s in specs]
    xml, tagger = tag_streams(tree, specs, streams, root_tag="view")
    return xml, tagger


@pytest.fixture(scope="module")
def reference_xml(q1_tree, tiny_db, tiny_conn):
    xml, _ = materialize(
        q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree),
        PlanStyle.OUTER_JOIN, False,
    )
    return xml


class TestPlanInvariance:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kept=st.sets(st.sampled_from(Q1_EDGES)),
        style=st.sampled_from([PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION]),
        reduce=st.booleans(),
    )
    def test_any_partition_same_document(
        self, q1_tree, tiny_db, tiny_conn, reference_xml, kept, style, reduce
    ):
        xml, tagger = materialize(
            q1_tree, tiny_db, tiny_conn, Partition(kept), style, reduce
        )
        assert xml == reference_xml
        assert tagger.implicit_opens == 0

    def test_extremes_and_dtd(self, q1_tree, tiny_db, tiny_conn, reference_xml):
        dtd = parse_dtd(SUPPLIER_DTD)
        for style in PlanStyle:
            for reduce in (False, True):
                for partition in (
                    unified_partition(q1_tree),
                    fully_partitioned(q1_tree),
                ):
                    xml, _ = materialize(
                        q1_tree, tiny_db, tiny_conn, partition, style, reduce
                    )
                    assert xml == reference_xml
                    validate_document(xml, dtd, root="view")

    def test_query2_invariance_and_dtd(self, q2_tree, tiny_db, tiny_conn):
        dtd = parse_dtd(SUPPLIER_DTD_QUERY_2)
        reference, _ = materialize(
            q2_tree, tiny_db, tiny_conn, unified_partition(q2_tree),
            PlanStyle.OUTER_JOIN, False,
        )
        validate_document(reference, dtd, root="view")
        rng = random.Random(11)
        edges = [c.index for _, c in q2_tree.edges]
        for _ in range(12):
            kept = [e for e in edges if rng.random() < 0.5]
            for style in PlanStyle:
                xml, tagger = materialize(
                    q2_tree, tiny_db, tiny_conn, Partition(kept), style, True
                )
                assert xml == reference
                assert tagger.implicit_opens == 0


class TestScalability:
    def test_tagger_memory_independent_of_database_size(self):
        """Sec. 3.3: the tagger's memory depends only on the view tree."""
        depths = []
        for factor in (1.0, 4.0):
            scale = TpchScale(suppliers=4, parts=8, customers=5, orders=10).scaled(factor)
            db = TpchGenerator(scale=scale, seed=5).generate()
            conn = Connection(db, CostModel())
            tree = load_view(QUERY_1, db.schema)
            _, tagger = materialize(
                tree, db, conn, unified_partition(tree),
                PlanStyle.OUTER_JOIN, False,
            )
            depths.append(tagger.max_stack_depth)
        assert depths[0] == depths[1] <= 4

    def test_document_grows_with_database(self):
        sizes = []
        for factor in (1.0, 3.0):
            scale = TpchScale(suppliers=4, parts=8, customers=5, orders=10).scaled(factor)
            db = TpchGenerator(scale=scale, seed=5).generate()
            conn = Connection(db, CostModel())
            tree = load_view(QUERY_1, db.schema)
            xml, _ = materialize(
                tree, db, conn, unified_partition(tree),
                PlanStyle.OUTER_JOIN, True,
            )
            sizes.append(len(xml))
        assert sizes[1] > sizes[0]


class TestEmptyDatabase:
    def test_empty_database_empty_document(self):
        from repro.relational.database import Database
        from repro.tpch.schema import tpch_schema

        db = Database(tpch_schema())
        db.analyze()
        conn = Connection(db, CostModel())
        tree = load_view(QUERY_1, db.schema)
        xml, tagger = materialize(
            tree, db, conn, unified_partition(tree), PlanStyle.OUTER_JOIN, False
        )
        assert xml == "<view></view>"
        assert tagger.elements_written == 0
