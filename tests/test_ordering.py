"""Tests for NULLS FIRST total ordering (repro.common.ordering)."""

from hypothesis import given, strategies as st

from repro.common.ordering import NONE_FIRST, NoneFirst, compare, sort_key


class TestNoneFirst:
    def test_none_sorts_before_values(self):
        assert NoneFirst(None) < NoneFirst(0)
        assert NoneFirst(None) < NoneFirst(-10)
        assert NoneFirst(None) < NoneFirst("")

    def test_equal_nones(self):
        assert NoneFirst(None) == NoneFirst(None)
        assert not NoneFirst(None) < NoneFirst(None)

    def test_same_type_ordering(self):
        assert NoneFirst(1) < NoneFirst(2)
        assert NoneFirst("a") < NoneFirst("b")
        assert not NoneFirst(2) < NoneFirst(1)

    def test_mixed_types_ordered_by_type_name(self):
        # int < str because "int" < "str"
        assert NoneFirst(99) < NoneFirst("a")

    def test_mixed_types_do_not_raise(self):
        values = [NoneFirst(v) for v in ["b", 2, None, 1.5, "a"]]
        assert sorted(values)[0].value is None

    def test_hash_consistency(self):
        assert hash(NoneFirst(None)) == hash(NoneFirst(None))
        assert hash(NoneFirst(3)) == hash(NoneFirst(3))

    def test_equality_against_other_types(self):
        assert NoneFirst(1) != 1
        assert (NoneFirst(1) == 1) is False

    def test_repr(self):
        assert "NoneFirst" in repr(NoneFirst(5))

    def test_none_first_alias(self):
        assert NONE_FIRST(3) == NoneFirst(3)


class TestSortKey:
    def test_tuple_comparison(self):
        assert sort_key([1, None]) < sort_key([1, 2])
        assert sort_key([1, 2]) < sort_key([2, None])

    def test_sorting_rows_with_nulls(self):
        rows = [(1, 2), (1, None), (None, 5), (1, 1)]
        ordered = sorted(rows, key=sort_key)
        assert ordered == [(None, 5), (1, None), (1, 1), (1, 2)]


class TestCompare:
    def test_equal(self):
        assert compare([1, "a"], [1, "a"]) == 0

    def test_less_and_greater(self):
        assert compare([1], [2]) == -1
        assert compare([2], [1]) == 1

    def test_shorter_padded_with_none_sorts_first(self):
        # A parent tuple (shorter) sorts before its children.
        assert compare([1], [1, 5]) == -1
        assert compare([1, 5], [1]) == 1

    def test_padding_makes_equal(self):
        assert compare([1, None], [1]) == 0


@given(st.lists(st.one_of(st.none(), st.integers(), st.text()), max_size=6),
       st.lists(st.one_of(st.none(), st.integers(), st.text()), max_size=6))
def test_compare_antisymmetric(left, right):
    assert compare(left, right) == -compare(right, left)


@given(st.lists(st.lists(st.one_of(st.none(), st.integers()), max_size=4),
                max_size=8))
def test_sort_key_total_order(rows):
    """Sorting never raises and is consistent with pairwise compare."""
    ordered = sorted(rows, key=sort_key)
    for a, b in zip(ordered, ordered[1:]):
        assert compare(a, b) <= 0


@given(st.lists(st.one_of(st.none(), st.integers()), max_size=5))
def test_compare_reflexive(values):
    assert compare(values, values) == 0
