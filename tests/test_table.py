"""Tests for table storage (repro.relational.table)."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import SqlType


@pytest.fixture
def table():
    schema = TableSchema(
        "People",
        [
            Column("id", SqlType.INTEGER),
            Column("name", SqlType.VARCHAR),
            Column("age", SqlType.INTEGER, nullable=True),
        ],
        key=["id"],
        unique_sets=[("name",)],
    )
    return Table(schema)


class TestInsert:
    def test_positional(self, table):
        row = table.insert(1, "ada", 36)
        assert row == (1, "ada", 36)
        assert len(table) == 1

    def test_named(self, table):
        table.insert(name="bob", id=2, age=None)
        assert table.rows[0] == (2, "bob", None)

    def test_mixing_positional_and_named_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert(1, name="x")

    def test_missing_named_value(self, table):
        with pytest.raises(SchemaError, match="missing"):
            table.insert(id=1, name="x")  # age missing

    def test_unknown_named_column(self, table):
        with pytest.raises(SchemaError, match="unknown"):
            table.insert(id=1, name="x", age=1, extra=2)

    def test_wrong_arity(self, table):
        with pytest.raises(SchemaError, match="expected 3"):
            table.insert(1, "x")

    def test_type_check(self, table):
        with pytest.raises(SchemaError, match="not a valid"):
            table.insert(1, 99, 20)

    def test_not_null_enforced(self, table):
        with pytest.raises(SchemaError, match="NOT NULL"):
            table.insert(None, "x", 1)

    def test_nullable_allowed(self, table):
        table.insert(1, "x", None)

    def test_duplicate_key(self, table):
        table.insert(1, "x", 1)
        with pytest.raises(SchemaError, match="duplicate key"):
            table.insert(1, "y", 2)

    def test_unique_set_enforced(self, table):
        table.insert(1, "x", 1)
        with pytest.raises(SchemaError, match="unique"):
            table.insert(2, "x", 2)


class TestLookup:
    def test_lookup_key(self, table):
        table.insert(7, "g", 1)
        assert table.lookup_key((7,)) == (7, "g", 1)
        assert table.lookup_key((8,)) is None

    def test_index_on(self, table):
        table.insert(1, "a", 30)
        table.insert(2, "b", 30)
        table.insert(3, "c", 40)
        index = table.index_on(["age"])
        assert len(index[(30,)]) == 2
        assert len(index[(40,)]) == 1

    def test_index_invalidated_on_insert(self, table):
        table.insert(1, "a", 30)
        table.index_on(["age"])
        table.insert(2, "b", 30)
        assert len(table.index_on(["age"])[(30,)]) == 2

    def test_column_values(self, table):
        table.insert(1, "a", 30)
        table.insert(2, "b", None)
        assert table.column_values("age") == [30, None]


class TestWidths:
    def test_empty_width(self, table):
        assert table.average_row_width() == 0.0

    def test_average_row_width(self, table):
        table.insert(1, "abcd", None)  # 4 + 4 + 0
        assert table.average_row_width() == pytest.approx(8.0)

    def test_iteration(self, table):
        table.insert(1, "a", 1)
        assert list(table) == [(1, "a", 1)]
        assert "People" in repr(table)
