"""Tests for schema definitions (repro.relational.schema)."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.relational.types import SqlType


def _table(name="T", key=("id",), unique_sets=()):
    return TableSchema(
        name,
        [Column("id", SqlType.INTEGER), Column("name", SqlType.VARCHAR)],
        key=key,
        unique_sets=unique_sets,
    )


class TestColumn:
    def test_valid(self):
        column = Column("id", SqlType.INTEGER)
        assert column.name == "id"
        assert not column.nullable

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("1bad", SqlType.INTEGER)
        with pytest.raises(SchemaError):
            Column("", SqlType.INTEGER)


class TestTableSchema:
    def test_basic(self):
        table = _table()
        assert table.column_names == ("id", "name")
        assert table.column("name").sql_type is SqlType.VARCHAR
        assert table.column_index("name") == 1
        assert table.has_column("id")
        assert not table.has_column("other")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            _table().column("missing")

    def test_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "T",
                [Column("a", SqlType.INTEGER), Column("a", SqlType.INTEGER)],
                key=["a"],
            )

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            _table(key=("nope",))

    def test_key_required(self):
        with pytest.raises(SchemaError):
            _table(key=())

    def test_unique_sets_validated(self):
        table = _table(unique_sets=[("name",)])
        assert table.unique_sets == (("name",),)
        with pytest.raises(SchemaError):
            _table(unique_sets=[("missing",)])

    def test_row_width(self):
        assert _table().row_width() == 4 + 24

    def test_repr_marks_key(self):
        assert "*id" in repr(_table())


class TestForeignKey:
    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", ("x", "y"), "B", ("z",))


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema([_table("A"), _table("B")])
        assert schema.table("A").name == "A"
        assert schema.has_table("B")
        assert set(schema.table_names) == {"A", "B"}
        assert len(schema.tables) == 2

    def test_duplicate_table(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([_table("A"), _table("A")])

    def test_unknown_table(self):
        with pytest.raises(SchemaError):
            DatabaseSchema().table("missing")

    def test_foreign_key_validation(self):
        schema = DatabaseSchema([_table("A"), _table("B")])
        schema.add_foreign_key(ForeignKey("A", ("id",), "B", ("id",)))
        assert len(schema.foreign_keys_from("A")) == 1
        assert schema.foreign_keys_from("B") == []

    def test_foreign_key_must_reference_primary_key(self):
        schema = DatabaseSchema([_table("A"), _table("B")])
        with pytest.raises(SchemaError):
            schema.add_foreign_key(ForeignKey("A", ("id",), "B", ("name",)))

    def test_foreign_key_unknown_column(self):
        schema = DatabaseSchema([_table("A"), _table("B")])
        with pytest.raises(SchemaError):
            schema.add_foreign_key(ForeignKey("A", ("zz",), "B", ("id",)))
