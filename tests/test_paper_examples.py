"""The paper's worked example, end to end (Figs. 3-box, 4, 8, 9, 10).

Recreates the exact database instance of Fig. 8 (suppliers supp#1..supp#3,
their nations, and three stocked parts), runs the *simplified boxed query*
of Fig. 3, and checks:

* the view tree of Fig. 4 — S1(suppkey), S1.1(suppkey, name),
  S1.2(suppkey, pname), with the Sec. 3.1 argument simplification,
* the result XML fragment of Fig. 8 (supp#2 appears despite having no
  parts — the reason the outer join exists),
* the integrated relation of Fig. 9 for the unified plan (a),
* the two partitioned relations of Fig. 10 for plan (c).

One documented divergence: the paper's example sorts only by ``suppkey``
(its Fig. 9 lists parts in insertion order), while our generator sorts by
the full interleaved key, so parts appear alphabetically.
"""

import pytest

from repro.core.labeling import label_view_tree
from repro.core.partition import Partition, unified_partition
from repro.core.sqlgen import SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.relational.connection import Connection
from repro.relational.database import Database
from repro.relational.engine import CostModel
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.relational.types import SqlType
from repro.rxl.parser import parse_rxl
from repro.xmlgen.tagger import tag_streams

#: The boxed query fragment of Fig. 3.
BOXED_QUERY = """
from Supplier $s
construct
  <supplier>
    { from Nation $n
      where $s.nationkey = $n.nationkey
      construct <nation>$n.name</nation> }
    { from PartSupp $ps, Part $p
      where $s.suppkey = $ps.suppkey and $ps.partkey = $p.partkey
      construct <part>$p.name</part> }
  </supplier>
"""


@pytest.fixture(scope="module")
def fig8_db():
    """The Fig. 8 database instance, with the paper's string keys."""
    varchar = SqlType.VARCHAR
    integer = SqlType.INTEGER
    schema = DatabaseSchema(
        tables=[
            TableSchema(
                "Supplier",
                [Column("suppkey", varchar), Column("name", varchar),
                 Column("addr", varchar), Column("nationkey", varchar)],
                key=["suppkey"],
            ),
            TableSchema(
                "Nation",
                [Column("nationkey", varchar), Column("name", varchar),
                 Column("regionkey", varchar)],
                key=["nationkey"],
                unique_sets=[("name",)],
            ),
            TableSchema(
                "PartSupp",
                [Column("partkey", varchar), Column("suppkey", varchar),
                 Column("availqty", integer)],
                key=["partkey"],
            ),
            TableSchema(
                "Part",
                [Column("partkey", varchar), Column("name", varchar),
                 Column("mfgr", varchar), Column("brand", varchar),
                 Column("size", varchar), Column("retail", SqlType.DECIMAL)],
                key=["partkey"],
                unique_sets=[("name",)],
            ),
        ],
        foreign_keys=[
            ForeignKey("Supplier", ("nationkey",), "Nation", ("nationkey",)),
            ForeignKey("PartSupp", ("suppkey",), "Supplier", ("suppkey",)),
            ForeignKey("PartSupp", ("partkey",), "Part", ("partkey",)),
        ],
    )
    db = Database(schema)
    db.insert("Supplier", "supp#1", "USA Metalworks", "New York", "usa#24")
    db.insert("Supplier", "supp#2", "Romana Espanola", "Madrid", "spain#3")
    db.insert("Supplier", "supp#3", "Fonderie Francais", "Paris", "france#19")
    db.insert("Nation", "usa#24", "USA", "reg#1")
    db.insert("Nation", "spain#3", "Spain", "reg#2")
    db.insert("Nation", "france#19", "France", "reg#3")
    db.insert("PartSupp", "part#4", "supp#1", 100)
    db.insert("PartSupp", "part#12", "supp#1", 320)
    db.insert("PartSupp", "part#20", "supp#3", 64)
    db.insert("Part", "part#4", "plated brass", "mfgr#3", "Brand1", "S", 904.00)
    db.insert("Part", "part#12", "anodized steel", "mfgr#4", "Brand2", "M", 912.01)
    db.insert("Part", "part#20", "polished nickel", "mfgr#1", "Brand3", "L", 920.02)
    db.check_foreign_keys()
    db.analyze()
    return db


@pytest.fixture(scope="module")
def fig4_tree(fig8_db):
    """Fig. 4's view tree, with the Sec. 3.1 argument simplification."""
    tree = build_view_tree(
        parse_rxl(BOXED_QUERY), fig8_db.schema, simplify_args=True
    )
    label_view_tree(tree, fig8_db.schema)
    return tree


@pytest.fixture(scope="module")
def fig8_conn(fig8_db):
    return Connection(fig8_db, CostModel())


class TestFig4ViewTree:
    def test_three_nodes(self, fig4_tree):
        assert [n.sfi for n in fig4_tree.nodes] == ["S1", "S1.1", "S1.2"]
        assert [n.tag for n in fig4_tree.nodes] == [
            "supplier", "nation", "part"
        ]

    def test_skolem_terms(self, fig4_tree):
        """S1(suppkey(1,1)); S1.1(suppkey(1,1), name(2,1));
        S1.2(suppkey(1,1), pname(2,2)) — exactly Fig. 4."""
        args = {n.sfi: [(a.level, a.ordinal, a.field_hint)
                        for a in n.args] for n in fig4_tree.nodes}
        assert args["S1"] == [(1, 1, "suppkey")]
        assert args["S1.1"] == [(1, 1, "suppkey"), (2, 1, "name")]
        assert args["S1.2"] == [(1, 1, "suppkey"), (2, 2, "name")]

    def test_rules_match_fig4(self, fig4_tree):
        """S1.1 :- Supplier, Nation;  S1.2 :- Supplier, PartSupp, Part."""
        nation = fig4_tree.node((1, 1)).rule
        assert [t for t, _ in nation.atoms] == ["Supplier", "Nation"]
        part = fig4_tree.node((1, 2)).rule
        assert [t for t, _ in part.atoms] == ["Supplier", "PartSupp", "Part"]

    def test_multiplicities(self, fig4_tree):
        """Fig. 4/5: nation is '1', part is '*' — "the 1 between supplier
        and nation indicates ... exactly one child"."""
        assert fig4_tree.node((1, 1)).label == "1"
        assert fig4_tree.node((1, 2)).label == "*"


class TestFig8Document:
    def _materialize(self, tree, db, conn, partition):
        generator = SqlGenerator(tree, db.schema)
        specs = generator.streams_for_partition(partition)
        streams = [conn.execute(s.plan) for s in specs]
        xml, tagger = tag_streams(tree, specs, streams, root_tag=None)
        return xml, tagger

    def test_result_fragment(self, fig4_tree, fig8_db, fig8_conn):
        xml, _ = self._materialize(
            fig4_tree, fig8_db, fig8_conn, unified_partition(fig4_tree)
        )
        assert xml == (
            "<supplier><nation>USA</nation>"
            "<part>anodized steel</part><part>plated brass</part></supplier>"
            "<supplier><nation>Spain</nation></supplier>"
            "<supplier><nation>France</nation>"
            "<part>polished nickel</part></supplier>"
        )

    def test_supp2_appears_without_parts(self, fig4_tree, fig8_db, fig8_conn):
        """Sec. 2: "there could be suppliers without parts, and they need
        to appear in the XML document" — the reason for the outer join."""
        for partition in (unified_partition(fig4_tree),
                          Partition([(1, 2)])):
            xml, _ = self._materialize(fig4_tree, fig8_db, fig8_conn, partition)
            assert "<supplier><nation>Spain</nation></supplier>" in xml


class TestFig9IntegratedRelation:
    def test_unified_rows(self, fig4_tree, fig8_db, fig8_conn):
        """Plan (a)'s relation: (L1, L2, suppkey, name, pname), one row per
        path, NULL-padded — Fig. 9 (parts alphabetical, see module doc)."""
        generator = SqlGenerator(fig4_tree, fig8_db.schema)
        [spec] = generator.streams_for_partition(unified_partition(fig4_tree))
        assert spec.column_names == (
            "L1", "L2", "v1_1_suppkey", "v2_1_name", "v2_2_name"
        )
        rows = fig8_conn.execute(spec.plan).rows
        assert rows == [
            (1, 1, "supp#1", "USA", None),
            (1, 2, "supp#1", None, "anodized steel"),
            (1, 2, "supp#1", None, "plated brass"),
            (1, 1, "supp#2", "Spain", None),
            (1, 1, "supp#3", "France", None),
            (1, 2, "supp#3", None, "polished nickel"),
        ]


class TestFig10PartitionedRelations:
    def test_plan_c_relations(self, fig4_tree, fig8_db, fig8_conn):
        """Plan (c): the nation node alone, and supplier+part together.
        The supplier-part relation keeps supp#2 as a bare row (Fig. 10)."""
        plan_c = Partition([(1, 2)])  # keep only the supplier-part edge
        generator = SqlGenerator(fig4_tree, fig8_db.schema)
        specs = generator.streams_for_partition(plan_c)
        by_label = {s.label: s for s in specs}

        supplier_part = fig8_conn.execute(by_label["S1"].plan).rows
        assert by_label["S1"].column_names == (
            "L1", "L2", "v1_1_suppkey", "v2_2_name"
        )
        assert supplier_part == [
            (1, 2, "supp#1", "anodized steel"),
            (1, 2, "supp#1", "plated brass"),
            (1, None, "supp#2", None),          # bare row: no parts
            (1, 2, "supp#3", "polished nickel"),
        ]

        nation = fig8_conn.execute(by_label["S1.1"].plan).rows
        assert by_label["S1.1"].column_names == (
            "L1", "L2", "v1_1_suppkey", "v2_1_name"
        )
        assert nation == [
            (1, 1, "supp#1", "USA"),
            (1, 1, "supp#2", "Spain"),
            (1, 1, "supp#3", "France"),
        ]


class TestSec2PlanBQueries:
    def test_plan_b_sql_shape(self, fig4_tree, fig8_db):
        """Sec. 2's plan (b): two SQL queries, neither needing an outer
        join — "no outer join is needed, because the first query produces
        all the values for Supplier".  The generator achieves this through
        view-tree reduction (footnote 2: the per-node outer join
        "disappears when all children are labeled '1'")."""
        plan_b = Partition([(1, 1)])  # supplier+nation together, part apart
        generator = SqlGenerator(fig4_tree, fig8_db.schema, reduce=True)
        specs = generator.streams_for_partition(plan_b)
        assert len(specs) == 2
        assert not any(s.uses_outer_join() for s in specs)
        first, second = specs[0].sql, specs[1].sql
        assert "Supplier s, Nation n" in first
        assert "s.nationkey = n.nationkey" in first
        assert "PartSupp" in second and "Part" in second
        assert "ORDER BY" in first and "ORDER BY" in second
