"""Every exception the library defines derives from ReproError.

Callers are promised one catchable base type (``except ReproError``);
this test sweeps the whole package two ways — importing every module and
inspecting the classes it defines, and grepping the source tree for
``class X(Exception)`` escapes — so a new error type cannot silently
fork the hierarchy.
"""

import importlib
import inspect
import pathlib
import pkgutil
import re

import repro
from repro.common.errors import ReproError

SRC_ROOT = pathlib.Path(repro.__file__).parent


def iter_repro_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestHierarchy:
    def test_every_exception_class_derives_from_repro_error(self):
        offenders = []
        for module in iter_repro_modules():
            for name, obj in vars(module).items():
                if not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export; judged where it is defined
                if not issubclass(obj, BaseException):
                    continue
                if obj is ReproError:
                    continue
                if not issubclass(obj, ReproError):
                    offenders.append(f"{module.__name__}.{name}")
        assert not offenders, (
            f"exception classes outside the ReproError hierarchy: {offenders}"
        )

    def test_no_bare_exception_bases_in_source(self):
        # The import sweep above can miss a class hidden behind a lazy
        # import; the grep cannot.
        pattern = re.compile(
            r"^class\s+(\w+)\s*\(\s*(Exception|BaseException)\s*\)",
            re.MULTILINE,
        )
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for match in pattern.finditer(path.read_text()):
                if match.group(1) == "ReproError":
                    continue
                offenders.append(f"{path.relative_to(SRC_ROOT)}:"
                                 f"{match.group(1)}")
        assert not offenders, (
            f"classes deriving directly from Exception: {offenders}"
        )

    def test_known_error_types_and_exports(self):
        from repro.common import errors

        expected = {
            "SchemaError", "QueryError", "RxlSyntaxError", "RxlScopeError",
            "PlanError", "ExecutionError", "TimeoutExceeded",
            "TransientConnectionError", "OverloadError", "DtdError",
            "ValidationError",
        }
        defined = {
            name for name, obj in vars(errors).items()
            if inspect.isclass(obj) and issubclass(obj, ReproError)
            and obj is not ReproError
        }
        assert expected <= defined
        # Every error type is importable from the package root.
        for name in expected | {"ReproError"}:
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(errors, name)

    def test_overload_error_shape(self):
        exc = repro.OverloadError(
            "too much", reason="queue", shed=("S1", "S2"), stream_label="S1",
        )
        assert isinstance(exc, repro.ExecutionError)
        assert isinstance(exc, ReproError)
        assert exc.reason == "queue"
        assert exc.shed == ("S1", "S2")
        assert exc.stream_label == "S1"
        assert exc.report is None
