"""Tests for XML-QL queries over virtual views (repro.xmlql)."""

import pytest

from repro.common.errors import PlanError, RxlSyntaxError
from repro.relational.algebra import Scan, count_operators
from repro.xmlql.ast import ConstructNode
from repro.xmlql.compose import compose
from repro.xmlql.executor import execute_xmlql
from repro.xmlql.parser import parse_xmlql


class TestParser:
    def test_basic_query(self):
        query = parse_xmlql(
            'where <supplier><name>$s</name></supplier>, $s != "x" '
            "construct <r><n>$s</n></r>"
        )
        assert query.pattern.tag == "supplier"
        assert query.pattern.children[0].text_var == "s"
        assert query.conditions[0].op == "!="
        assert query.construct.tag == "r"
        assert query.bound_variables() == ["s"]

    def test_nested_pattern(self):
        query = parse_xmlql(
            "where <supplier><part><pname>$p</pname></part></supplier> "
            "construct <r>$p</r>"
        )
        part = query.pattern.children[0]
        assert part.tag == "part"
        assert part.children[0].text_var == "p"

    def test_literal_text_match(self):
        query = parse_xmlql(
            'where <supplier><nation>"FRANCE"</nation>'
            "<name>$s</name></supplier> construct <r>$s</r>"
        )
        assert query.pattern.children[0].text_literal == "FRANCE"

    def test_numeric_condition(self):
        query = parse_xmlql(
            "where <order><okey>$k</okey></order>, $k < 10 "
            "construct <r>$k</r>"
        )
        assert query.conditions[0].value == 10

    def test_construct_literals_and_nesting(self):
        query = parse_xmlql(
            "where <supplier><name>$s</name></supplier> "
            'construct <r><a>"hi"</a><b>$s</b></r>'
        )
        assert isinstance(query.construct.contents[0], ConstructNode)
        assert query.construct.variables() == ["s"]

    def test_mismatched_tags(self):
        with pytest.raises(RxlSyntaxError, match="mismatched"):
            parse_xmlql("where <a>$x</b> construct <r>$x</r>")

    def test_double_text_content_rejected(self):
        with pytest.raises(RxlSyntaxError, match="already has text"):
            parse_xmlql("where <a>$x $y</a> construct <r>$x</r>")

    def test_trailing_garbage(self):
        with pytest.raises(RxlSyntaxError, match="trailing"):
            parse_xmlql("where <a>$x</a> construct <r>$x</r> zzz")


class TestCompose:
    def test_simple_composition(self, q1_tree, tiny_db):
        query = parse_xmlql(
            "where <supplier><name>$s</name></supplier> construct <r>$s</r>"
        )
        composed = compose(query, q1_tree, tiny_db.schema)
        assert composed.var_columns["s"].endswith("name")
        assert {n.sfi for n in composed.matched_nodes} == {"S1", "S1.1"}
        # The composed SQL touches only the Supplier table.
        assert count_operators(composed.plan, Scan) == 1

    def test_deep_pattern_joins_path(self, q1_tree, tiny_db):
        query = parse_xmlql(
            "where <supplier><part><order><okey>$k</okey></order></part>"
            "</supplier> construct <r>$k</r>"
        )
        composed = compose(query, q1_tree, tiny_db.schema)
        scans = count_operators(composed.plan, Scan)
        assert scans == 5  # Supplier, PartSupp, Part, LineItem, Orders

    def test_mid_tree_pattern_root(self, q1_tree, tiny_db):
        """The pattern may start below the view root (<part> fragments)."""
        query = parse_xmlql(
            "where <part><pname>$p</pname></part> construct <r>$p</r>"
        )
        composed = compose(query, q1_tree, tiny_db.schema)
        assert {n.sfi for n in composed.matched_nodes} == {"S1.4", "S1.4.1"}

    def test_unknown_tag(self, q1_tree, tiny_db):
        query = parse_xmlql("where <widget>$w</widget> construct <r>$w</r>")
        with pytest.raises(PlanError, match="no <widget>"):
            compose(query, q1_tree, tiny_db.schema)

    def test_unknown_child(self, q1_tree, tiny_db):
        query = parse_xmlql(
            "where <supplier><widget>$w</widget></supplier> "
            "construct <r>$w</r>"
        )
        with pytest.raises(PlanError, match="no <widget> child"):
            compose(query, q1_tree, tiny_db.schema)

    def test_condition_on_unbound_variable(self, q1_tree, tiny_db):
        query = parse_xmlql(
            'where <supplier><name>$s</name></supplier>, $zz = "x" '
            "construct <r>$s</r>"
        )
        with pytest.raises(PlanError, match="unbound"):
            compose(query, q1_tree, tiny_db.schema)

    def test_construct_unbound_variable(self, q1_tree, tiny_db):
        query = parse_xmlql(
            "where <supplier><name>$s</name></supplier> "
            "construct <r>$zz</r>"
        )
        with pytest.raises(PlanError, match="unbound"):
            compose(query, q1_tree, tiny_db.schema)

    def test_binding_on_structural_node_rejected(self, q1_tree, tiny_db):
        # <supplier> has no text content of its own.
        query = parse_xmlql("where <supplier>$x</supplier> construct <r>$x</r>")
        with pytest.raises(PlanError, match="text value"):
            compose(query, q1_tree, tiny_db.schema)

    def test_no_variables_rejected(self, q1_tree, tiny_db):
        query = parse_xmlql(
            'where <supplier><nation>"FRANCE"</nation></supplier> '
            'construct <r>"x"</r>'
        )
        with pytest.raises(PlanError, match="binds no variables"):
            compose(query, q1_tree, tiny_db.schema)


class TestExecute:
    def test_bindings_match_reference(self, q1_tree, tiny_db, tiny_conn):
        """Results equal a hand-computed reference over the base tables."""
        result = execute_xmlql(
            "where <supplier><name>$s</name>"
            "<part><pname>$p</pname></part></supplier> "
            "construct <row><s>$s</s><p>$p</p></row>",
            q1_tree, tiny_conn,
        )
        supplier_name = {r[0]: r[1] for r in tiny_db.table("Supplier")}
        part_name = {r[0]: r[1] for r in tiny_db.table("Part")}
        expected = {
            (supplier_name[ps[1]], part_name[ps[0]])
            for ps in tiny_db.table("PartSupp")
        }
        assert result.bindings == len(expected)
        for s, p in expected:
            assert f"<s>{s}</s><p>{p}</p>" in result.xml

    def test_condition_filters(self, q1_tree, tiny_db, tiny_conn):
        some_supplier = tiny_db.table("Supplier").rows[0][1]
        result = execute_xmlql(
            "where <supplier><name>$s</name></supplier>, "
            f'$s = "{some_supplier}" construct <r>$s</r>',
            q1_tree, tiny_conn,
        )
        assert result.bindings == 1
        assert some_supplier in result.xml

    def test_literal_pattern_filters(self, q1_tree, tiny_db, tiny_conn):
        nation_of = {r[0]: r[3] for r in tiny_db.table("Supplier")}
        nation_name = {r[0]: r[1] for r in tiny_db.table("Nation")}
        target = nation_name[next(iter(nation_of.values()))]
        result = execute_xmlql(
            f'where <supplier><name>$s</name><nation>"{target}"</nation>'
            "</supplier> construct <r>$s</r>",
            q1_tree, tiny_conn,
        )
        expected = sum(
            1 for r in tiny_db.table("Supplier")
            if nation_name[r[3]] == target
        )
        assert result.bindings == expected

    def test_against_materialized_view(self, q1_tree, tiny_db, tiny_conn):
        """Virtual answers agree with grepping the materialized document."""
        from repro.core.partition import unified_partition
        from repro.core.sqlgen import SqlGenerator
        from repro.xmlgen.tagger import tag_streams

        generator = SqlGenerator(q1_tree, tiny_db.schema)
        specs = generator.streams_for_partition(unified_partition(q1_tree))
        streams = [tiny_conn.execute(s.plan) for s in specs]
        document, _ = tag_streams(q1_tree, specs, streams, root_tag="view")

        result = execute_xmlql(
            "where <order><customer>$c</customer></order> "
            "construct <r>$c</r>",
            q1_tree, tiny_conn,
        )
        import re

        materialized = set(re.findall(r"<customer>([^<]+)</customer>", document))
        virtual = set(re.findall(r"<r>([^<]+)</r>", result.xml))
        assert virtual == materialized

    def test_virtual_is_cheaper_than_materializing(self, q1_tree, tiny_db,
                                                   tiny_conn):
        """Sec. 7: fragment queries should not pay for the whole view."""
        from repro.core.partition import unified_partition
        from repro.core.sqlgen import SqlGenerator

        result = execute_xmlql(
            "where <supplier><name>$s</name></supplier> construct <r>$s</r>",
            q1_tree, tiny_conn,
        )
        generator = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        full = tiny_conn.execute(spec.plan)
        # At this tiny scale the per-query startup dominates, so just check
        # the fragment query is strictly cheaper and reads fewer tuples.
        assert result.server_ms < full.server_ms
        assert result.bindings < len(full)

    def test_no_root_tag(self, q1_tree, tiny_conn):
        result = execute_xmlql(
            "where <supplier><name>$s</name></supplier> construct <r>$s</r>",
            q1_tree, tiny_conn, root_tag=None,
        )
        assert result.xml.startswith("<r>")

    def test_result_fields(self, q1_tree, tiny_conn):
        result = execute_xmlql(
            "where <supplier><name>$s</name></supplier> construct <r>$s</r>",
            q1_tree, tiny_conn,
        )
        assert result.total_ms == result.server_ms + result.transfer_ms
        assert "SELECT" in result.sql
