"""Tests for view-tree reduction and plan units (repro.core.reduction)."""

import pytest

from repro.common.errors import PlanError
from repro.core.partition import (
    Partition,
    fully_partitioned,
    partition_subtrees,
    unified_partition,
)
from repro.core.reduction import PlanUnit, reduce_partition, reduce_subtree


def subtrees_for(tree, partition):
    return partition_subtrees(tree, partition)


class TestNonReduced:
    def test_one_unit_per_node(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=False)
        assert len(unit_tree.units) == 10
        assert all(len(u.members) == 1 for u in unit_tree.units)
        assert not unit_tree.reduced

    def test_unit_tree_mirrors_subtree(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=False)
        root = unit_tree.root
        assert root.representative is q1_tree.root
        assert [c.index for c in root.children] == [
            (1, 1), (1, 2), (1, 3), (1, 4)
        ]


class TestReduced:
    def test_unified_reduces_to_three_units(self, q1_tree):
        """Query 1's 1-connected groups: {S1, S1.1, S1.2, S1.3},
        {S1.4, S1.4.1}, {S1.4.2, S1.4.2.1, S1.4.2.2, S1.4.2.3} — the
        Fig. 11 pattern."""
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        units = unit_tree.units
        assert len(units) == 3
        sizes = sorted(len(u.members) for u in units)
        assert sizes == [2, 4, 4]

    def test_primed_names(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        names = {u.skolem_name() for u in unit_tree.units}
        assert names == {"S1'", "S1.4'", "S1.4.2'"}

    def test_cut_edges_not_merged(self, q1_tree):
        """Reduction only merges along *kept* 1-labeled edges."""
        partition = Partition([(1, 4), (1, 4, 1)])  # S1.1 etc. cut
        subtrees = subtrees_for(q1_tree, partition)
        all_units = []
        for subtree in subtrees:
            all_units.extend(reduce_subtree(subtree, reduce=True).units)
        merged = [u for u in all_units if u.is_reduced]
        assert len(merged) == 1
        assert {m.sfi for m in merged[0].members} == {"S1.4", "S1.4.1"}

    def test_star_edges_never_merged(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        for unit in unit_tree.units:
            labels = {m.label for m in unit.members if m is not unit.representative}
            assert "*" not in labels

    def test_keep_prohibits_merge(self, q1_tree):
        """The data-size heuristic: prohibited nodes stay separate."""
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True, keep=[(1, 2)])
        nation_unit = unit_tree.unit_of(q1_tree.node((1, 2)))
        assert len(nation_unit.members) == 1
        assert len(unit_tree.units) == 4

    def test_fully_partitioned_unaffected_by_reduction(self, q1_tree):
        for subtree in subtrees_for(q1_tree, fully_partitioned(q1_tree)):
            unit_tree = reduce_subtree(subtree, reduce=True)
            assert len(unit_tree.units) == 1

    def test_reduce_partition_helper(self, q1_tree):
        partition = unified_partition(q1_tree)
        subtrees = subtrees_for(q1_tree, partition)
        unit_trees = reduce_partition(q1_tree, partition, subtrees, reduce=True)
        assert len(unit_trees) == 1


class TestCombinedRule:
    def test_merged_head_is_union_of_args(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        root_unit = unit_tree.root
        fields = [a.field_hint for a in root_unit.args]
        # supplier + name + nation + region values
        assert "suppkey" in fields and "name" in fields
        assert len(root_unit.rule.head) == len(root_unit.args)

    def test_merged_atoms_deduplicated(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        atoms = unit_tree.root.rule.atoms
        assert len(atoms) == len(set(atoms))
        tables = {t for t, _ in atoms}
        assert "Supplier" in tables and "Nation" in tables and "Region" in tables

    def test_equalities_deduplicated(self, q1_tree):
        [subtree] = subtrees_for(q1_tree, unified_partition(q1_tree))
        unit_tree = reduce_subtree(subtree, reduce=True)
        eqs = [frozenset(e) for e in unit_tree.root.rule.equalities]
        assert len(eqs) == len(set(eqs))


class TestPlanUnit:
    def test_members_must_nest(self, q1_tree):
        with pytest.raises(PlanError, match="subtree"):
            PlanUnit([q1_tree.node((1, 1)), q1_tree.node((1, 2))])

    def test_shared_args(self, q1_tree):
        part = PlanUnit([q1_tree.node((1, 4))])
        order = PlanUnit([q1_tree.node((1, 4, 2))])
        shared = part.shared_args(order)
        assert [a.field_hint for a in shared] == ["suppkey", "partkey"]

    def test_unit_properties(self, q1_tree):
        unit = PlanUnit([q1_tree.node((1, 4, 2))])
        assert unit.index == (1, 4, 2)
        assert unit.level == 3
        assert unit.tag_value == 2
        assert not unit.is_reduced
        assert "S1.4.2" in repr(unit)

    def test_max_index_length_includes_members(self, q1_tree):
        unit = PlanUnit([q1_tree.node((1, 4)), q1_tree.node((1, 4, 1))])
        assert unit.max_index_length() == 3

    def test_unit_of_unknown_node(self, q1_tree):
        partition = Partition([(1, 4)])
        subtree = next(
            s for s in subtrees_for(q1_tree, partition)
            if s.root is q1_tree.root
        )
        unit_tree = reduce_subtree(subtree, reduce=False)
        with pytest.raises(PlanError):
            unit_tree.unit_of(q1_tree.node((1, 2)))
