"""The multi-tenant query service: coalescing, tenancy, the wire
protocol, and the serial-replay consistency oracle.

The load-bearing contracts:

* identical in-flight queries share exactly ONE underlying execution and
  every coalesced client receives the byte-identical document;
* a tenant past its ``max_inflight_requests`` quota is shed with
  ``OverloadError(reason="tenant")`` stamped with its tenant/request id,
  without touching other tenants;
* errors raised inside the execution surface the originating
  tenant/request id and (for sheds and timeouts) a partial report;
* any concurrent mix of queries and mutations is equivalent to replaying
  the server's execution log serially on a fresh database — XML
  byte-for-byte, simulated timings exactly (the hypothesis soak, on both
  engines).
"""

import os
import shutil
import socket
import struct
import tempfile
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1, QUERY_2
from repro.common.errors import (
    OverloadError,
    QueryError,
    TimeoutExceeded,
    tag_request,
)
from repro.core.options import ExecutionOptions
from repro.core.silkroute import PlanReport
from repro.core.sqlgen import PlanStyle
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.relational.replicas import AdmissionPolicy
from repro.serve import Server, ServeClient, ServeError
from repro.serve.protocol import (
    ProtocolError,
    decode,
    encode,
    error_to_wire,
    options_from_wire,
    options_to_wire,
    report_to_wire,
)
from repro.session import Session, apply_delta
from repro.tpch.generator import TpchGenerator, TpchScale

TINY = TpchScale(suppliers=8, parts=16, customers=10, orders=40)

QUERIES = {"q1": QUERY_1, "q2": QUERY_2}


def fresh_db(seed=42):
    return TpchGenerator(scale=TINY, seed=seed).generate()


def make_server(**kwargs):
    kwargs.setdefault("session", Session(fresh_db()))
    kwargs.setdefault("queries", QUERIES)
    return Server(**kwargs)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class _GatedSession:
    """Blocks every ``materialize`` on ``go`` and counts executions —
    the hook the coalescing/quota tests use to pin a leader in flight."""

    def __init__(self, server):
        self.server = server
        self.go = threading.Event()
        self.calls = []
        self._real = server.session.materialize

    def __enter__(self):
        def gated(*args, **kwargs):
            self.calls.append(threading.get_ident())
            assert self.go.wait(30), "gated materialize never released"
            return self._real(*args, **kwargs)

        self.server.session.materialize = gated
        return self

    def __exit__(self, *exc_info):
        self.go.set()
        self.server.session.materialize = self._real


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        obj = {"op": "query", "query": "q1", "indent": 2}
        line = encode(obj)
        assert line.endswith(b"\n")
        assert decode(line) == obj

    def test_decode_refuses_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"   \n")
        with pytest.raises(ProtocolError):
            decode(b"{not json}\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_options_roundtrip(self):
        opts = ExecutionOptions(
            style=PlanStyle.OUTER_UNION, reduce=True, budget_ms=125.0,
            workers=2, retry=RetryPolicy(max_attempts=3),
            faults=FaultPolicy(seed=7, error_rate=0.25), replicas=2,
            hedge_ms=4.0, max_concurrent=3, engine="tuple", batch_size=64,
        )
        back = options_from_wire(options_to_wire(opts))
        assert back.style is PlanStyle.OUTER_UNION
        assert back.reduce is True
        assert back.budget_ms == 125.0
        assert back.workers == 2
        assert back.retry.max_attempts == 3
        assert back.faults.seed == 7
        assert back.faults.error_rate == 0.25
        assert back.replicas == 2
        assert back.hedge_ms == 4.0
        assert back.max_concurrent == 3
        assert back.engine == "tuple"
        assert back.batch_size == 64

    def test_unknown_wire_option_is_refused(self):
        with pytest.raises(ProtocolError, match="workerz"):
            options_from_wire({"workerz": 4})
        with pytest.raises(ProtocolError, match="style"):
            options_from_wire({"style": "sideways-join"})
        with pytest.raises(ProtocolError, match="engine"):
            options_from_wire({"engine": "quantum"})

    def test_none_options_pass_through(self):
        assert options_from_wire(None) is None
        assert options_to_wire(None) is None

    def test_backend_name_roundtrips(self):
        back = options_from_wire(
            options_to_wire(ExecutionOptions(backend="sqlite"))
        )
        assert back.backend == "sqlite"
        with pytest.raises(ProtocolError, match="backend"):
            options_from_wire({"backend": "postgres"})

    def test_backend_instance_stays_client_side(self):
        # A live Backend object is a local resource: it must not be
        # serialized onto the wire (only names cross).
        class FakeBackend:
            pass

        wire = options_to_wire(ExecutionOptions(backend=FakeBackend()))
        assert "backend" not in wire

    def test_report_nan_crosses_as_null(self):
        report = PlanReport(
            partition=frozenset(), n_streams=3, query_ms=float("nan"),
            transfer_ms=float("nan"), streams=[], timed_out=True,
        )
        wire = report_to_wire(report)
        assert wire["query_ms"] is None
        assert wire["transfer_ms"] is None
        assert wire["n_streams"] == 3
        assert wire["timed_out"] is True

    def test_error_wire_carries_request_identity(self):
        exc = tag_request(
            OverloadError("too busy", reason="tenant"), "acme", "r-7",
        )
        wire = error_to_wire(exc)
        assert wire["type"] == "OverloadError"
        assert wire["tenant"] == "acme"
        assert wire["request_id"] == "r-7"
        assert wire["reason"] == "tenant"
        err = ServeError(wire)
        assert err.kind == "OverloadError"
        assert err.tenant == "acme" and err.request_id == "r-7"
        assert err.reason == "tenant"


class TestServerBasics:
    def test_registered_name_matches_direct_session(self):
        server = make_server()
        direct = Session(fresh_db()).materialize(
            QUERY_1, "unified", indent=2,
        )
        served = server.query("q1", partition="unified", indent=2)
        assert served.xml == direct.xml
        assert served.report.query_ms == direct.report.query_ms
        assert served.report.transfer_ms == direct.report.transfer_ms
        assert served.coalesced is False
        assert served.stats["serve"]["tenant"] == "default"

    def test_inline_rxl_is_accepted(self):
        server = make_server()
        by_name = server.query("q1", partition="unified")
        inline = server.query(QUERY_1, partition="unified")
        assert inline.xml == by_name.xml

    def test_unknown_query_name_is_refused(self):
        server = make_server()
        with pytest.raises(QueryError, match="q1"):
            server.query("q99")
        assert server.execution_log() == ()

    def test_explain_returns_sql_without_logging(self):
        server = make_server()
        result = server.explain("q1", partition="unified")
        assert len(result.sql) == 1
        assert server.execution_log() == ()

    def test_stats_counters(self):
        server = make_server()
        server.query("q1", partition="unified")
        server.mutate("Nation", op="insert", rows=1)
        stats = server.stats()
        assert stats["requests"] == 2
        assert stats["mutations"] == 1
        assert stats["coalesced"] == 0
        assert stats["errors"] == 0
        assert stats["log_entries"] == 2
        assert stats["latency_ms"]["count"] == 2

    def test_mutation_is_immediately_visible(self):
        server = make_server()
        before = server.query("q1", partition="unified")
        delta = server.mutate("Supplier", op="update", rows=2, seed=1)
        assert delta.mutated == 2
        after = server.query("q1", partition="unified")
        assert after.xml != before.xml

        cold = Session(fresh_db(), cache=False)
        apply_delta(cold.database, "Supplier", op="update", rows=2, seed=1)
        oracle = cold.materialize(QUERY_1, "unified")
        assert after.xml == oracle.xml
        assert after.report.query_ms == oracle.report.query_ms

    def test_replay_reproduces_a_serial_run(self):
        server = make_server()
        live = [
            server.query("q1", partition="unified", indent=2),
            server.mutate("Nation", op="insert", rows=2, seed=4),
            server.query("q1", partition="unified", indent=2),
            server.query("q2", partition="fully-partitioned"),
        ]
        replayed = server.replay(session=Session(fresh_db()))
        assert len(replayed) == len(live)
        for mine, theirs in zip(live, replayed):
            assert theirs.xml == mine.xml
            if mine.report is not None:
                assert theirs.report.query_ms == mine.report.query_ms
                assert theirs.report.transfer_ms == mine.report.transfer_ms
            else:
                assert theirs.mutated == mine.mutated


class TestCoalescing:
    def test_identical_inflight_queries_share_one_execution(self):
        server = make_server()
        n = 8
        results = [None] * n
        errors = []

        def client(i):
            try:
                results[i] = server.query(
                    "q1", tenant=f"t{i}", request_id=f"r{i}",
                    partition="unified",
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with _GatedSession(server) as gate:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            # One leader inside the gated materialize, and all n-1
            # followers parked on the single-flight condition variable.
            assert wait_until(lambda: len(gate.calls) == 1)
            assert wait_until(
                lambda: len(server._flight._cv._waiters) == n - 1)
            gate.go.set()
            for t in threads:
                t.join(30)
        assert not errors
        assert len(gate.calls) == 1, "coalesced requests re-executed"
        assert sum(r.coalesced for r in results) == n - 1
        assert len({r.xml for r in results}) == 1
        stats = server.stats()
        assert stats["requests"] == n
        assert stats["coalesced"] == n - 1
        assert stats["log_entries"] == n

    def test_different_serializations_do_not_coalesce(self):
        server = make_server()
        results = {}

        def client(indent):
            results[indent] = server.query(
                "q1", partition="unified", indent=indent,
            )

        with _GatedSession(server) as gate:
            threads = [threading.Thread(target=client, args=(indent,))
                       for indent in (None, 2)]
            for t in threads:
                t.start()
            assert wait_until(lambda: len(gate.calls) == 2)
            gate.go.set()
            for t in threads:
                t.join(30)
        assert len(gate.calls) == 2
        assert not results[None].coalesced and not results[2].coalesced
        assert results[None].xml != results[2].xml

    def test_coalescing_follower_shares_leader_error(self):
        server = make_server()
        seen = []

        def client(i):
            try:
                server.query("q1", request_id=f"r{i}",
                             partition="fully-partitioned",
                             budget_ms=0.001)
            except TimeoutExceeded as exc:
                seen.append(exc)

        with _GatedSession(server) as gate:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(2)]
            threads[0].start()
            assert wait_until(lambda: len(gate.calls) == 1)
            threads[1].start()
            assert wait_until(
                lambda: len(server._flight._cv._waiters) == 1)
            gate.go.set()
            for t in threads:
                t.join(30)
        assert len(gate.calls) == 1
        assert len(seen) == 2
        assert server.stats()["errors"] >= 1
        assert server.execution_log() == ()


class TestTenancy:
    def test_quota_shed_carries_tenant_and_request_id(self):
        server = make_server()
        server.register_tenant("greedy", 1)
        done = []

        def leader():
            done.append(server.query("q1", tenant="greedy",
                                     request_id="lead",
                                     partition="unified"))

        with _GatedSession(server) as gate:
            t = threading.Thread(target=leader)
            t.start()
            assert wait_until(lambda: len(gate.calls) == 1)
            with pytest.raises(OverloadError) as info:
                server.query("q1", tenant="greedy", request_id="over",
                             partition="unified")
            gate.go.set()
            t.join(30)
        exc = info.value
        assert exc.reason == "tenant"
        assert exc.tenant == "greedy"
        assert exc.request_id == "over"
        assert done and done[0].xml
        stats = server.stats()
        assert stats["shed"] == 1
        assert stats["tenants"]["greedy"]["shed"] == 1
        assert stats["tenants"]["greedy"]["inflight"] == 0

    def test_other_tenants_are_unaffected_by_a_quota(self):
        server = make_server()
        server.register_tenant("greedy", 1)
        server.query("q1", tenant="polite", partition="unified")
        server.query("q1", tenant="polite", partition="unified")
        assert server.stats()["shed"] == 0

    def test_default_policy_covers_unregistered_tenants(self):
        server = make_server(
            default_policy=AdmissionPolicy(max_inflight_requests=1),
        )
        with _GatedSession(server) as gate:
            t = threading.Thread(
                target=lambda: server.query("q1", tenant="anon",
                                            partition="unified"))
            t.start()
            assert wait_until(lambda: len(gate.calls) == 1)
            with pytest.raises(OverloadError):
                server.query("q1", tenant="anon", partition="unified")
            # A different unregistered tenant has its own controller.
            gate.go.set()
            t.join(30)
        server.query("q1", tenant="other", partition="unified")
        assert server.stats()["tenants"]["anon"]["shed"] == 1


class TestErrorStamping:
    def test_timeout_carries_request_identity_and_partial_report(self):
        server = make_server()
        with pytest.raises(TimeoutExceeded) as info:
            server.query("q1", tenant="acme", request_id="rq-9",
                         partition="fully-partitioned", budget_ms=0.001)
        exc = info.value
        assert exc.tenant == "acme"
        assert exc.request_id == "rq-9"
        assert exc.report is not None
        assert server.stats()["errors"] == 1
        assert server.execution_log() == ()


class TestSocketFrontEnd:
    def test_end_to_end_over_a_socket(self):
        with make_server() as server:
            host, port = server.start()
            direct = server.query("q1", partition="unified", indent=2)
            with ServeClient(host, port) as client:
                assert client.ping() is True
                reply = client.query("q1", partition="unified", indent=2,
                                     tenant="acme", request_id="w-1")
                assert reply["xml"] == direct.xml
                assert reply["report"]["query_ms"] == \
                    direct.report.query_ms
                assert reply["stats"] == {"tenant": "acme",
                                          "request_id": "w-1"}
                sql = client.explain("q1", partition="unified")
                assert len(sql) == 1
                mutated = client.mutate("Nation", op="insert", rows=2)
                assert mutated["mutated"] == 2
                assert mutated["table"] == "Nation"
                stats = client.stats()
                assert stats["requests"] >= 3
                assert stats["mutations"] == 1

    def test_wire_options_drive_the_execution(self):
        with make_server() as server:
            host, port = server.start()
            with ServeClient(host, port) as client:
                reply = client.query(
                    "q1", partition="fully-partitioned",
                    options={"workers": 3, "engine": "tuple"},
                )
                assert reply["report"]["workers"] == 3

    def test_server_errors_surface_as_serve_errors(self):
        with make_server() as server:
            host, port = server.start()
            with ServeClient(host, port) as client:
                with pytest.raises(ServeError) as info:
                    client.query("nope")
                assert info.value.kind == "QueryError"
                with pytest.raises(ServeError) as info:
                    client.query("q1", partition="fully-partitioned",
                                 options={"budget_ms": 0.001},
                                 tenant="acme", request_id="w-9")
                err = info.value
                assert err.kind == "TimeoutExceeded"
                assert err.tenant == "acme"
                assert err.request_id == "w-9"
                assert err.report is not None
                # The connection survives failed requests.
                assert client.ping() is True

    def test_malformed_line_does_not_kill_the_connection(self):
        with make_server() as server:
            host, port = server.start()
            client = ServeClient(host, port)
            try:
                client._sock.sendall(b"this is not json\n")
                response = decode(client._rfile.readline())
                assert response["ok"] is False
                assert client.ping() is True
            finally:
                client.close()

    def test_handle_request_refuses_unknown_ops(self):
        server = make_server()
        response = server.handle_request({"op": "reboot"})
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"


class TestDrain:
    def test_drain_sheds_with_typed_reason(self):
        server = make_server()
        assert server.drain() is True
        assert server.draining is True
        with pytest.raises(OverloadError) as info:
            server.query("q1", tenant="acme", request_id="d-1")
        exc = info.value
        assert exc.reason == "draining"
        assert exc.tenant == "acme"
        assert exc.request_id == "d-1"
        stats = server.stats()
        assert stats["draining"] is True
        assert stats["draining_shed"] == 1
        server.undrain()
        assert server.query("q1").xml  # admission re-opened

    def test_drain_waits_for_inflight_requests(self):
        server = make_server()
        results = {}
        drained = {}
        with _GatedSession(server) as gate:
            worker = threading.Thread(
                target=lambda: results.update(q=server.query("q1")))
            worker.start()
            assert wait_until(lambda: gate.calls)
            drainer = threading.Thread(
                target=lambda: drained.update(ok=server.drain(timeout=30)))
            drainer.start()
            time.sleep(0.05)
            # The pinned request holds the drain open...
            assert not drained
            # ...while new arrivals are shed, not queued.
            with pytest.raises(OverloadError):
                server.query("q1")
            gate.go.set()
            drainer.join(30)
        worker.join(30)
        assert drained.get("ok") is True
        assert results["q"].xml  # the in-flight request completed normally

    def test_drain_times_out_when_requests_hang(self):
        server = make_server()
        with _GatedSession(server) as gate:
            worker = threading.Thread(target=lambda: server.query("q1"))
            worker.start()
            assert wait_until(lambda: gate.calls)
            assert server.drain(timeout=0.05) is False
            gate.go.set()
        worker.join(30)
        server.undrain()

    def test_terminate_checkpoints_the_wal(self):
        wal_dir = tempfile.mkdtemp(prefix="serve-wal-")
        try:
            server = Server(db=fresh_db(), queries=QUERIES, wal=wal_dir)
            server.mutate("Nation", op="insert", rows=2, request_id="t-1")
            gens = server.session.database.table_generations()
            assert server.terminate() is True
            # The snapshot absorbed the log: the next start recovers from
            # it with nothing to replay.
            assert os.path.getsize(os.path.join(wal_dir, "wal.log")) == 8
            restarted = Server(db=fresh_db(), queries=QUERIES, wal=wal_dir)
            assert restarted.session.recovery.records_scanned == 0
            assert restarted.session.database.table_generations() == gens
            # And the idempotency map survived the checkpoint.
            replay = restarted.mutate("Nation", op="insert", rows=2,
                                      request_id="t-1")
            assert replay.stats.get("deduplicated") is True
            restarted.session.wal.close()
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)


class TestFrameHardening:
    def test_oversized_frame_gets_structured_error(self):
        with make_server(max_frame_bytes=512) as server:
            host, port = server.start()
            client = ServeClient(host, port)
            try:
                client._sock.sendall(b'{"op": "ping", "pad": "' +
                                     b"x" * 2048 + b'"}\n')
                response = decode(client._rfile.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"
                assert "exceeds 512 bytes" in response["error"]["message"]
                # The frame was drained to its newline: the connection
                # survives and the next request parses cleanly.
                assert client.ping() is True
                assert server.stats()["oversized_frames"] == 1
            finally:
                client.close()

    def test_malformed_frame_is_counted(self):
        with make_server() as server:
            host, port = server.start()
            client = ServeClient(host, port)
            try:
                client._sock.sendall(b"this is not json\n")
                response = decode(client._rfile.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"
                assert client.ping() is True
                assert server.stats()["malformed_frames"] == 1
            finally:
                client.close()

    def test_disconnect_mid_response_releases_the_slot(self):
        # A client that vanishes (RST via SO_LINGER-0 close) while its
        # query executes: the handler's write fails, the disconnect is
        # counted, and the server keeps serving other clients.
        with make_server() as server:
            host, port = server.start()
            with _GatedSession(server) as gate:
                sock = socket.create_connection((host, port), timeout=10)
                sock.sendall(encode({"op": "query", "query": "q1"}))
                assert wait_until(lambda: gate.calls)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                sock.close()
                gate.go.set()
            assert wait_until(
                lambda: server.metrics.counter("serve.client_disconnects") >= 1
            ), "disconnect never counted"
            with ServeClient(host, port) as client:
                assert client.ping() is True


class TestClientRetry:
    def test_retry_survives_a_server_restart(self):
        sleeps = []
        with make_server() as server:
            host, port = server.start()
            direct = server.query("q1", partition="unified")
            client = ServeClient(host, port, retries=3, backoff_s=0.01,
                                 sleep=sleeps.append)
            try:
                assert client.ping() is True
                # Restart the front end AND sever the established
                # connection (shutdown() only closes the listener; the
                # per-connection handler threads live on).
                server.shutdown()
                server.start(host, port)  # same port, new listener
                client._sock.shutdown(socket.SHUT_RDWR)
                reply = client.query("q1", partition="unified")
                assert reply["xml"] == direct.xml
                assert sleeps, "the dead connection should have cost a retry"
            finally:
                client.close()

    def test_backoff_doubles_and_caps(self):
        sleeps = []
        with make_server() as server:
            host, port = server.start()
            client = ServeClient(host, port, retries=4, backoff_s=0.1,
                                 max_backoff_s=0.25, sleep=sleeps.append)
            assert client.ping() is True
        # Listener gone for good; sever the established pipe too (the
        # per-connection handler outlives the listener), so every
        # attempt must reconnect — and fail.
        client._sock.shutdown(socket.SHUT_RDWR)
        with pytest.raises((ConnectionError, OSError)):
            client.ping()
        assert sleeps == [0.1, 0.2, 0.25, 0.25]
        client.close()

    def test_server_errors_are_never_retried(self):
        sleeps = []
        with make_server() as server:
            host, port = server.start()
            with ServeClient(host, port, retries=5, backoff_s=0.01,
                             sleep=sleeps.append) as client:
                with pytest.raises(ServeError):
                    client.query("nope")
                assert sleeps == []  # the server answered; no retry

    def test_retried_mutation_is_exactly_once(self):
        with make_server() as server:
            host, port = server.start()
            with ServeClient(host, port, retries=3, backoff_s=0.01,
                             sleep=lambda s: None) as client:
                first = client.mutate("Nation", op="insert", rows=2,
                                      request_id="x-1")
                assert first["deduplicated"] is False
                # The resend (response lost, client retried) returns the
                # recorded result instead of applying twice.
                second = client.mutate("Nation", op="insert", rows=2,
                                       request_id="x-1")
                assert second["deduplicated"] is True
                assert second["mutated"] == first["mutated"]
                assert second["generation"] == first["generation"]
                assert server.stats()["deduped"] == 1
                # A fresh call (retries pin a NEW auto id) applies.
                third = client.mutate("Nation", op="insert", rows=1, seed=9)
                assert third["deduplicated"] is False

    def test_retried_mutation_dedups_across_wal_restart(self):
        wal_dir = tempfile.mkdtemp(prefix="serve-wal-")
        try:
            server = Server(db=fresh_db(), queries=QUERIES, wal=wal_dir)
            host, port = server.start()
            client = ServeClient(host, port, retries=3, backoff_s=0.01,
                                 sleep=lambda s: None)
            first = client.mutate("Supplier", op="update", rows=2,
                                  request_id="x-9")
            server.shutdown()
            server.session.wal.close()
            # Full process-style restart: fresh base, recover from disk,
            # bind the SAME port — the client's retry rides through it.
            restarted = Server(db=fresh_db(), queries=QUERIES, wal=wal_dir)
            restarted.start(host, port)
            client._sock.shutdown(socket.SHUT_RDWR)  # sever the old pipe
            replay = client.mutate("Supplier", op="update", rows=2,
                                   request_id="x-9")
            assert replay["deduplicated"] is True
            assert replay["mutated"] == first["mutated"]
            client.close()
            restarted.shutdown()
            restarted.session.wal.close()
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)


# -- the soak: concurrent mixes == serial replay ---------------------------

_QUERY_OPS = st.tuples(
    st.just("query"),
    st.sampled_from(["q1", "q2"]),
    st.sampled_from(["unified", "fully-partitioned"]),
    st.sampled_from([None, 2]),
)
_MUTATE_OPS = st.tuples(
    st.just("mutate"),
    st.sampled_from(["Nation", "Supplier", "Customer"]),
    st.sampled_from(["insert", "update"]),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=5),
)
_CLIENT_PLANS = st.lists(
    st.lists(st.one_of(_QUERY_OPS, _MUTATE_OPS), min_size=1, max_size=3),
    min_size=8, max_size=8,
)


class TestSoak:
    """N concurrent clients issuing query/mutation mixes against one
    server are equivalent to replaying its execution log serially on a
    fresh database: byte-identical XML, identical simulated timings."""

    @pytest.mark.parametrize("engine", ["batch", "tuple"])
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plans=_CLIENT_PLANS)
    def test_concurrent_run_equals_serial_replay(self, engine, plans):
        server = Server(
            session=Session(fresh_db(),
                            options=ExecutionOptions(engine=engine)),
            queries=QUERIES,
        )
        live = {}
        errors = []
        barrier = threading.Barrier(len(plans))

        def client(ci, ops):
            try:
                barrier.wait(30)
                for oi, op in enumerate(ops):
                    rid = f"c{ci}-{oi}"
                    if op[0] == "query":
                        _, name, partition, indent = op
                        live[rid] = server.query(
                            name, tenant=f"t{ci}", request_id=rid,
                            partition=partition, indent=indent,
                        )
                    else:
                        _, table, mop, rows, seed = op
                        # A per-request-unique seed: two concurrent
                        # inserts with one seed would synthesize the
                        # same unique-column values (an application
                        # conflict, not a serving property).
                        live[rid] = server.mutate(
                            table, op=mop, rows=rows,
                            seed=seed * 100 + ci * 10 + oi,
                            tenant=f"t{ci}", request_id=rid,
                        )
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(ci, ops))
                   for ci, ops in enumerate(plans)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads), "soak deadlocked"
        assert not errors, errors

        log = server.execution_log()
        assert len(log) == sum(len(ops) for ops in plans)
        replayed = server.replay(session=Session(fresh_db()))
        for entry, theirs in zip(log, replayed):
            mine = live[entry["request_id"]]
            if entry["kind"] == "query":
                assert theirs.xml == mine.xml
                assert theirs.report.query_ms == mine.report.query_ms
                assert theirs.report.transfer_ms == mine.report.transfer_ms
            else:
                assert theirs.mutated == mine.mutated
