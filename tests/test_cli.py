"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--query", "q9"])


def reject(*argv):
    """Parse expecting rejection; return (exit code, stderr text)."""
    import contextlib

    err = io.StringIO()
    with contextlib.redirect_stderr(err):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(list(argv))
    return info.value.code, err.getvalue()


class TestValidation:
    """Bad flag values die with a one-line error and exit code 2."""

    @pytest.mark.parametrize("rate", ["-0.1", "1.5", "2", "nan", "abc"])
    def test_fault_rate_must_be_probability(self, rate):
        code, err = reject("materialize", "--fault-rate", rate)
        assert code == 2
        assert "--fault-rate" in err

    @pytest.mark.parametrize("flag", ["--workers", "--retries",
                                      "--replicas", "--max-concurrent"])
    @pytest.mark.parametrize("value", ["0", "-1", "x"])
    def test_positive_int_flags(self, flag, value):
        code, err = reject("materialize", flag, value)
        assert code == 2
        assert flag in err

    @pytest.mark.parametrize("flag", ["--budget-ms", "--hedge-ms"])
    @pytest.mark.parametrize("value", ["0", "-5", "oops"])
    def test_positive_float_flags(self, flag, value):
        code, err = reject("materialize", flag, value)
        assert code == 2
        assert flag in err

    def test_unknown_query_exits_2(self):
        code, err = reject("materialize", "--query", "nope")
        assert code == 2
        assert "--query" in err

    def test_error_message_is_one_line(self):
        _, err = reject("sweep", "--fault-rate", "7")
        # argparse prints usage + a single error line; the error itself
        # is one line naming the flag and the offending value.
        error_lines = [l for l in err.splitlines() if "error:" in l]
        assert len(error_lines) == 1
        assert "7" in error_lines[0]

    def test_valid_boundary_values_accepted(self):
        args = build_parser().parse_args(
            ["materialize", "--fault-rate", "0", "--workers", "1",
             "--replicas", "2", "--hedge-ms", "0.5",
             "--max-concurrent", "1", "--budget-ms", "0.1"])
        assert args.fault_rate == 0.0
        assert args.replicas == 2
        assert args.hedge_ms == 0.5
        assert args.max_concurrent == 1
        args = build_parser().parse_args(["materialize", "--fault-rate", "1"])
        assert args.fault_rate == 1.0


class TestExplain:
    def test_unified(self):
        code, output = run_cli("explain", "--strategy", "unified")
        assert code == 0
        assert "LEFT OUTER JOIN" in output
        assert output.count("-- query") == 1

    def test_fully_partitioned(self):
        code, output = run_cli("explain", "--strategy", "fully-partitioned")
        assert output.count("-- query") == 10

    def test_greedy_reduced(self):
        code, output = run_cli("explain", "--reduce")
        assert code == 0
        assert "ORDER BY" in output


class TestMaterialize:
    def test_stdout(self):
        code, output = run_cli("materialize", "--strategy", "fully-partitioned")
        assert code == 0
        assert output.startswith("<view>")
        assert "stream(s), simulated" in output

    def test_to_file(self, tmp_path):
        target = tmp_path / "doc.xml"
        code, output = run_cli(
            "materialize", "--strategy", "unified", "--out", str(target)
        )
        assert code == 0
        assert target.read_text().startswith("<view>")
        assert "wrote" in output

    def test_indent(self):
        _, output = run_cli("materialize", "--strategy", "fully-partitioned",
                            "--indent", "2")
        assert "\n  <supplier>" in output

    def test_query2(self):
        _, output = run_cli("materialize", "--query", "q2",
                            "--strategy", "fully-partitioned")
        assert "<order>" in output


class TestPlan:
    def test_plan_output(self):
        code, output = run_cli("plan", "--reduce")
        assert code == 0
        assert "mandatory edges" in output
        assert "oracle requests" in output

    def test_plan_outer_union_style(self):
        code, output = run_cli("plan", "--style", "outer-union")
        assert code == 0


class TestXmlQl:
    def test_xmlql_command(self):
        code, output = run_cli(
            "xmlql",
            'where <supplier><name>$s</name></supplier>, '
            '$s = "Supplier#000001" construct <r>$s</r>',
        )
        assert code == 0
        assert "<r>Supplier#000001</r>" in output
        assert "1 binding(s)" in output


class TestTreeAndSql:
    def test_tree_command(self):
        code, output = run_cli("tree")
        assert code == 0
        assert "S1 <supplier>" in output
        assert "(*) S1.4 <part>" in output

    def test_tree_no_args(self):
        _, output = run_cli("tree", "--no-args")
        assert "suppkey(1,1)" not in output

    def test_sql_command(self):
        code, output = run_cli(
            "sql",
            "SELECT r.name AS name FROM Region r ORDER BY name NULLS FIRST",
        )
        assert code == 0
        assert "AFRICA" in output
        assert "row(s)" in output


class TestExperiments:
    def test_registry_listing(self):
        code, output = run_cli("experiments")
        assert code == 0
        for eid in ("E1", "E5", "E10"):
            assert eid + ":" in output
        assert "benchmarks/test_sec2_table.py" in output

    def test_registry_lookup(self):
        from repro.bench.experiments import EXPERIMENTS, experiment

        assert len(EXPERIMENTS) == 10
        assert experiment("E7").artifact.startswith("Fig. 18")
        import pytest as _pytest
        with _pytest.raises(KeyError):
            experiment("E99")

    def test_benches_exist(self):
        import pathlib

        from repro.bench.experiments import EXPERIMENTS

        root = pathlib.Path(__file__).parent.parent
        for entry in EXPERIMENTS:
            path = entry.bench.split("::")[0]
            assert (root / path).exists(), path


class TestVersion:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestTrace:
    def test_writes_chrome_trace_and_profile(self, tmp_path):
        import json

        target = tmp_path / "trace.json"
        code, output = run_cli("trace", "q1", "--out", str(target))
        assert code == 0
        events = json.loads(target.read_text())
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        for required in ("materialize", "sqlgen", "dispatch", "merge", "tag"):
            assert required in names
        assert any(n.startswith("stream:") for n in names)
        # The profile tree and the summary land on stdout.
        assert "materialize" in output
        assert "wrote Chrome trace" in output
        assert "stream(s), simulated" in output

    def test_default_query_and_out(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _ = run_cli("trace")
        assert code == 0
        assert (tmp_path / "trace.json").exists()

    def test_trace_with_metrics(self, tmp_path):
        import json

        code, output = run_cli(
            "trace", "q1", "--out", str(tmp_path / "t.json"), "--metrics"
        )
        assert code == 0
        snap = json.loads(output[output.index("{"):])
        assert snap["counters"]["streams.executed"] >= 1


class TestMetricsFlag:
    def test_materialize_metrics(self):
        import json

        code, output = run_cli(
            "materialize", "--strategy", "fully-partitioned", "--metrics"
        )
        assert code == 0
        snap = json.loads(output[output.index("{"):])
        assert snap["counters"]["dispatch.attempts"] >= 1
        assert "stream.query_ms" in snap["histograms"]

    def test_materialize_without_metrics_prints_no_json(self):
        _, output = run_cli("materialize", "--strategy", "fully-partitioned")
        assert '"counters"' not in output


class TestReplicaFlags:
    def test_materialize_with_replicas(self):
        code, output = run_cli(
            "materialize", "--strategy", "fully-partitioned",
            "--replicas", "3", "--hedge-ms", "5",
            "--fault-rate", "0.3", "--fault-seed", "7", "--retries", "4",
        )
        assert code == 0
        assert output.startswith("<view>")
        assert "-- replicas:" in output
        assert "failover(s)" in output and "hedge(s)" in output

    def test_replica_run_matches_plain_run(self):
        _, plain = run_cli("materialize", "--strategy", "fully-partitioned")
        _, replicated = run_cli(
            "materialize", "--strategy", "fully-partitioned",
            "--replicas", "2", "--hedge-ms", "50",
            "--fault-rate", "0.2", "--retries", "4",
        )
        plain_xml = plain[:plain.index("\n-- ")]
        replicated_xml = replicated[:replicated.index("\n-- ")]
        assert replicated_xml == plain_xml

    def test_max_concurrent_accepted(self):
        code, output = run_cli(
            "materialize", "--strategy", "fully-partitioned",
            "--max-concurrent", "4", "--workers", "8",
        )
        assert code == 0
        assert output.startswith("<view>")


def reject_main(*argv):
    """Run main() expecting a validation exit; return (code, stderr)."""
    import contextlib

    err = io.StringIO()
    out = io.StringIO()
    with contextlib.redirect_stderr(err):
        with pytest.raises(SystemExit) as info:
            main(list(argv), out=out)
    return info.value.code, err.getvalue()


class TestBackendFlags:
    def test_unknown_backend_rejected(self):
        code, err = reject("materialize", "--backend", "postgres")
        assert code == 2
        assert "--backend" in err

    def test_db_path_requires_sqlite_backend(self):
        code, err = reject_main("materialize", "--db-path", "x.db")
        assert code == 2
        error_lines = [l for l in err.splitlines() if "error:" in l]
        assert len(error_lines) == 1
        assert "--db-path" in error_lines[0]

    def test_db_path_with_simulated_backend_rejected(self):
        code, err = reject_main(
            "materialize", "--backend", "simulated", "--db-path", "x.db"
        )
        assert code == 2
        assert "--db-path" in err

    def test_materialize_with_sqlite_backend(self):
        code, output = run_cli(
            "materialize", "--strategy", "fully-partitioned",
            "--backend", "sqlite",
        )
        assert code == 0
        assert "-- backend: sqlite" in output
        assert "cross-validated" in output

    def test_backend_run_matches_plain_run(self):
        _, plain = run_cli("materialize", "--strategy", "fully-partitioned")
        _, backed = run_cli(
            "materialize", "--strategy", "fully-partitioned",
            "--backend", "sqlite",
        )
        assert backed[:backed.index("\n-- ")] == plain[:plain.index("\n-- ")]
        # The simulated summary line is byte-identical too: real-backend
        # walls never leak into the simulated timings.
        plain_summary = [l for l in plain.splitlines()
                         if "stream(s), simulated" in l]
        backed_summary = [l for l in backed.splitlines()
                          if "stream(s), simulated" in l]
        assert backed_summary == plain_summary

    def test_simulated_backend_named_in_summary(self):
        code, output = run_cli(
            "materialize", "--strategy", "unified", "--backend", "simulated"
        )
        assert code == 0
        assert "-- backend: simulated" in output

    def test_db_path_writes_file(self, tmp_path):
        target = tmp_path / "silk.db"
        code, output = run_cli(
            "materialize", "--strategy", "unified",
            "--backend", "sqlite", "--db-path", str(target),
        )
        assert code == 0
        assert "-- backend: sqlite" in output
        assert target.exists() and target.stat().st_size > 0

    def test_sweep_accepts_backend_flag(self):
        args = build_parser().parse_args(["sweep", "--backend", "sqlite"])
        assert args.backend == "sqlite"
