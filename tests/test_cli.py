"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--query", "q9"])


class TestExplain:
    def test_unified(self):
        code, output = run_cli("explain", "--strategy", "unified")
        assert code == 0
        assert "LEFT OUTER JOIN" in output
        assert output.count("-- query") == 1

    def test_fully_partitioned(self):
        code, output = run_cli("explain", "--strategy", "fully-partitioned")
        assert output.count("-- query") == 10

    def test_greedy_reduced(self):
        code, output = run_cli("explain", "--reduce")
        assert code == 0
        assert "ORDER BY" in output


class TestMaterialize:
    def test_stdout(self):
        code, output = run_cli("materialize", "--strategy", "fully-partitioned")
        assert code == 0
        assert output.startswith("<view>")
        assert "stream(s), simulated" in output

    def test_to_file(self, tmp_path):
        target = tmp_path / "doc.xml"
        code, output = run_cli(
            "materialize", "--strategy", "unified", "--out", str(target)
        )
        assert code == 0
        assert target.read_text().startswith("<view>")
        assert "wrote" in output

    def test_indent(self):
        _, output = run_cli("materialize", "--strategy", "fully-partitioned",
                            "--indent", "2")
        assert "\n  <supplier>" in output

    def test_query2(self):
        _, output = run_cli("materialize", "--query", "q2",
                            "--strategy", "fully-partitioned")
        assert "<order>" in output


class TestPlan:
    def test_plan_output(self):
        code, output = run_cli("plan", "--reduce")
        assert code == 0
        assert "mandatory edges" in output
        assert "oracle requests" in output

    def test_plan_outer_union_style(self):
        code, output = run_cli("plan", "--style", "outer-union")
        assert code == 0


class TestXmlQl:
    def test_xmlql_command(self):
        code, output = run_cli(
            "xmlql",
            'where <supplier><name>$s</name></supplier>, '
            '$s = "Supplier#000001" construct <r>$s</r>',
        )
        assert code == 0
        assert "<r>Supplier#000001</r>" in output
        assert "1 binding(s)" in output


class TestTreeAndSql:
    def test_tree_command(self):
        code, output = run_cli("tree")
        assert code == 0
        assert "S1 <supplier>" in output
        assert "(*) S1.4 <part>" in output

    def test_tree_no_args(self):
        _, output = run_cli("tree", "--no-args")
        assert "suppkey(1,1)" not in output

    def test_sql_command(self):
        code, output = run_cli(
            "sql",
            "SELECT r.name AS name FROM Region r ORDER BY name NULLS FIRST",
        )
        assert code == 0
        assert "AFRICA" in output
        assert "row(s)" in output


class TestExperiments:
    def test_registry_listing(self):
        code, output = run_cli("experiments")
        assert code == 0
        for eid in ("E1", "E5", "E10"):
            assert eid + ":" in output
        assert "benchmarks/test_sec2_table.py" in output

    def test_registry_lookup(self):
        from repro.bench.experiments import EXPERIMENTS, experiment

        assert len(EXPERIMENTS) == 10
        assert experiment("E7").artifact.startswith("Fig. 18")
        import pytest as _pytest
        with _pytest.raises(KeyError):
            experiment("E99")

    def test_benches_exist(self):
        import pathlib

        from repro.bench.experiments import EXPERIMENTS

        root = pathlib.Path(__file__).parent.parent
        for entry in EXPERIMENTS:
            path = entry.bench.split("::")[0]
            assert (root / path).exists(), path


class TestVersion:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestTrace:
    def test_writes_chrome_trace_and_profile(self, tmp_path):
        import json

        target = tmp_path / "trace.json"
        code, output = run_cli("trace", "q1", "--out", str(target))
        assert code == 0
        events = json.loads(target.read_text())
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        for required in ("materialize", "sqlgen", "dispatch", "merge", "tag"):
            assert required in names
        assert any(n.startswith("stream:") for n in names)
        # The profile tree and the summary land on stdout.
        assert "materialize" in output
        assert "wrote Chrome trace" in output
        assert "stream(s), simulated" in output

    def test_default_query_and_out(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _ = run_cli("trace")
        assert code == 0
        assert (tmp_path / "trace.json").exists()

    def test_trace_with_metrics(self, tmp_path):
        import json

        code, output = run_cli(
            "trace", "q1", "--out", str(tmp_path / "t.json"), "--metrics"
        )
        assert code == 0
        snap = json.loads(output[output.index("{"):])
        assert snap["counters"]["streams.executed"] >= 1


class TestMetricsFlag:
    def test_materialize_metrics(self):
        import json

        code, output = run_cli(
            "materialize", "--strategy", "fully-partitioned", "--metrics"
        )
        assert code == 0
        snap = json.loads(output[output.index("{"):])
        assert snap["counters"]["dispatch.attempts"] >= 1
        assert "stream.query_ms" in snap["histograms"]

    def test_materialize_without_metrics_prints_no_json(self):
        _, output = run_cli("materialize", "--strategy", "fully-partitioned")
        assert '"counters"' not in output
