"""Tests for the DTD parser/validator (repro.xmlgen.dtd)."""

import pytest

from repro.common.errors import DtdError, ValidationError
from repro.xmlgen.dtd import Dtd, parse_dtd, validate_document
from repro.bench.queries import SUPPLIER_DTD


class TestParsing:
    def test_parse_supplier_dtd(self):
        dtd = parse_dtd(SUPPLIER_DTD)
        supplier = dtd.declaration("supplier")
        assert supplier.kind == "sequence"
        assert [(p.name, p.multiplicity) for p in supplier.particles] == [
            ("name", "1"), ("nation", "1"), ("region", "1"), ("part", "*"),
        ]
        assert dtd.declaration("name").kind == "pcdata"

    def test_empty_model(self):
        dtd = parse_dtd("<!ELEMENT hr EMPTY>")
        assert dtd.declaration("hr").kind == "empty"

    def test_mixed_model(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | b | i)*>")
        decl = dtd.declaration("p")
        assert decl.kind == "mixed"
        assert {particle.name for particle in decl.particles} == {"b", "i"}

    def test_multiplicities(self):
        dtd = parse_dtd("<!ELEMENT t (a?, b+, c*, d)>")
        mults = [p.multiplicity for p in dtd.declaration("t").particles]
        assert mults == ["?", "+", "*", "1"]

    def test_no_declarations(self):
        with pytest.raises(DtdError):
            parse_dtd("just text")

    def test_unsupported_particle(self):
        with pytest.raises(DtdError):
            parse_dtd("<!ELEMENT t ((a | b), c)>")

    def test_undeclared_element(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        with pytest.raises(ValidationError, match="not declared"):
            dtd.declaration("b")


SIMPLE_DTD = parse_dtd(
    """
    <!ELEMENT order (okey, customer?, item*)>
    <!ELEMENT okey (#PCDATA)>
    <!ELEMENT customer (#PCDATA)>
    <!ELEMENT item (#PCDATA)>
    <!ELEMENT hr EMPTY>
    """
)


class TestValidation:
    def test_valid_document(self):
        xml = "<order><okey>1</okey><customer>c</customer><item>x</item></order>"
        assert validate_document(xml, SIMPLE_DTD) == 4

    def test_optional_child_missing_ok(self):
        xml = "<order><okey>1</okey></order>"
        validate_document(xml, SIMPLE_DTD)

    def test_required_child_missing(self):
        with pytest.raises(ValidationError, match="okey"):
            validate_document("<order><customer>c</customer></order>", SIMPLE_DTD)

    def test_repeated_single_child(self):
        xml = "<order><okey>1</okey><okey>2</okey></order>"
        with pytest.raises(ValidationError):
            validate_document(xml, SIMPLE_DTD)

    def test_unexpected_child(self):
        xml = "<order><okey>1</okey><hr></hr></order>"
        with pytest.raises(ValidationError, match="unexpected"):
            validate_document(xml, SIMPLE_DTD)

    def test_wrong_order(self):
        xml = "<order><customer>c</customer><okey>1</okey></order>"
        with pytest.raises(ValidationError):
            validate_document(xml, SIMPLE_DTD)

    def test_text_in_element_only_content(self):
        xml = "<order>text<okey>1</okey></order>"
        with pytest.raises(ValidationError, match="element-only"):
            validate_document(xml, SIMPLE_DTD)

    def test_pcdata_with_children(self):
        xml = "<order><okey><hr></hr></okey></order>"
        with pytest.raises(ValidationError, match="character data"):
            validate_document(xml, SIMPLE_DTD)

    def test_empty_must_be_empty(self):
        dtd = parse_dtd("<!ELEMENT hr EMPTY><!ELEMENT d (hr)>")
        with pytest.raises(ValidationError, match="EMPTY"):
            validate_document("<d><hr>x</hr></d>", dtd)

    def test_mismatched_tags(self):
        with pytest.raises(ValidationError, match="mismatched"):
            validate_document("<order></okey>", SIMPLE_DTD)

    def test_unclosed_element(self):
        with pytest.raises(ValidationError, match="unclosed"):
            validate_document("<order><okey>1</okey>", SIMPLE_DTD)

    def test_wrapper_root_skipped(self):
        xml = "<view><order><okey>1</okey></order></view>"
        assert validate_document(xml, SIMPLE_DTD, root="view") == 3

    def test_plus_multiplicity(self):
        dtd = parse_dtd("<!ELEMENT t (a+)><!ELEMENT a (#PCDATA)>")
        validate_document("<t><a>1</a><a>2</a></t>", dtd)
        with pytest.raises(ValidationError):
            validate_document("<t></t>", dtd)

    def test_mixed_content_validates(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | b)*><!ELEMENT b (#PCDATA)>")
        validate_document("<p>text<b>bold</b>more</p>", dtd)
        with pytest.raises(ValidationError):
            validate_document("<p><i>x</i></p>", dtd)
