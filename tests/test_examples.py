"""Smoke tests: every script in examples/ must run to completion.

The examples double as executable documentation; these tests keep them
from drifting as the API grows.  Each is imported as its own module and
its ``main()`` run with stdout captured (the examples print their
results) and the working directory pointed at a tmp dir so an example
that grows a file output later cannot litter the repo.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert EXAMPLE_SCRIPTS, f"no examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    module = _load(script)
    assert hasattr(module, "main"), f"{script.name} has no main()"
    module.main()
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script.name} printed nothing"
