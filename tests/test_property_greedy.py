"""Property-based tests of the greedy planner over random views.

For any (schema-valid) random RXL view:

* genPlan terminates and returns disjoint mandatory/optional edge sets
  drawn from the view tree's edges,
* every partition in the family is executable and produces the reference
  document,
* the recommended plan never keeps a combination of edges whose estimated
  relative cost exceeded t2 — in particular it avoids the nested
  outer-join blowups the cost oracle prices in.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.greedy import GreedyPlanner
from repro.core.labeling import label_view_tree
from repro.core.partition import unified_partition
from repro.core.sqlgen import SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.relational.estimator import CostEstimator
from repro.relational.engine import CostModel
from repro.rxl.parser import parse_rxl
from repro.xmlgen.tagger import tag_streams

from tests.test_property_rxl import rxl_views


def _materialize(tree, db, conn, partition, reduce):
    generator = SqlGenerator(tree, db.schema, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    streams = [conn.execute(s.plan) for s in specs]
    xml, _ = tag_streams(tree, specs, streams, root_tag="doc")
    return xml


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_greedy_family_is_valid_and_correct(tiny_db, tiny_conn, data):
    rxl = data.draw(rxl_views())
    tree = build_view_tree(parse_rxl(rxl), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)
    estimator = CostEstimator(tiny_db, CostModel())

    planner = GreedyPlanner(tree, tiny_db.schema, estimator, reduce=True)
    plan = planner.plan()

    edge_ids = {child.index for _, child in tree.edges}
    assert plan.mandatory <= edge_ids
    assert plan.optional <= edge_ids
    assert not (plan.mandatory & plan.optional)
    assert plan.oracle_requests <= len(edge_ids) ** 2 + len(tree.nodes)

    reference = _materialize(
        tree, tiny_db, tiny_conn, unified_partition(tree), False
    )
    # Check a couple of family members (the family can be large).
    family = plan.partitions()
    picks = {0, len(family) - 1}
    if len(family) > 2:
        picks.add(data.draw(st.integers(0, len(family) - 1)))
    for i in sorted(picks):
        assert _materialize(tree, tiny_db, tiny_conn, family[i], True) == (
            reference
        )


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_xmlql_on_random_views(tiny_db, tiny_conn, data):
    """Any bound variable of a random view is queryable virtually, and the
    answers match the materialized document's text content."""
    import re

    from repro.xmlql.executor import execute_xmlql

    rxl = data.draw(rxl_views())
    tree = build_view_tree(parse_rxl(rxl), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)

    # Pick a leaf text node and query for its values through its parent.
    text_nodes = [
        n for n in tree.nodes
        if n.contents and not n.children and n.parent is not None
    ]
    node = data.draw(st.sampled_from(text_nodes))
    # Tags are unique in generated views, so the pattern is unambiguous.
    pattern = f"where <{node.tag}>$x</{node.tag}> construct <r>$x</r>"
    result = execute_xmlql(pattern, tree, tiny_conn)

    reference = _materialize(
        tree, tiny_db, tiny_conn, unified_partition(tree), False
    )
    materialized = set(
        re.findall(rf"<{node.tag}>([^<]*)</{node.tag}>", reference)
    )
    virtual = set(re.findall(r"<r>([^<]*)</r>", result.xml))
    # The virtual query returns DISTINCT bindings; the document may repeat
    # them, so compare as sets of rendered values.
    assert virtual == {v for v in materialized if v}
