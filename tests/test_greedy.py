"""Tests for the greedy plan-generation algorithm (repro.core.greedy)."""

import pytest

from repro.core.greedy import GreedyParameters, GreedyPlan, GreedyPlanner
from repro.core.partition import Partition
from repro.core.sqlgen import PlanStyle


@pytest.fixture
def planner(q1_tree, tiny_db, tiny_estimator):
    return GreedyPlanner(q1_tree, tiny_db.schema, tiny_estimator, reduce=True)


class TestGreedyPlan:
    def test_partitions_family(self):
        plan = GreedyPlan(
            mandatory=frozenset({(1, 1)}),
            optional=frozenset({(1, 2), (1, 3)}),
        )
        family = plan.partitions()
        assert len(family) == 4
        assert Partition([(1, 1)]) in family
        assert Partition([(1, 1), (1, 2), (1, 3)]) in family
        # every member includes the mandatory edge
        assert all((1, 1) in p.kept for p in family)

    def test_recommended_keeps_everything(self):
        plan = GreedyPlan(
            mandatory=frozenset({(1, 1)}), optional=frozenset({(1, 2)})
        )
        assert plan.recommended() == Partition([(1, 1), (1, 2)])

    def test_describe(self):
        plan = GreedyPlan(
            mandatory=frozenset({(1, 4, 2)}), optional=frozenset({(1, 1)})
        )
        described = plan.describe()
        assert described["mandatory"] == ["S1.4.2"]
        assert described["optional"] == ["S1.1"]
        assert described["family_size"] == 2


class TestPlanner:
    def test_produces_valid_edges(self, planner, q1_tree):
        plan = planner.plan()
        edge_ids = {child.index for _, child in q1_tree.edges}
        assert plan.mandatory <= edge_ids
        assert plan.optional <= edge_ids
        assert not (plan.mandatory & plan.optional)

    def test_oracle_requests_far_below_worst_case(self, planner):
        """Sec. 5.1: component-query memoization keeps oracle requests far
        below |Edges|^2 = 81."""
        plan = planner.plan()
        assert 0 < plan.oracle_requests < 81
        assert plan.oracle_cache_hits > 0

    def test_thresholds_control_family(self, q1_tree, tiny_db, tiny_estimator):
        planner = GreedyPlanner(q1_tree, tiny_db.schema, tiny_estimator, reduce=True)
        everything_mandatory = planner.plan(
            GreedyParameters(t1=float("inf"), t2=float("inf"))
        )
        assert len(everything_mandatory.mandatory) == 9
        nothing = GreedyPlanner(
            q1_tree, tiny_db.schema, tiny_estimator, reduce=True
        ).plan(GreedyParameters(t1=float("-inf"), t2=float("-inf")))
        assert not nothing.mandatory and not nothing.optional

    def test_deterministic(self, q1_tree, tiny_db, tiny_estimator):
        a = GreedyPlanner(q1_tree, tiny_db.schema, tiny_estimator, reduce=True).plan()
        b = GreedyPlanner(q1_tree, tiny_db.schema, tiny_estimator, reduce=True).plan()
        assert a.mandatory == b.mandatory
        assert a.optional == b.optional

    def test_styles_supported(self, q1_tree, tiny_db, tiny_estimator):
        plan = GreedyPlanner(
            q1_tree, tiny_db.schema, tiny_estimator,
            style=PlanStyle.OUTER_UNION, reduce=False,
        ).plan()
        assert plan.oracle_requests > 0

    def test_chain_edge_priced_out(self, q1_tree, tiny_db, tiny_estimator):
        """Without reduction, keeping the whole part-order chain triggers
        the re-evaluation penalty; the greedy must not select a family that
        contains it."""
        plan = GreedyPlanner(
            q1_tree, tiny_db.schema, tiny_estimator, reduce=False
        ).plan()
        kept = plan.mandatory | plan.optional
        has_chain = (
            {(1, 4), (1, 4, 2)} <= kept
            and kept & {(1, 4, 2, 1), (1, 4, 2, 2), (1, 4, 2, 3)}
        )
        assert not has_chain
