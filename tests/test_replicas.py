"""Replica-aware resilient dispatch (repro.relational.replicas): pools,
health-checked routing, failover, hedged requests, and admission control.

The load-bearing invariants:

* **byte identity** — with any replica count >= 2, any hedge trigger,
  failover traffic, and injected faults, the materialized document and
  the paper's simulated ``query_ms``/``transfer_ms`` figures are
  identical to the single-replica fault-free run, sequentially and with
  concurrent dispatch (the acceptance property, hypothesis-tested);
* **failover completes the query** — a pool with one permanently-down
  replica serves every stream via the healthy ones, with zero
  user-visible errors;
* **hedging pays off deterministically** — against a slow replica the
  hedged elapsed makespan is strictly lower, and hedge losers never
  double-charge ``server_ms``;
* **admission sheds deterministically** — queue overflow and deadline
  shedding raise a typed :class:`~repro.common.errors.OverloadError`
  listing the shed streams, identically under sequential and threaded
  dispatch, and light load sheds nothing.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.common.errors import (
    ExecutionError,
    OverloadError,
    TransientConnectionError,
)
from repro.core.options import ExecutionOptions
from repro.core.partition import fully_partitioned, unified_partition
from repro.core.silkroute import SilkRoute
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.relational.replicas import (
    AdmissionController,
    AdmissionPolicy,
    ReplicaPool,
    ReplicaSet,
    replica_fault_policy,
    resolve_admission,
    resolve_pool,
)


def fresh_view(tiny_db, tiny_estimator, **silk_kwargs):
    connection = Connection(tiny_db, CostModel())
    silk = SilkRoute(connection, estimator=tiny_estimator, **silk_kwargs)
    return connection, silk.define_view(QUERY_1)


@pytest.fixture(scope="module")
def baseline(request):
    """The single-replica fault-free run every identity test compares to."""
    tiny_db = request.getfixturevalue("tiny_db")
    tiny_estimator = request.getfixturevalue("tiny_estimator")
    _, view = fresh_view(tiny_db, tiny_estimator)
    return view.materialize("fully-partitioned")


# ---------------------------------------------------------------------------
# Construction and normalization


class TestReplicaSet:
    def test_same_database_required(self, tiny_db, tiny_estimator):
        from repro.tpch.generator import TpchGenerator, TpchScale

        other_db = TpchGenerator(
            scale=TpchScale(suppliers=2, parts=2, customers=2, orders=2),
            seed=1,
        ).generate()
        with pytest.raises(ValueError, match="different Database"):
            ReplicaSet([
                Connection(tiny_db, CostModel()),
                Connection(other_db, CostModel()),
            ])

    def test_needs_at_least_one_connection(self):
        with pytest.raises(ValueError):
            ReplicaSet([])

    def test_from_connection_replica_zero_is_the_connection(self, tiny_db):
        connection = Connection(tiny_db, CostModel())
        rset = ReplicaSet.from_connection(connection, 3)
        assert len(rset) == 3
        assert rset.connections[0] is connection
        assert all(c.database is tiny_db for c in rset)

    def test_from_connection_rejects_bad_counts(self, tiny_db):
        connection = Connection(tiny_db, CostModel())
        with pytest.raises(ValueError):
            ReplicaSet.from_connection(connection, 0)
        with pytest.raises(ValueError, match="faults has"):
            ReplicaSet.from_connection(
                connection, 3, faults=[FaultPolicy(), FaultPolicy()]
            )

    def test_seed_derivation_is_per_replica(self):
        base = FaultPolicy(seed=7, error_rate=0.5)
        assert replica_fault_policy(base, 0) is base
        one = replica_fault_policy(base, 1)
        two = replica_fault_policy(base, 2)
        assert one.seed == "7|r1" and two.seed == "7|r2"
        assert one.error_rate == base.error_rate
        assert replica_fault_policy(None, 2) is None
        # Derived replicas draw independently but reproducibly.
        draws_one = [one.decide("S1", "fp", a).fail for a in range(1, 20)]
        draws_two = [two.decide("S1", "fp", a).fail for a in range(1, 20)]
        assert draws_one != draws_two
        assert draws_one == [
            replica_fault_policy(base, 1).decide("S1", "fp", a).fail
            for a in range(1, 20)
        ]

    def test_explicit_fault_plan_installs_per_replica(self, tiny_db):
        connection = Connection(tiny_db, CostModel())
        down = FaultPolicy(seed=1, error_rate=1.0)
        ok = FaultPolicy(seed=2, error_rate=0.0)
        rset = ReplicaSet.from_connection(connection, 2, faults=[down, ok])
        assert rset.connections[0].faults is down
        assert rset.connections[1].faults is ok


class TestResolvers:
    def test_resolve_pool_contract(self, tiny_db):
        connection = Connection(tiny_db, CostModel())
        assert resolve_pool(None, connection) is None
        assert resolve_pool(1, connection) is None
        pool = resolve_pool(3, connection)
        assert isinstance(pool, ReplicaPool) and len(pool) == 3
        rset = ReplicaSet.from_connection(Connection(tiny_db, CostModel()), 2)
        wrapped = resolve_pool(rset, connection)
        assert isinstance(wrapped, ReplicaPool) and len(wrapped) == 2
        assert resolve_pool(wrapped, connection) is wrapped

    def test_resolve_admission_contract(self):
        assert resolve_admission(None) is None
        controller = resolve_admission(4)
        assert isinstance(controller, AdmissionController)
        assert controller.policy.max_concurrent_streams == 4
        policy = AdmissionPolicy(max_concurrent_streams=2, deadline_ms=10.0)
        assert resolve_admission(policy).policy is policy
        assert resolve_admission(controller) is controller

    def test_clamp_workers(self):
        controller = resolve_admission(2)
        assert controller.clamp_workers(8) == 2
        assert controller.clamp_workers(None) == 1
        assert controller.clamp_workers(1) == 1
        unlimited = AdmissionController(AdmissionPolicy(deadline_ms=5.0))
        assert unlimited.clamp_workers(8) == 8


# ---------------------------------------------------------------------------
# Health, epochs, and routing


class TestPoolHealth:
    def _pool(self, tiny_db, n=3):
        connection = Connection(tiny_db, CostModel())
        return ReplicaPool(ReplicaSet.from_connection(connection, n))

    def test_epoch_pick_and_default_ranking(self, tiny_db):
        pool = self._pool(tiny_db)
        epoch = pool.begin_epoch()
        assert epoch.ranking == (0, 1, 2)
        assert epoch.pick() == 0
        assert epoch.pick(exclude={0}) == 1
        assert epoch.pick(exclude={0, 1, 2}) is None

    def test_ranking_prefers_fewer_failures_then_lower_latency(self,
                                                               tiny_db):
        pool = self._pool(tiny_db, n=2)
        # A slower replica ranks behind a faster one...
        epoch = pool.begin_epoch()
        epoch.observe("S1", 1, 0, True, 100.0)
        epoch.observe("S1", 1, 1, True, 10.0)
        pool.finish_epoch(epoch)
        assert pool.begin_epoch().ranking == (1, 0)
        # ...but a consecutive failure outranks any latency difference.
        epoch = pool.begin_epoch()
        epoch.observe("S2", 1, 1, False, 0.0)
        pool.finish_epoch(epoch)
        assert pool.begin_epoch().ranking == (0, 1)

    def test_observations_fold_in_deterministic_order(self, tiny_db):
        # The same observations in two arrival orders leave identical
        # health state — completion order never leaks into routing.
        obs = [("S1", 1, 0, True, 50.0), ("S2", 1, 0, True, 10.0),
               ("S3", 1, 1, False, 0.0), ("S3", 2, 0, True, 30.0)]
        pools = []
        for ordering in (obs, list(reversed(obs))):
            pool = self._pool(tiny_db)
            epoch = pool.begin_epoch()
            for entry in ordering:
                epoch.observe(*entry)
            pool.finish_epoch(epoch)
            pools.append(pool)
        first, second = pools
        assert [h.ewma_latency_ms for h in first.health] == \
               [h.ewma_latency_ms for h in second.health]
        assert [h.consecutive_failures for h in first.health] == \
               [h.consecutive_failures for h in second.health]

    def test_breaker_denied_replica_ranks_last(self, tiny_db):
        pool = self._pool(tiny_db)
        for _ in range(pool.breaker.threshold):
            pool.breaker.record_failure(0)
        ranking = pool.begin_epoch().ranking
        assert ranking[-1] == 0
        assert ranking[:2] == (1, 2)


# ---------------------------------------------------------------------------
# Byte identity — the acceptance property


class TestByteIdentity:
    def test_replicated_faulted_run_matches_baseline(
            self, tiny_db, tiny_estimator, baseline):
        _, view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned", replicas=3, hedge_ms=5.0,
            faults=FaultPolicy(seed=7, error_rate=0.3),
            retry=RetryPolicy(max_attempts=5),
        )
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms
        assert result.report.transfer_ms == baseline.report.transfer_ms
        assert result.report.faults_injected > 0

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        replicas=st.integers(min_value=2, max_value=4),
        hedge_ms=st.sampled_from([None, 1.0, 5.0, 50.0]),
        error_rate=st.sampled_from([0.0, 0.2, 0.5]),
        seed=st.integers(min_value=0, max_value=40),
        workers=st.sampled_from([None, 4]),
    )
    def test_acceptance_property(self, tiny_db, tiny_estimator, baseline,
                                 replicas, hedge_ms, error_rate, seed,
                                 workers):
        """Any (replicas >= 2, hedge_ms, faults, workers) combination that
        completes is indistinguishable from the single-replica fault-free
        run.  At error_rate=0.5 a stream can legitimately exhaust its 6
        attempts (~1/64 per stream) — that terminal outcome is the retry
        machinery's own contract, not the identity property, so such draws
        are rejected rather than failed."""
        _, view = fresh_view(tiny_db, tiny_estimator)
        try:
            result = view.materialize(
                "fully-partitioned", replicas=replicas, hedge_ms=hedge_ms,
                workers=workers,
                faults=FaultPolicy(seed=seed, error_rate=error_rate),
                retry=RetryPolicy(max_attempts=6),
            )
        except TransientConnectionError:
            assume(False)
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms
        assert result.report.transfer_ms == baseline.report.transfer_ms

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=30),
           hedge_ms=st.sampled_from([None, 2.0, 20.0]))
    def test_sequential_and_concurrent_agree_exactly(
            self, tiny_db, tiny_estimator, seed, hedge_ms):
        """Same seed, same pool shape: workers=1 and workers=4 report the
        same attempts, faults, failovers, hedges, and elapsed charges."""
        reports = []
        for workers in (None, 4):
            _, view = fresh_view(tiny_db, tiny_estimator)
            result = view.materialize(
                "fully-partitioned", replicas=3, hedge_ms=hedge_ms,
                workers=workers,
                faults=FaultPolicy(seed=seed, error_rate=0.35),
                retry=RetryPolicy(max_attempts=6),
            )
            reports.append(result.report)
        sequential, concurrent = reports
        assert concurrent.attempts == sequential.attempts
        assert concurrent.faults_injected == sequential.faults_injected
        assert concurrent.failovers == sequential.failovers
        assert concurrent.hedges == sequential.hedges
        assert concurrent.hedge_wins == sequential.hedge_wins
        assert concurrent.backoff_ms == sequential.backoff_ms
        assert concurrent.hedge_wait_ms == sequential.hedge_wait_ms
        per_stream = [
            [(s.label, s.replica, s.attempts, s.failovers, s.hedges)
             for s in r.streams]
            for r in reports
        ]
        assert per_stream[0] == per_stream[1]

    def test_single_replica_pool_matches_plain_connection(
            self, tiny_db, tiny_estimator, baseline):
        faults = FaultPolicy(seed=9, error_rate=0.4)
        retry = RetryPolicy(max_attempts=5)
        _, plain_view = fresh_view(tiny_db, tiny_estimator)
        plain = plain_view.materialize(
            "fully-partitioned", faults=faults, retry=retry,
        )
        connection, pooled_view = fresh_view(tiny_db, tiny_estimator)
        pool = ReplicaPool(ReplicaSet([connection]))
        pooled = pooled_view.materialize(
            "fully-partitioned", replicas=pool, faults=faults, retry=retry,
        )
        assert pooled.xml == plain.xml == baseline.xml
        assert pooled.report.attempts == plain.report.attempts
        assert pooled.report.faults_injected == plain.report.faults_injected
        assert pooled.report.backoff_ms == plain.report.backoff_ms
        assert pooled.report.fault_latency_ms == plain.report.fault_latency_ms
        assert pooled.report.failovers == 0 and pooled.report.hedges == 0


# ---------------------------------------------------------------------------
# Failover


class TestFailover:
    def test_hard_down_replica_is_routed_around(
            self, tiny_db, tiny_estimator, baseline):
        connection, view = fresh_view(tiny_db, tiny_estimator)
        down = FaultPolicy(seed=1, error_rate=1.0)
        ok = FaultPolicy(seed=2, error_rate=0.0)
        pool = ReplicaPool(
            ReplicaSet.from_connection(connection, 3, faults=[down, ok, ok])
        )
        result = view.materialize(
            "fully-partitioned", replicas=pool,
            retry=RetryPolicy(max_attempts=4),
        )
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms
        report = result.report
        assert report.failovers >= report.n_streams
        assert all(s.replica in (1, 2) for s in report.streams)
        # The pool learned: replica 0 accumulated only failures.
        assert pool.health[0].failures > 0 and pool.health[0].successes == 0

    def test_failover_needs_a_retry_budget(self, tiny_db, tiny_estimator):
        from repro.common.errors import TransientConnectionError

        connection, view = fresh_view(tiny_db, tiny_estimator)
        pool = ReplicaPool(ReplicaSet.from_connection(
            connection, 2,
            faults=[FaultPolicy(seed=1, error_rate=1.0),
                    FaultPolicy(seed=2, error_rate=0.0)],
        ))
        # Without a retry policy the first fault is terminal, exactly as
        # on a single connection — and "fully-partitioned" degrades
        # single-node streams by propagating the error.
        with pytest.raises(TransientConnectionError):
            view.materialize("fully-partitioned", replicas=pool)

    def test_wraparound_charges_backoff(self, tiny_db, tiny_estimator,
                                        baseline):
        connection, view = fresh_view(tiny_db, tiny_estimator)
        # S1 fails its first two attempts wherever they land, so with two
        # replicas the round wraps (both tried) and the retry policy's
        # backoff is charged before the third attempt succeeds.
        down_everywhere = [
            FaultPolicy(seed=i, fail_streams={"S1": 2}) for i in range(2)
        ]
        pool = ReplicaPool(ReplicaSet.from_connection(
            connection, 2, faults=down_everywhere,
        ))
        result = view.materialize(
            "fully-partitioned", replicas=pool,
            retry=RetryPolicy(max_attempts=6, base_ms=100.0,
                              multiplier=2.0, jitter=0.0),
        )
        assert result.xml == baseline.xml
        [s1] = [s for s in result.report.streams if s.label == "S1"]
        assert s1.attempts == 3 and s1.failovers == 2
        # The wrap charged exactly the second-failure backoff (100 * 2).
        assert s1.backoff_ms == 200.0
        assert result.report.backoff_ms == 200.0


# ---------------------------------------------------------------------------
# Hedging


class TestHedging:
    def _slow_fast_pool(self, tiny_db, tiny_estimator, latency_ms=500.0):
        connection, view = fresh_view(tiny_db, tiny_estimator)
        slow = FaultPolicy(seed=3, error_rate=0.0, latency_ms=latency_ms)
        fast = FaultPolicy(seed=4, error_rate=0.0)
        pool = ReplicaPool(
            ReplicaSet.from_connection(connection, 2, faults=[slow, fast])
        )
        return view, pool

    def test_hedge_wins_against_slow_replica(self, tiny_db, tiny_estimator,
                                             baseline):
        view, pool = self._slow_fast_pool(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned", replicas=pool, hedge_ms=10.0,
            retry=RetryPolicy(max_attempts=2),
        )
        report = result.report
        assert result.xml == baseline.xml
        assert report.query_ms == baseline.report.query_ms
        assert report.hedges > 0 and report.hedge_wins > 0
        # A winning hedge charges the trigger wait, not the slow attempt.
        assert report.hedge_wait_ms == 10.0 * report.hedge_wins
        assert all(
            s.replica == 1 for s in report.streams if s.hedge_wins
        )

    def test_hedging_cuts_the_elapsed_makespan(self, tiny_db,
                                               tiny_estimator):
        view, pool = self._slow_fast_pool(tiny_db, tiny_estimator)
        hedged = view.materialize(
            "fully-partitioned", replicas=pool, hedge_ms=10.0,
            retry=RetryPolicy(max_attempts=2),
        )
        view, pool = self._slow_fast_pool(tiny_db, tiny_estimator)
        unhedged = view.materialize(
            "fully-partitioned", replicas=pool,
            retry=RetryPolicy(max_attempts=2),
        )
        assert hedged.xml == unhedged.xml
        assert (hedged.report.elapsed_total_ms
                < unhedged.report.elapsed_total_ms)

    def test_losing_hedge_charges_nothing(self, tiny_db, tiny_estimator,
                                          baseline):
        # With a huge trigger relative to the injected latency spread, the
        # backup can never beat hedge_ms + its own cost: hedges fire but
        # never win, and the report charges no hedge wait.
        connection, view = fresh_view(tiny_db, tiny_estimator)
        pool = ReplicaPool(ReplicaSet.from_connection(
            connection, 2,
            faults=[FaultPolicy(seed=5, latency_ms=10.0),
                    FaultPolicy(seed=6, latency_ms=10.0)],
        ))
        result = view.materialize(
            "fully-partitioned", replicas=pool, hedge_ms=0.5,
            retry=RetryPolicy(max_attempts=2),
        )
        report = result.report
        assert result.xml == baseline.xml
        assert report.hedges > 0
        losers = [s for s in report.streams if s.hedges and not s.hedge_wins]
        assert losers
        assert all(s.hedge_wait_ms == 0.0 for s in losers)
        # server_ms is never double-counted, win or lose.
        assert report.query_ms == baseline.report.query_ms


# ---------------------------------------------------------------------------
# Admission control


class TestAdmission:
    def test_queue_overflow_is_refused_up_front(self, tiny_db,
                                                tiny_estimator):
        _, view = fresh_view(tiny_db, tiny_estimator)
        controller = AdmissionController(AdmissionPolicy(
            max_concurrent_streams=2, max_queued_streams=3,
        ))
        with pytest.raises(OverloadError) as info:
            view.materialize("fully-partitioned", max_concurrent=controller)
        exc = info.value
        assert isinstance(exc, ExecutionError)
        assert exc.reason == "queue"
        assert len(exc.shed) == 10
        assert controller.shed == 10 and controller.admitted == 0
        # The partial report shows nothing ran.
        assert exc.report is not None and exc.report.n_streams == 0

    def test_deadline_sheds_late_streams(self, tiny_db, tiny_estimator):
        _, view = fresh_view(tiny_db, tiny_estimator)
        controller = AdmissionController(AdmissionPolicy(
            max_concurrent_streams=2, deadline_ms=50.0,
        ))
        with pytest.raises(OverloadError) as info:
            view.materialize("fully-partitioned", max_concurrent=controller)
        exc = info.value
        assert exc.reason == "deadline"
        assert 0 < len(exc.shed) < 10
        report = exc.report
        assert report.n_streams == 10 - len(exc.shed)
        assert report.shed_streams == exc.shed

    def test_deadline_shedding_is_deterministic(self, tiny_db,
                                                tiny_estimator):
        def shed_with(workers):
            _, view = fresh_view(tiny_db, tiny_estimator)
            with pytest.raises(OverloadError) as info:
                view.materialize(
                    "fully-partitioned", workers=workers,
                    max_concurrent=AdmissionController(AdmissionPolicy(
                        max_concurrent_streams=2, deadline_ms=50.0,
                    )),
                )
            return info.value.shed

        # The shed set is a function of the simulated schedule, not of
        # thread timing: identical across repeated threaded runs.
        assert shed_with(4) == shed_with(4)
        assert shed_with(None) == shed_with(None)
        # A wider (clamped to 2) schedule starts streams earlier than the
        # sequential one, so it never sheds more.
        assert len(shed_with(4)) <= len(shed_with(None))

    def test_light_load_sheds_nothing(self, tiny_db, tiny_estimator,
                                      baseline):
        _, view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned", max_concurrent=4, workers=8,
        )
        assert result.xml == baseline.xml
        assert result.report.shed_streams == ()

    def test_workers_clamped_to_admission_limit(self, tiny_db,
                                                tiny_estimator, baseline):
        # The elapsed makespan reflects the clamped width, not the
        # requested one.
        _, view = fresh_view(tiny_db, tiny_estimator)
        wide = view.materialize("fully-partitioned", workers=8)
        _, view = fresh_view(tiny_db, tiny_estimator)
        clamped = view.materialize(
            "fully-partitioned", workers=8, max_concurrent=1,
        )
        assert clamped.xml == wide.xml == baseline.xml
        assert clamped.report.elapsed_total_ms > wide.report.elapsed_total_ms

    def test_options_bundle_carries_the_knobs(self, tiny_db, tiny_estimator,
                                              baseline):
        _, view = fresh_view(tiny_db, tiny_estimator)
        opts = ExecutionOptions(
            replicas=2, hedge_ms=25.0, max_concurrent=4,
            faults=FaultPolicy(seed=11, error_rate=0.2),
            retry=RetryPolicy(max_attempts=4),
        )
        result = view.materialize("fully-partitioned", options=opts)
        assert result.xml == baseline.xml


# ---------------------------------------------------------------------------
# Sweep integration


class TestSweepReplicas:
    def test_sweep_with_replicas_times_identically(self, q1_tree, tiny_db):
        partitions = [unified_partition(q1_tree),
                      fully_partitioned(q1_tree)]
        clean = sweep_partitions(
            q1_tree, tiny_db.schema, Connection(tiny_db, CostModel()),
            partitions=partitions, cache=False,
        )
        replicated = sweep_partitions(
            q1_tree, tiny_db.schema, Connection(tiny_db, CostModel()),
            partitions=partitions, cache=False,
            replicas=3, hedge_ms=5.0,
            faults=FaultPolicy(seed=5, error_rate=0.3),
            retry=RetryPolicy(max_attempts=5),
        )
        assert [t.query_ms for t in replicated.timings] == \
               [t.query_ms for t in clean.timings]
        assert [t.transfer_ms for t in replicated.timings] == \
               [t.transfer_ms for t in clean.timings]

    def test_sweep_sheds_over_capacity_plans(self, q1_tree, tiny_db):
        result = sweep_partitions(
            q1_tree, tiny_db.schema, Connection(tiny_db, CostModel()),
            partitions=[unified_partition(q1_tree),
                        fully_partitioned(q1_tree)],
            cache=False,
            max_concurrent=AdmissionPolicy(
                max_concurrent_streams=2, max_queued_streams=3,
            ),
        )
        # The unified plan (1 stream) fits; the 10-stream plan is shed.
        assert len(result.completed()) == 1
        assert len(result.shed()) == 1
        timing = result.shed()[0]
        assert timing.shed and timing.total_ms is None


# ---------------------------------------------------------------------------
# Exports


class TestExports:
    def test_top_level_reexports(self):
        import repro

        for name in ("OverloadError", "ReplicaSet", "ReplicaPool",
                     "AdmissionPolicy", "AdmissionController"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
        assert issubclass(repro.OverloadError, repro.ExecutionError)
        assert issubclass(repro.OverloadError, repro.ReproError)
