"""Tests for the TPC-H substrate (repro.tpch)."""


from repro.relational.engine import CONFIG_A_COST_MODEL, CONFIG_B_COST_MODEL
from repro.tpch.configs import CONFIG_A, CONFIG_B, build_configuration
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.tpch.schema import TPCH_TABLE_NAMES, tpch_schema


class TestSchema:
    def test_tables_present(self):
        schema = tpch_schema()
        assert set(schema.table_names) == set(TPCH_TABLE_NAMES)

    def test_paper_keys(self):
        """Fig. 1's literal key declarations."""
        schema = tpch_schema()
        assert schema.table("PartSupp").key == ("partkey",)
        assert schema.table("LineItem").key == ("orderkey",)
        assert schema.table("Supplier").key == ("suppkey",)

    def test_name_candidate_keys(self):
        schema = tpch_schema()
        for table in ("Region", "Nation", "Supplier", "Part", "Customer"):
            assert ("name",) in schema.table(table).unique_sets

    def test_foreign_keys(self):
        schema = tpch_schema()
        from_lineitem = schema.foreign_keys_from("LineItem")
        targets = {fk.ref_table for fk in from_lineitem}
        assert targets == {"Orders", "Part", "Supplier", "PartSupp"}


class TestGenerator:
    def test_deterministic(self):
        scale = TpchScale(suppliers=5, parts=10, customers=6, orders=12)
        a = TpchGenerator(scale=scale, seed=7).generate()
        b = TpchGenerator(scale=scale, seed=7).generate()
        for name in TPCH_TABLE_NAMES:
            assert a.table(name).rows == b.table(name).rows

    def test_seed_changes_data(self):
        scale = TpchScale(suppliers=5, parts=10, customers=6, orders=12)
        a = TpchGenerator(scale=scale, seed=7).generate()
        b = TpchGenerator(scale=scale, seed=8).generate()
        assert a.table("Orders").rows != b.table("Orders").rows

    def test_cardinalities(self, tiny_db):
        assert len(tiny_db.table("Supplier")) == 8
        assert len(tiny_db.table("Part")) == 16
        assert len(tiny_db.table("PartSupp")) == 16  # one supplier per part
        assert len(tiny_db.table("LineItem")) == 40  # one line per order
        assert len(tiny_db.table("Orders")) == 40

    def test_foreign_keys_hold(self, tiny_db):
        assert tiny_db.check_foreign_keys() > 0

    def test_some_suppliers_without_parts(self, tiny_db):
        stocked = {r[1] for r in tiny_db.table("PartSupp")}
        all_suppliers = {r[0] for r in tiny_db.table("Supplier")}
        assert stocked < all_suppliers

    def test_some_parts_without_orders(self, tiny_db):
        ordered = {r[1] for r in tiny_db.table("LineItem")}
        all_parts = {r[0] for r in tiny_db.table("Part")}
        assert ordered < all_parts

    def test_lineitem_supplier_consistent_with_partsupp(self, tiny_db):
        supplier_of = {r[0]: r[1] for r in tiny_db.table("PartSupp")}
        for row in tiny_db.table("LineItem"):
            assert supplier_of[row[1]] == row[2]

    def test_stats_precomputed(self, tiny_db):
        assert tiny_db.stats("Supplier").row_count == 8

    def test_scaled(self):
        base = TpchScale()
        scaled = base.scaled(2.0)
        assert scaled.suppliers == 2 * base.suppliers
        assert scaled.regions == base.regions  # fixed tables don't scale
        assert scaled.nations == base.nations

    def test_scaled_minimums(self):
        tiny = TpchScale().scaled(0.0001)
        assert tiny.suppliers >= 2


class TestConfigs:
    def test_config_b_larger(self):
        assert CONFIG_B.scale.orders == 25 * CONFIG_A.scale.orders

    def test_config_a_server_slower(self):
        assert CONFIG_A.cost_model.speed > CONFIG_B.cost_model.speed
        assert CONFIG_A.cost_model is CONFIG_A_COST_MODEL
        assert CONFIG_B.cost_model is CONFIG_B_COST_MODEL

    def test_subquery_budget_is_five_minutes(self):
        assert CONFIG_A.subquery_budget_ms == 300_000.0

    def test_build_configuration(self):
        scale = TpchScale(suppliers=4, parts=8, customers=4, orders=8)
        from dataclasses import replace
        config = replace(CONFIG_A, scale=scale)
        db, conn, est = build_configuration(config)
        assert db is conn.database
        assert est.database is db
        assert conn.engine.cost_model is config.cost_model
