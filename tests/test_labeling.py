"""Tests for edge multiplicity labeling (repro.core.labeling)."""


from repro.core.labeling import body_fds, edge_label, label_view_tree
from repro.core.viewtree import build_view_tree
from repro.relational.dependencies import attribute_closure
from repro.rxl.parser import parse_rxl


class TestQuery1Labels:
    """Fig. 6: supplier's name/nation/region edges are '1', part is '*';
    part's pname is '1', order is '*'; order's children are all '1'."""

    def test_labels(self, q1_tree):
        labels = {n.sfi: n.label for n in q1_tree.nodes if n.parent}
        assert labels == {
            "S1.1": "1", "S1.2": "1", "S1.3": "1", "S1.4": "*",
            "S1.4.1": "1", "S1.4.2": "*",
            "S1.4.2.1": "1", "S1.4.2.2": "1", "S1.4.2.3": "1",
        }

    def test_root_unlabeled(self, q1_tree):
        assert q1_tree.root.label is None


class TestQuery2Labels:
    def test_labels(self, q2_tree):
        labels = {n.sfi: n.label for n in q2_tree.nodes if n.parent}
        assert labels == {
            "S1.1": "1", "S1.2": "1", "S1.3": "1",
            "S1.4": "*", "S1.5": "*",
            "S1.4.1": "1",
            "S1.5.1": "1", "S1.5.2": "1", "S1.5.3": "1",
        }


def _tree(schema, text):
    tree = build_view_tree(parse_rxl(text), schema)
    label_view_tree(tree, schema)
    return tree


class TestConditionCases:
    def test_question_mark_when_fk_nullable(self, schema):
        """C1 without C2: joining through a non-enforced path gives '?'."""
        # Region has no FK guaranteeing a nation exists for it; the child
        # query Region ⋈ Nation on regionkey is 0..N per region, but with a
        # filter pinning nationkey it is 0..1 -> '?'.
        tree = _tree(
            schema,
            "from Region $r construct <region>"
            "{ from Nation $n where $r.regionkey = $n.regionkey "
            "and $n.nationkey = 1 construct <nation>$n.name</nation> }"
            "</region>",
        )
        assert tree.node((1, 1)).label == "?"

    def test_plus_when_inclusion_without_fd(self, schema):
        """C2 without C1 — every part has a PartSupp row (FK from PartSupp
        is the wrong direction), so craft it via LineItem -> Orders: every
        line item has exactly one order; orders per customer are many."""
        tree = _tree(
            schema,
            "from Customer $c construct <customer>"
            "{ from Orders $o where $c.custkey = $o.custkey "
            "construct <order>$o.orderkey</order> }"
            "</customer>",
        )
        # customer -> order: no FD (many orders), no inclusion (customers
        # may have no orders): '*'
        assert tree.node((1, 1)).label == "*"

    def test_one_label_for_fk_path(self, schema):
        tree = _tree(
            schema,
            "from Orders $o construct <order>"
            "{ from Customer $c where $o.custkey = $c.custkey "
            "construct <customer>$c.name</customer> }"
            "</order>",
        )
        # orders.custkey is a NOT NULL enforced FK: exactly one customer.
        assert tree.node((1, 1)).label == "1"

    def test_extra_filter_breaks_c2(self, schema):
        tree = _tree(
            schema,
            "from Orders $o construct <order>"
            "{ from Customer $c where $o.custkey = $c.custkey "
            'and $c.name = "Customer#000001" '
            "construct <customer>$c.name</customer> }"
            "</order>",
        )
        # The filter can eliminate the customer: '?' not '1'.
        assert tree.node((1, 1)).label == "?"

    def test_same_body_child_is_one(self, schema):
        tree = _tree(
            schema,
            "from Supplier $s construct <supplier><name>$s.name</name>"
            "</supplier>",
        )
        assert tree.node((1, 1)).label == "1"

    def test_non_fk_join_breaks_c2(self, schema):
        # Join Supplier to Customer on nationkey: same-nation customers.
        tree = _tree(
            schema,
            "from Supplier $s construct <supplier>"
            "{ from Customer $c where $s.nationkey = $c.nationkey "
            "construct <customer>$c.name</customer> }"
            "</supplier>",
        )
        assert tree.node((1, 1)).label == "*"

    def test_fk_not_enforced_downgrades(self, schema):
        tree = _tree(
            schema,
            "from Orders $o construct <order>"
            "{ from Customer $c where $o.custkey = $c.custkey "
            "construct <customer>$c.name</customer> }"
            "</order>",
        )
        parent, child = tree.root, tree.node((1, 1))
        assert edge_label(parent, child, schema, assume_fk_enforced=True) == "1"
        assert edge_label(parent, child, schema, assume_fk_enforced=False) == "?"

    def test_fused_nodes_conservative(self, schema):
        tree = _tree(
            schema,
            "from Region $r construct <doc>"
            "{ from Supplier $s construct <who ID=W($s.name)>$s.name</who> }"
            "{ from Customer $c construct <who ID=W($c.name)>$c.name</who> }"
            "</doc>",
        )
        label_view_tree(tree, schema)
        [who] = [n for n in tree.nodes if n.tag == "who"]
        assert who.label == "*"

    def test_label_view_tree_returns_map(self, schema, q1_tree):
        labels = label_view_tree(q1_tree, schema)
        assert labels["S1.4"] == "*"
        assert len(labels) == 9


class TestBodyFds:
    def test_key_fd_derived(self, schema, q1_tree):
        rule = q1_tree.node((1, 2)).rule  # Supplier ⋈ Nation
        fds = body_fds(rule, schema)
        closure = attribute_closure(["s.suppkey"], fds)
        assert "n.name" in closure  # suppkey -> nationkey -> name

    def test_unique_set_fd_derived(self, schema, q1_tree):
        rule = q1_tree.node((1, 2)).rule
        fds = body_fds(rule, schema)
        closure = attribute_closure(["n.name"], fds)
        assert "n.nationkey" in closure  # name is a candidate key

    def test_equality_fds_bidirectional(self, schema, q1_tree):
        rule = q1_tree.node((1, 2)).rule
        fds = body_fds(rule, schema)
        assert "n.nationkey" in attribute_closure(["s.nationkey"], fds)
        assert "s.nationkey" in attribute_closure(["n.nationkey"], fds)
