"""Tests for the RXL language front end (repro.rxl)."""

import pytest

from repro.common.errors import RxlScopeError, RxlSyntaxError
from repro.rxl.ast import (
    LiteralValue,
    RxlBlock,
    RxlElement,
    TextExpr,
    TextLiteral,
    VarField,
)
from repro.rxl.lexer import tokenize, unescape_string
from repro.rxl.parser import parse_rxl
from repro.rxl.validate import validate_rxl
from repro.bench.queries import QUERY_1, QUERY_2


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("from Supplier $s construct")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "from"),
            ("ident", "Supplier"),
            ("var", "s"),
            ("keyword", "construct"),
        ]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_operators(self):
        values = [t.value for t in tokenize("= != < <= > >=")[:-1]]
        assert values == ["=", "!=", "<", "<=", ">", ">="]

    def test_numbers_and_strings(self):
        tokens = tokenize('42 3.14 "hi there"')
        assert tokens[0].kind == "number" and tokens[0].value == "42"
        assert tokens[1].kind == "number"
        assert tokens[2].kind == "string"
        assert unescape_string(tokens[2].value) == "hi there"

    def test_string_escapes(self):
        token = tokenize(r'"say \"hi\""')[0]
        assert unescape_string(token.value) == 'say "hi"'

    def test_comments_skipped(self):
        tokens = tokenize("from # a comment\nSupplier $s")
        assert [t.value for t in tokens[:-1]] == ["from", "Supplier", "s"]

    def test_line_tracking(self):
        tokens = tokenize("from\n  Supplier")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(RxlSyntaxError, match="line 1"):
            tokenize("from @")


class TestParser:
    def test_minimal_query(self):
        query = parse_rxl(
            "from Supplier $s construct <s><n>$s.name</n></s>"
        )
        assert query.froms[0].table == "Supplier"
        assert query.froms[0].var == "s"
        root = query.construct[0]
        assert root.tag == "s"
        child = root.contents[0]
        assert isinstance(child, RxlElement)
        assert isinstance(child.contents[0], TextExpr)
        assert child.contents[0].ref == VarField("s", "name")

    def test_conditions(self):
        query = parse_rxl(
            "from A $a, B $b where $a.x = $b.y and $a.z < 5, $a.w = \"v\" "
            "construct <t>$a.x</t>"
        )
        assert len(query.conditions) == 3
        assert query.conditions[0].op == "="
        assert query.conditions[1].right == LiteralValue(5)
        assert query.conditions[2].right == LiteralValue("v")

    def test_nested_block(self):
        query = parse_rxl(
            "from A $a construct <t>{ from B $b where $a.x = $b.x "
            "construct <u>$b.y</u> }</t>"
        )
        block = query.construct[0].contents[0]
        assert isinstance(block, RxlBlock)
        assert block.query.froms[0].table == "B"

    def test_explicit_skolem(self):
        query = parse_rxl(
            "from A $a construct <t ID=Grp($a.x, $a.y)>$a.x</t>"
        )
        skolem = query.construct[0].skolem
        assert skolem.name == "Grp"
        assert skolem.args == (VarField("a", "x"), VarField("a", "y"))

    def test_empty_skolem_args(self):
        query = parse_rxl("from A $a construct <t ID=One()>$a.x</t>")
        assert query.construct[0].skolem.args == ()

    def test_text_literal_content(self):
        query = parse_rxl('from A $a construct <t>"hello"</t>')
        assert query.construct[0].contents == [TextLiteral("hello")]

    def test_mismatched_tags(self):
        with pytest.raises(RxlSyntaxError, match="mismatched"):
            parse_rxl("from A $a construct <t>$a.x</u>")

    def test_missing_construct(self):
        with pytest.raises(RxlSyntaxError):
            parse_rxl("from A $a where $a.x = 1")

    def test_empty_construct(self):
        with pytest.raises(RxlSyntaxError, match="at least one element"):
            parse_rxl("from A $a construct")

    def test_trailing_garbage(self):
        with pytest.raises(RxlSyntaxError, match="trailing"):
            parse_rxl("from A $a construct <t>$a.x</t> zzz")

    def test_float_literal(self):
        query = parse_rxl(
            "from A $a where $a.x > 1.5 construct <t>$a.x</t>"
        )
        assert query.conditions[0].right == LiteralValue(1.5)

    def test_error_position_reported(self):
        with pytest.raises(RxlSyntaxError) as excinfo:
            parse_rxl("from A $a\nwhere construct <t>$a.x</t>")
        assert excinfo.value.line == 2

    def test_parses_paper_queries(self):
        q1 = parse_rxl(QUERY_1)
        q2 = parse_rxl(QUERY_2)
        assert q1.construct[0].tag == "supplier"
        assert q2.construct[0].tag == "supplier"
        # Query 1 nests order inside part; Query 2 moves it up.
        part_block_q1 = q1.construct[0].contents[-1]
        assert isinstance(part_block_q1, RxlBlock)


class TestValidate:
    def test_valid_queries(self, schema):
        assert validate_rxl(parse_rxl(QUERY_1), schema) == 7
        assert validate_rxl(parse_rxl(QUERY_2), schema) == 7

    def test_unknown_table(self, schema):
        query = parse_rxl("from Nope $n construct <t>$n.x</t>")
        with pytest.raises(RxlScopeError, match="unknown table"):
            validate_rxl(query, schema)

    def test_unknown_column(self, schema):
        query = parse_rxl("from Supplier $s construct <t>$s.zzz</t>")
        with pytest.raises(RxlScopeError, match="no column"):
            validate_rxl(query, schema)

    def test_undeclared_variable(self, schema):
        query = parse_rxl(
            "from Supplier $s where $x.a = 1 construct <t>$s.name</t>"
        )
        with pytest.raises(RxlScopeError, match="undeclared"):
            validate_rxl(query, schema)

    def test_shadowing_rejected(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <t>"
            "{ from Nation $s construct <u>$s.name</u> }</t>"
        )
        with pytest.raises(RxlScopeError, match="already declared"):
            validate_rxl(query, schema)

    def test_sibling_blocks_may_reuse_names(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <t>"
            "{ from Nation $n where $s.nationkey = $n.nationkey "
            "construct <u>$n.name</u> }"
            "{ from Nation $n where $s.nationkey = $n.nationkey "
            "construct <w>$n.name</w> }</t>"
        )
        validate_rxl(query, schema)

    def test_literal_comparison_rejected(self, schema):
        query = parse_rxl(
            "from Supplier $s where 1 = 2 construct <t>$s.name</t>"
        )
        with pytest.raises(RxlScopeError, match="two literals"):
            validate_rxl(query, schema)

    def test_skolem_arity_conflict(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <t>"
            "<u ID=F($s.suppkey)>$s.name</u>"
            "<w ID=F($s.suppkey, $s.name)>$s.name</w></t>"
        )
        with pytest.raises(RxlScopeError, match="argument"):
            validate_rxl(query, schema)

    def test_skolem_args_validated(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <t ID=F($s.zzz)>$s.name</t>"
        )
        with pytest.raises(RxlScopeError, match="no column"):
            validate_rxl(query, schema)

    def test_condition_in_scope_of_enclosing_block(self, schema):
        query = parse_rxl(
            "from Supplier $s construct <t>"
            "{ from PartSupp $ps where $s.suppkey = $ps.suppkey "
            "construct <u>$ps.partkey</u> }</t>"
        )
        validate_rxl(query, schema)
