"""Tests for SQL value types (repro.relational.types)."""

import datetime

import pytest

from repro.relational.types import SqlType, sql_literal


class TestAccepts:
    def test_integer(self):
        assert SqlType.INTEGER.accepts(5)
        assert not SqlType.INTEGER.accepts(5.0)
        assert not SqlType.INTEGER.accepts("5")
        assert not SqlType.INTEGER.accepts(True)  # bools are not integers

    def test_decimal_accepts_int_and_float(self):
        assert SqlType.DECIMAL.accepts(5)
        assert SqlType.DECIMAL.accepts(5.5)
        assert not SqlType.DECIMAL.accepts(True)

    def test_strings(self):
        assert SqlType.VARCHAR.accepts("x")
        assert SqlType.CHAR.accepts("x")
        assert not SqlType.VARCHAR.accepts(5)

    def test_date(self):
        assert SqlType.DATE.accepts(datetime.date(2001, 5, 21))
        assert not SqlType.DATE.accepts("2001-05-21")


class TestWidths:
    def test_storage_widths(self):
        assert SqlType.INTEGER.storage_width == 4
        assert SqlType.DECIMAL.storage_width == 8

    def test_value_width_null_is_zero(self):
        assert SqlType.INTEGER.value_width(None) == 0

    def test_varchar_width_is_length(self):
        assert SqlType.VARCHAR.value_width("hello") == 5

    def test_fixed_width(self):
        assert SqlType.INTEGER.value_width(123456) == 4


class TestLiterals:
    def test_null(self):
        assert SqlType.VARCHAR.to_sql_literal(None) == "NULL"

    def test_integer(self):
        assert SqlType.INTEGER.to_sql_literal(42) == "42"

    def test_string_escaping(self):
        assert SqlType.VARCHAR.to_sql_literal("O'Brien") == "'O''Brien'"

    def test_date_literal(self):
        lit = SqlType.DATE.to_sql_literal(datetime.date(2001, 5, 21))
        assert lit == "DATE '2001-05-21'"

    def test_sql_literal_inference(self):
        assert sql_literal(1) == "1"
        assert sql_literal("a") == "'a'"
        assert sql_literal(None) == "NULL"
        assert sql_literal(datetime.date(2000, 1, 1)).startswith("DATE ")

    def test_sql_literal_rejects_bool(self):
        with pytest.raises(TypeError):
            sql_literal(True)

    def test_sql_literal_rejects_unknown(self):
        with pytest.raises(TypeError):
            sql_literal(object())
