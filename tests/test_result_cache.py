"""Tests for the cross-plan result cache (repro.relational.cache).

The cache's contract is strict: a hit must replay the *exact* simulated
execution — byte-identical rows, ``server_ms``, ``rows_examined``, the
per-operator breakdown (including dict insertion order), and the same
:class:`TimeoutExceeded` at the same accumulated total.  These tests
compare cached engines against uncached ones across the paper workload
queries on both configurations' cost models, and check invalidation when
the underlying database mutates.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import TimeoutExceeded
from repro.core.partition import (
    Partition,
    enumerate_partitions,
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.cache import CacheEntry, PlanResultCache
from repro.relational.engine import (
    CONFIG_A_COST_MODEL,
    CONFIG_B_COST_MODEL,
    CostModel,
    QueryEngine,
)
from repro.tpch.generator import TpchGenerator, TpchScale


def sample_partitions(tree):
    """A small but structurally diverse set of plans: unified, fully
    partitioned, and a couple of mixed cuts."""
    edges = sorted(child.index for _, child in tree.edges)
    return [
        unified_partition(tree),
        fully_partitioned(tree),
        Partition(edges[: len(edges) // 2]),
        Partition(edges[::2]),
    ]


def run_specs(engine, specs, budget_ms=None):
    """Execute every spec; returns (results, timeout_or_None) where a
    timeout is recorded as (spec index, budget, total)."""
    results = []
    for i, spec in enumerate(specs):
        try:
            results.append(engine.execute(spec.plan, budget_ms=budget_ms))
        except TimeoutExceeded as exc:
            return results, (i, exc.budget_ms, exc.elapsed_ms)
    return results, None


def assert_identical(cached, uncached):
    assert cached.rows == uncached.rows
    assert cached.columns == uncached.columns
    assert cached.server_ms == uncached.server_ms
    assert cached.rows_examined == uncached.rows_examined
    assert cached.breakdown == uncached.breakdown
    assert list(cached.breakdown) == list(uncached.breakdown)


class TestCachedExecutionIdentity:
    @pytest.mark.parametrize("cost_model", [
        CONFIG_A_COST_MODEL, CONFIG_B_COST_MODEL,
    ], ids=["config-a", "config-b"])
    @pytest.mark.parametrize("tree_fixture", ["q1_tree", "q2_tree"])
    def test_bit_identical_across_plans(
        self, request, tree_fixture, cost_model, tiny_db
    ):
        tree = request.getfixturevalue(tree_fixture)
        cached_engine = QueryEngine(
            tiny_db, cost_model, cache=PlanResultCache()
        )
        plain_engine = QueryEngine(tiny_db, cost_model)
        for style in (PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION):
            generator = SqlGenerator(
                tree, tiny_db.schema, style=style, reduce=True
            )
            for partition in sample_partitions(tree):
                for spec in generator.streams_for_partition(partition):
                    reference = plain_engine.execute(spec.plan)
                    first = cached_engine.execute(spec.plan)
                    replayed = cached_engine.execute(spec.plan)
                    assert_identical(first, reference)
                    assert_identical(replayed, reference)
        stats = cached_engine.cache.stats()
        assert stats.hits > 0  # shared subtrees + the explicit re-run
        assert stats.misses == stats.stores

    def test_include_startup_modes_keyed_separately(self, q1_tree, tiny_db):
        # Some charges are running-total float deltas, so the two timing
        # modes differ at the ulp level; each mode gets its own entry and
        # each replays bit-identically against its own uncached run.
        engine = QueryEngine(tiny_db, CostModel(), cache=PlanResultCache())
        plain = QueryEngine(tiny_db, CostModel())
        spec = SqlGenerator(q1_tree, tiny_db.schema).streams_for_partition(
            unified_partition(q1_tree)
        )[0]
        engine.execute(spec.plan, include_startup=True)
        for include_startup in (False, True):
            got = engine.execute(spec.plan, include_startup=include_startup)
            want = plain.execute(spec.plan, include_startup=include_startup)
            assert_identical(got, want)
        assert engine.cache.stats().hits == 1
        assert engine.cache.stats().misses == 2

    def test_timeout_replay_identical(self, q1_tree, tiny_db):
        generator = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        specs = generator.streams_for_partition(unified_partition(q1_tree))
        plain = QueryEngine(tiny_db, CostModel())
        reference, ref_timeout = run_specs(plain, specs, budget_ms=1.0)
        assert ref_timeout is not None
        cached = QueryEngine(tiny_db, CostModel(), cache=PlanResultCache())
        for _ in range(2):  # second pass replays the incomplete entry
            results, timeout = run_specs(cached, specs, budget_ms=1.0)
            assert timeout == ref_timeout
            for got, want in zip(results, reference):
                assert_identical(got, want)

    def test_incomplete_entry_upgrades_on_larger_budget(self, q1_tree, tiny_db):
        generator = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        spec = generator.streams_for_partition(unified_partition(q1_tree))[0]
        plain = QueryEngine(tiny_db, CostModel())
        reference = plain.execute(spec.plan)
        cached = QueryEngine(tiny_db, CostModel(), cache=PlanResultCache())
        with pytest.raises(TimeoutExceeded):
            cached.execute(spec.plan, budget_ms=1.0)
        # The stored prefix cannot prove a timeout under no budget, so the
        # full run happens and upgrades the entry to a complete one.
        assert_identical(cached.execute(spec.plan), reference)
        assert_identical(cached.execute(spec.plan), reference)
        assert cached.cache.stats().hits == 1

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_property_random_plan_and_budget(self, data, q1_tree, tiny_db):
        """Any (partition, style, budget) behaves identically cached and
        uncached — same rows/timings on success, same timeout otherwise."""
        partitions = list(enumerate_partitions(q1_tree))
        partition = data.draw(st.sampled_from(partitions))
        style = data.draw(st.sampled_from(list(PlanStyle)))
        budget_ms = data.draw(
            st.sampled_from([None, 0.5, 2.0, 25.0, 100000.0])
        )
        generator = SqlGenerator(
            q1_tree, tiny_db.schema, style=style, reduce=True
        )
        specs = generator.streams_for_partition(partition)
        plain = QueryEngine(tiny_db, CONFIG_A_COST_MODEL)
        cached = QueryEngine(
            tiny_db, CONFIG_A_COST_MODEL, cache=PlanResultCache()
        )
        reference, ref_timeout = run_specs(plain, specs, budget_ms=budget_ms)
        for _ in range(2):
            results, timeout = run_specs(cached, specs, budget_ms=budget_ms)
            assert timeout == ref_timeout
            for got, want in zip(results, reference):
                assert_identical(got, want)


class TestInvalidation:
    def make_db(self):
        scale = TpchScale(suppliers=4, parts=6, customers=4, orders=8)
        return TpchGenerator(scale=scale, seed=7).generate()

    def test_mutation_bumps_generation_and_misses(self, q1_tree):
        db = self.make_db()
        engine = QueryEngine(db, CostModel(), cache=PlanResultCache())
        spec = SqlGenerator(q1_tree, db.schema).streams_for_partition(
            unified_partition(q1_tree)
        )[0]
        before = engine.execute(spec.plan)
        generation = db.generation
        nation = db.table("Nation")
        nation.insert(nationkey=99, name="ATLANTIS", regionkey=0)
        assert db.generation == generation + 1
        after = engine.execute(spec.plan)
        # No stale hit: the second execution really ran (two misses).
        assert engine.cache.stats().hits == 0
        assert engine.cache.stats().misses == 2
        assert after.rows != before.rows or after.server_ms != before.server_ms

    def test_distinct_databases_never_collide(self, q1_tree):
        db_a = self.make_db()
        db_b = self.make_db()
        cache = PlanResultCache()
        spec = SqlGenerator(q1_tree, db_a.schema).streams_for_partition(
            unified_partition(q1_tree)
        )[0]
        QueryEngine(db_a, CostModel(), cache=cache).execute(spec.plan)
        QueryEngine(db_b, CostModel(), cache=cache).execute(spec.plan)
        assert cache.stats().hits == 0
        assert cache.stats().misses == 2

    def test_cost_model_is_part_of_the_key(self, q1_tree, tiny_db):
        cache = PlanResultCache()
        spec = SqlGenerator(q1_tree, tiny_db.schema).streams_for_partition(
            unified_partition(q1_tree)
        )[0]
        a = QueryEngine(tiny_db, CONFIG_A_COST_MODEL, cache=cache)
        b = QueryEngine(tiny_db, CONFIG_B_COST_MODEL, cache=cache)
        result_a = a.execute(spec.plan)
        result_b = b.execute(spec.plan)
        assert cache.stats().hits == 0
        assert result_a.server_ms != result_b.server_ms


class TestCacheBookkeeping:
    def entry(self, nbytes, tag):
        return CacheEntry(
            rows=[(tag,)], charge_log=(("scan", 1.0, 1),),
            complete=True, nbytes=nbytes,
        )

    def test_lru_eviction_under_memory_bound(self):
        cache = PlanResultCache(max_bytes=1000)
        for i in range(4):
            cache.store(("plan", i), self.entry(300, i))
        # 4 * 300 > 1000: the least recently used entry was evicted.
        assert len(cache) == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.current_bytes == 900
        assert cache.lookup(("plan", 0)) is None
        assert cache.lookup(("plan", 3)).rows == [(3,)]

    def test_lookup_refreshes_recency(self):
        cache = PlanResultCache(max_bytes=1000)
        for i in range(3):
            cache.store(("plan", i), self.entry(300, i))
        cache.lookup(("plan", 0))  # refresh the oldest
        cache.store(("plan", 3), self.entry(300, 3))
        assert cache.lookup(("plan", 0)) is not None
        assert cache.lookup(("plan", 1)) is None

    def test_oversize_entry_rejected(self):
        cache = PlanResultCache(max_bytes=100)
        cache.store(("big",), self.entry(500, 0))
        assert len(cache) == 0
        assert cache.stats().oversize_rejections == 1

    def test_clear_resets_contents_not_counters(self):
        cache = PlanResultCache()
        cache.store(("plan",), self.entry(64, 0))
        cache.lookup(("plan",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().current_bytes == 0
        assert cache.stats().hits == 1

    def test_incomplete_entry_needs_provable_timeout(self):
        cache = PlanResultCache()
        entry = CacheEntry(
            rows=None, charge_log=(("scan", 5.0, 10), ("sort", 5.0, 0)),
            complete=False, nbytes=128,
        )
        cache.store(("plan",), entry)
        assert cache.lookup(("plan",), spent_ms=0.0, budget_ms=None) is None
        assert cache.lookup(("plan",), spent_ms=0.0, budget_ms=20.0) is None
        hit = cache.lookup(("plan",), spent_ms=0.0, budget_ms=8.0)
        assert hit is entry
        assert hit.replay_raises(0.0, 8.0)
        assert not hit.replay_raises(0.0, 10.0)  # exactly on budget: no raise
