"""Tests for the executing engine and cost model (repro.relational.engine)."""

import pytest

from repro.common.errors import TimeoutExceeded
from repro.relational.algebra import (
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    JoinBranch,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.database import Database
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.schema import Column, DatabaseSchema, TableSchema
from repro.relational.types import SqlType


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [
            TableSchema(
                "Dept",
                [Column("deptno", SqlType.INTEGER), Column("dname", SqlType.VARCHAR)],
                key=["deptno"],
            ),
            TableSchema(
                "Emp",
                [
                    Column("empno", SqlType.INTEGER),
                    Column("ename", SqlType.VARCHAR),
                    Column("deptno", SqlType.INTEGER, nullable=True),
                ],
                key=["empno"],
            ),
        ]
    )
    database = Database(schema)
    database.insert("Dept", 1, "eng")
    database.insert("Dept", 2, "ops")
    database.insert("Dept", 3, "empty")
    database.insert("Emp", 10, "ada", 1)
    database.insert("Emp", 11, "bob", 1)
    database.insert("Emp", 12, "cyd", 2)
    database.insert("Emp", 13, "dan", None)
    return database


@pytest.fixture
def engine(db):
    return QueryEngine(db, CostModel())


def dept(db):
    return Scan(db.schema.table("Dept"), "d")


def emp(db):
    return Scan(db.schema.table("Emp"), "e")


class TestScanFilterProject:
    def test_scan(self, engine, db):
        result = engine.execute(dept(db))
        assert result.row_count == 3
        assert result.rows[0] == (1, "eng")

    def test_filter(self, engine, db):
        plan = Filter(emp(db), Comparison("=", ColumnRef("e.deptno"), Literal(1)))
        result = engine.execute(plan)
        assert {r[1] for r in result.rows} == {"ada", "bob"}

    def test_filter_null_excluded(self, engine, db):
        plan = Filter(emp(db), Comparison("!=", ColumnRef("e.deptno"), Literal(1)))
        # dan has NULL deptno: excluded by three-valued logic.
        assert {r[1] for r in engine.execute(plan).rows} == {"cyd"}

    def test_project_constants_and_rename(self, engine, db):
        plan = Project(
            dept(db),
            [ConstantColumn("L1", 1), ProjectItem(ColumnRef("d.dname"), "name")],
        )
        assert engine.execute(plan).rows[0] == (1, "eng")

    def test_distinct(self, engine, db):
        plan = Distinct(Project(emp(db), [ProjectItem(ColumnRef("e.deptno"), "d")]))
        rows = engine.execute(plan).rows
        assert sorted(rows, key=lambda r: (r[0] is None, r[0])) == [(1,), (2,), (None,)]


class TestJoins:
    def test_inner_join(self, engine, db):
        plan = InnerJoin(emp(db), dept(db), [("e.deptno", "d.deptno")])
        rows = engine.execute(plan).rows
        assert len(rows) == 3  # dan (NULL) drops out
        names = {(r[1], r[4]) for r in rows}
        assert names == {("ada", "eng"), ("bob", "eng"), ("cyd", "ops")}

    def test_inner_join_null_keys_never_match(self, engine, db):
        plan = InnerJoin(emp(db), emp_alias(db), [("e.deptno", "e2.deptno")])
        rows = engine.execute(plan).rows
        assert all(r[2] is not None for r in rows)

    def test_cartesian_join(self, engine, db):
        plan = InnerJoin(dept(db), emp_alias(db), [])
        assert engine.execute(plan).row_count == 12

    def test_left_outer_join_pads_nulls(self, engine, db):
        plan = LeftOuterJoin.simple(dept(db), emp(db), [("d.deptno", "e.deptno")])
        rows = engine.execute(plan).rows
        assert len(rows) == 4  # 3 matches + bare 'empty' dept
        bare = [r for r in rows if r[2] is None]
        assert len(bare) == 1 and bare[0][1] == "empty"

    def test_tagged_branches(self, engine, db):
        # Tag on dname: branch 1 matches 'eng' rows only.
        right = dept(db)
        plan = LeftOuterJoin(
            emp(db),
            right,
            [JoinBranch((("e.deptno", "d.deptno"),), "d.dname", "eng")],
        )
        rows = engine.execute(plan).rows
        matched = [r for r in rows if r[3] is not None]
        assert {r[1] for r in matched} == {"ada", "bob"}
        # cyd and dan fall through to the null branch
        assert len(rows) == 4

    def test_multi_branch_disjunction(self, engine, db):
        plan = LeftOuterJoin(
            emp(db),
            dept(db),
            [
                JoinBranch((("e.deptno", "d.deptno"),), "d.dname", "eng"),
                JoinBranch((("e.deptno", "d.deptno"),), "d.dname", "ops"),
            ],
        )
        rows = engine.execute(plan).rows
        matched = [r for r in rows if r[3] is not None]
        assert {r[1] for r in matched} == {"ada", "bob", "cyd"}


class TestUnionSort:
    def test_outer_union_pads(self, engine, db):
        a = Project(dept(db), [ProjectItem(ColumnRef("d.dname"), "x")])
        b = Project(emp(db), [ProjectItem(ColumnRef("e.ename"), "y")])
        plan = OuterUnion([a, b])
        rows = engine.execute(plan).rows
        assert len(rows) == 7
        assert rows[0] == ("eng", None)
        assert rows[3] == (None, "ada")

    def test_union_distinct(self, engine, db):
        a = Project(emp(db), [ProjectItem(ColumnRef("e.deptno"), "d")])
        plan = OuterUnion([a, a], distinct=True)
        assert engine.execute(plan).row_count == 3

    def test_sort_nulls_first(self, engine, db):
        plan = Sort(
            Project(emp(db), [ProjectItem(ColumnRef("e.deptno"), "d")]), ["d"]
        )
        values = [r[0] for r in engine.execute(plan).rows]
        assert values == [None, 1, 1, 2]


class TestCostAccounting:
    def test_startup_charged_once(self, engine, db):
        with_startup = engine.execute(dept(db)).server_ms
        without = engine.execute(dept(db), include_startup=False).server_ms
        assert with_startup - without == pytest.approx(
            engine.cost_model.scaled(engine.cost_model.startup_ms)
        )

    def test_speed_scales_costs(self, db):
        slow = QueryEngine(db, CostModel(speed=4.0))
        fast = QueryEngine(db, CostModel(speed=1.0))
        plan = dept(db)
        assert slow.execute(plan).server_ms == pytest.approx(
            4.0 * fast.execute(plan).server_ms
        )

    def test_breakdown_labels(self, engine, db):
        plan = Sort(
            Distinct(InnerJoin(emp(db), dept(db), [("e.deptno", "d.deptno")])),
            ["e.empno"],
        )
        breakdown = engine.execute(plan).breakdown
        assert {"startup", "scan", "join", "distinct", "sort"} <= set(breakdown)

    def test_deterministic(self, engine, db):
        plan = InnerJoin(emp(db), dept(db), [("e.deptno", "d.deptno")])
        assert (
            engine.execute(plan).server_ms == engine.execute(plan).server_ms
        )

    def test_timeout(self, db):
        engine = QueryEngine(db, CostModel())
        with pytest.raises(TimeoutExceeded):
            engine.execute(dept(db), budget_ms=0.001)

    def test_timeout_carries_budget(self, db):
        engine = QueryEngine(db, CostModel())
        with pytest.raises(TimeoutExceeded) as excinfo:
            engine.execute(dept(db), budget_ms=0.001)
        assert excinfo.value.budget_ms == 0.001
        assert excinfo.value.elapsed_ms > 0


class TestSharing:
    def test_common_subexpression_shared(self, engine, db):
        """The same sub-plan used twice is evaluated once (rescan charge)."""
        shared = InnerJoin(emp(db), dept(db), [("e.deptno", "d.deptno")])
        a = Project(shared, [ProjectItem(ColumnRef("e.ename"), "x")])
        b = Project(shared, [ProjectItem(ColumnRef("d.dname"), "x")])
        plan = OuterUnion([a, b])
        breakdown = engine.execute(plan).breakdown
        assert "rescan" in breakdown
        # Only two scans + one join were charged, not four + two.
        single = engine.execute(a).breakdown
        combined = engine.execute(plan).breakdown
        assert combined["join"] == pytest.approx(single["join"])

    def test_no_sharing_across_executions(self, engine, db):
        plan = dept(db)
        first = engine.execute(plan).breakdown
        second = engine.execute(plan).breakdown
        assert first.get("rescan") is None and second.get("rescan") is None


class TestReevaluationPenalty:
    def _nested(self, db):
        inner = LeftOuterJoin.simple(
            Project(emp(db), [ProjectItem(ColumnRef("e.deptno"), "dep"),
                              ProjectItem(ColumnRef("e.ename"), "en")]),
            Project(dept(db), [ProjectItem(ColumnRef("d.deptno"), "dd")]),
            [("dep", "dd")],
        )
        return LeftOuterJoin.simple(
            Project(dept(db), [ProjectItem(ColumnRef("d.deptno"), "k")]),
            inner,
            [("k", "dep")],
        )

    def test_depth_two_triggers_reevaluation(self, db):
        # right side of the OUTER join has nesting 1 -> below threshold.
        model = CostModel(reevaluation_threshold=1)
        stressed = QueryEngine(db, model).execute(self._nested(db))
        relaxed = QueryEngine(db, model.without("reevaluation_factor")).execute(
            self._nested(db)
        )
        assert stressed.server_ms > relaxed.server_ms
        assert "outer_join_reevaluation" in stressed.breakdown

    def test_default_threshold_spares_single_nesting(self, db):
        result = QueryEngine(db, CostModel()).execute(self._nested(db))
        assert "outer_join_reevaluation" not in result.breakdown

    def test_results_unaffected_by_penalty(self, db):
        model = CostModel(reevaluation_threshold=1)
        a = QueryEngine(db, model).execute(self._nested(db))
        b = QueryEngine(db, model.without("reevaluation_factor")).execute(
            self._nested(db)
        )
        assert a.rows == b.rows


class TestSpill:
    def test_spill_inflates_sort(self, db):
        small_memory = CostModel(sort_memory_bytes=10.0)
        big_memory = CostModel(sort_memory_bytes=10_000_000.0)
        plan = Sort(emp(db), ["e.empno"])
        spilled = QueryEngine(db, small_memory).execute(plan)
        fit = QueryEngine(db, big_memory).execute(plan)
        assert spilled.breakdown["sort"] > fit.breakdown["sort"]
        assert spilled.rows == fit.rows

    def test_without_unknown_knob(self):
        with pytest.raises(ValueError):
            CostModel().without("nonsense")


def emp_alias(db):
    return Scan(db.schema.table("Emp"), "e2")
