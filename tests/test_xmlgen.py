"""Tests for stream decoding, merging, tagging, and serialization."""

import pytest

from repro.common.errors import PlanError
from repro.core.partition import (
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.xmlgen.serializer import XmlWriter, escape_text, format_value
from repro.xmlgen.streams import ComparatorLayout, decode_stream, merge_streams
from repro.xmlgen.tagger import tag_streams


@pytest.fixture
def layout(q1_tree):
    return ComparatorLayout(q1_tree)


def executed(tree, db, conn, partition, style=PlanStyle.OUTER_JOIN, reduce=False):
    generator = SqlGenerator(tree, db.schema, style=style, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    streams = [conn.execute(s.plan, compact_rows=s.compact) for s in specs]
    return specs, streams


class TestComparatorLayout:
    def test_display_only_variables_excluded(self, q1_tree, layout):
        """Only key arguments participate in the global comparator."""
        stv_entries = [what for kind, what in layout.entries if kind == "stv"]
        key_stvs = set()
        for node in q1_tree.nodes:
            key_stvs.update(node.key_args)
        assert set(stv_entries) <= key_stvs

    def test_parent_key_is_prefix_of_child_key(self, q1_tree, layout):
        parent = q1_tree.node((1, 4))
        child = q1_tree.node((1, 4, 1))
        values = {"v1_1_suppkey": 3, "v2_6_partkey": 9, "v3_1_name": "x"}
        parent_key = layout.instance_key(parent, values)
        child_key = layout.instance_key(child, values)
        assert parent_key < child_key

    def test_sibling_order_by_index(self, q1_tree, layout):
        values = {"v1_1_suppkey": 3}
        name_key = layout.instance_key(q1_tree.node((1, 1)), values)
        nation_key = layout.instance_key(q1_tree.node((1, 2)), values)
        assert name_key < nation_key

    def test_supplier_order_dominates(self, q1_tree, layout):
        early = layout.instance_key(q1_tree.node((1, 4)),
                                    {"v1_1_suppkey": 1, "v2_6_partkey": 99})
        late = layout.instance_key(q1_tree.node((1, 1)), {"v1_1_suppkey": 2})
        assert early < late


class TestDecodeStream:
    def test_unified_stream_decodes_every_node(self, q1_tree, tiny_db,
                                               tiny_conn, layout):
        [spec], [stream] = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        instances = list(decode_stream(spec, stream.rows, layout))
        nodes_seen = {i.node.sfi for i in instances}
        assert "S1" in nodes_seen and "S1.4.2.3" in nodes_seen

    def test_instances_nondecreasing(self, q1_tree, tiny_db, tiny_conn, layout):
        [spec], [stream] = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        keys = [i.key for i in decode_stream(spec, stream.rows, layout)]
        assert keys == sorted(keys)

    def test_duplicates_suppressed(self, q1_tree, tiny_db, tiny_conn, layout):
        [spec], [stream] = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        instances = list(decode_stream(spec, stream.rows, layout))
        seen = set()
        for inst in instances:
            key = (inst.node.index, inst.identity())
            assert key not in seen
            seen.add(key)

    def test_supplier_count(self, q1_tree, tiny_db, tiny_conn, layout):
        [spec], [stream] = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        instances = list(decode_stream(spec, stream.rows, layout))
        suppliers = [i for i in instances if i.node.sfi == "S1"]
        assert len(suppliers) == len(tiny_db.table("Supplier"))

    def test_reduced_stream_expands_members(self, q1_tree, tiny_db,
                                            tiny_conn, layout):
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree),
            reduce=True,
        )
        instances = list(decode_stream(specs[0], streams[0].rows, layout))
        nodes_seen = {i.node.sfi for i in instances}
        # Merged members S1.1, S1.2, S1.3 are reconstructed.
        assert {"S1.1", "S1.2", "S1.3"} <= nodes_seen

    def test_bad_row_rejected(self, q1_tree, tiny_db, tiny_conn, layout):
        [spec], _ = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        bad_row = (None,) * len(spec.column_names)
        with pytest.raises(PlanError, match="no L tag"):
            list(decode_stream(spec, [bad_row], layout))


class TestMerge:
    def test_merge_is_globally_sorted(self, q1_tree, tiny_db, tiny_conn, layout):
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, fully_partitioned(q1_tree)
        )
        decoded = [
            decode_stream(spec, stream.rows, layout)
            for spec, stream in zip(specs, streams)
        ]
        keys = [i.key for i in merge_streams(decoded)]
        assert keys == sorted(keys)


class TestTagger:
    def test_tag_streams_returns_xml(self, q1_tree, tiny_db, tiny_conn):
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        xml, tagger = tag_streams(q1_tree, specs, streams, root_tag="view")
        assert xml.startswith("<view>")
        assert xml.endswith("</view>")
        assert tagger.implicit_opens == 0

    def test_stack_bounded_by_tree_depth(self, q1_tree, tiny_db, tiny_conn):
        """Constant space: the stack never exceeds the view-tree depth."""
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        _, tagger = tag_streams(q1_tree, specs, streams, root_tag=None)
        assert tagger.max_stack_depth <= q1_tree.max_depth()

    def test_element_counts_match_database(self, q1_tree, tiny_db, tiny_conn):
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        xml, _ = tag_streams(q1_tree, specs, streams, root_tag="view")
        n_suppliers = len(tiny_db.table("Supplier"))
        n_parts = len(tiny_db.table("PartSupp"))
        assert xml.count("<supplier>") == n_suppliers
        assert xml.count("<part>") == n_parts
        assert xml.count("<order>") == len(tiny_db.table("LineItem"))

    def test_childless_supplier_still_appears(self, q1_tree, tiny_db, tiny_conn):
        stocked = {r[1] for r in tiny_db.table("PartSupp")}
        stockless = [
            r[0] for r in tiny_db.table("Supplier") if r[0] not in stocked
        ]
        assert stockless  # generator guarantees some
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        xml, _ = tag_streams(q1_tree, specs, streams, root_tag="view")
        names = {
            r[1] for r in tiny_db.table("Supplier") if r[0] in stockless
        }
        for name in names:
            assert name in xml

    def test_no_root_tag(self, q1_tree, tiny_db, tiny_conn):
        specs, streams = executed(
            q1_tree, tiny_db, tiny_conn, unified_partition(q1_tree)
        )
        xml, _ = tag_streams(q1_tree, specs, streams, root_tag=None)
        assert xml.startswith("<supplier>")

    def test_empty_streams_produce_empty_document(self, q1_tree, tiny_db,
                                                  tiny_conn):
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        specs = generator.streams_for_partition(unified_partition(q1_tree))
        xml, tagger = tag_streams(q1_tree, specs, [[]], root_tag="view")
        assert xml == "<view></view>"
        assert tagger.elements_written == 0


class TestSerializer:
    def test_escaping(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_format_value(self):
        import datetime

        assert format_value(3) == "3"
        assert format_value(3.14159) == "3.14"
        assert format_value(datetime.date(2001, 5, 21)) == "2001-05-21"
        assert format_value("x") == "x"

    def test_compact_output(self):
        writer = XmlWriter()
        writer.start_element("a")
        writer.text("hi")
        writer.end_element("a")
        assert writer.getvalue() == "<a>hi</a>"

    def test_indented_output(self):
        writer = XmlWriter(indent=2)
        writer.start_element("a")
        writer.start_element("b")
        writer.text("x")
        writer.end_element("b")
        writer.end_element("a")
        assert writer.getvalue() == "<a>\n  <b>x</b>\n</a>"

    def test_external_sink(self):
        class ListSink:
            def __init__(self):
                self.chunks = []

            def write(self, text):
                self.chunks.append(text)

        sink = ListSink()
        writer = XmlWriter(sink=sink)
        writer.start_element("a")
        writer.end_element("a")
        assert "".join(sink.chunks) == "<a></a>"
        with pytest.raises(TypeError):
            writer.getvalue()
