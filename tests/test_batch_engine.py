"""Batch engine (repro.relational.batch / vector_ops): the identity twin.

The vectorized engine's contract is *bit-identity* with the tuple
interpreter: same rows, same simulated charges in the same order, same
cache entries — so the two modes are interchangeable under every feature
that composes with execution.  Tested here:

* **row codecs and batches** — compiled encode/decode round-trips at any
  arity (including zero), chunked decode at awkward batch sizes, shared
  column views;
* **per-stream identity** (hypothesis) — over random sweep partitions and
  both plan styles, every stream's rows, simulated timings, breakdown,
  and full ordered charge log match the tuple engine's at several batch
  sizes;
* **end-to-end identity** (hypothesis) — materialized XML bytes and
  report figures match sequentially, with concurrent dispatch, and under
  injected faults on a replica pool;
* **sort semantics** — the batch engine's stable single-key passes
  reproduce :class:`~repro.common.ordering.NoneFirst` exactly for NULLs
  and pathological mixed-type columns;
* **mode plumbing** — engine/batch_size knobs validate and flow through
  ``ExecutionOptions``, ``Connection``, and the CLI parser.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.cli import build_parser
from repro.common.errors import TransientConnectionError
from repro.common.ordering import NoneFirst
from repro.core.options import ExecutionOptions
from repro.core.partition import enumerate_partitions
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.bench.queries import QUERY_1
from repro.relational import vector_ops
from repro.relational.batch import Batch, DEFAULT_BATCH_SIZE, codec_for
from repro.relational.cache import PlanResultCache
from repro.relational.connection import Connection
from repro.relational.engine import ENGINE_MODES, CostModel, QueryEngine
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.relational.algebra import Scan


BATCH_SIZES = [1, 5, DEFAULT_BATCH_SIZE]


def fresh_view(tiny_db, tiny_estimator):
    connection = Connection(tiny_db, CostModel())
    silk = SilkRoute(connection, estimator=tiny_estimator)
    return silk.define_view(QUERY_1)


@pytest.fixture(scope="module")
def baseline(request):
    """The tuple-engine fully-partitioned run every identity test uses."""
    tiny_db = request.getfixturevalue("tiny_db")
    tiny_estimator = request.getfixturevalue("tiny_estimator")
    view = fresh_view(tiny_db, tiny_estimator)
    return view.materialize("fully-partitioned", engine="tuple")


@pytest.fixture(scope="module")
def q1_partitions(request):
    tiny_db = request.getfixturevalue("tiny_db")
    q1_tree = request.getfixturevalue("q1_tree")
    return list(enumerate_partitions(q1_tree))


# ---------------------------------------------------------------------------
# Batches and codecs


class TestBatch:
    def test_codec_round_trip(self):
        for arity in range(1, 5):
            codec = codec_for(arity)
            assert codec.arity == arity
            rows = [
                tuple(f"v{r}.{c}" for c in range(arity)) for r in range(7)
            ]
            columns = codec.encode(rows)
            assert len(columns) == arity
            assert codec.decode(columns) == rows
        # Zero-arity rows carry no columns; the length lives on the Batch
        # (see test_zero_arity_and_empty), so the raw codec decodes to [].
        assert codec_for(0).encode([(), ()]) == []
        assert codec_for(0).decode([]) == []

    def test_codecs_are_shared(self):
        assert codec_for(3) is codec_for(3)

    def test_row_and_column_construction_agree(self):
        rows = [(i, str(i), i % 2 == 0) for i in range(10)]
        by_rows = Batch.from_rows(rows, 3)
        by_cols = Batch.from_columns(
            [list(c) for c in zip(*rows)], len(rows)
        )
        for batch_size in (1, 3, len(rows), len(rows) + 7):
            assert by_rows.rows(batch_size) == rows
            assert by_cols.rows(batch_size) == rows
        for i in range(3):
            assert by_rows.col(i) == by_cols.col(i) == [r[i] for r in rows]
        assert len(by_rows) == len(by_cols) == 10

    def test_zero_arity_and_empty(self):
        empty = Batch.from_rows([], 2)
        assert empty.rows() == [] and empty.length == 0
        zero = Batch.from_rows([(), (), ()], 0)
        assert zero.rows(2) == [(), (), ()]
        assert zero.columns() == []


# ---------------------------------------------------------------------------
# Sort semantics


class TestSortPass:
    def _reference(self, rows, position):
        return sorted(rows, key=lambda row: NoneFirst(row[position]))

    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(-5, 5)), max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nulls_first_and_stable(self, values):
        rows = [(value, i) for i, value in enumerate(values)]
        out = vector_ops._sort_pass(
            rows, [r[0] for r in rows], 0, lambda r: r[0]
        )
        assert out == self._reference(rows, 0)

    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.integers(-3, 3),
                st.text(max_size=2),
                st.booleans(),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mixed_type_columns_order_by_type_name(self, values):
        rows = [(value, i) for i, value in enumerate(values)]
        out = vector_ops._sort_pass(
            rows, [r[0] for r in rows], 0, lambda r: r[0]
        )
        assert out == self._reference(rows, 0)


# ---------------------------------------------------------------------------
# Per-stream identity over random partitions


class TestStreamIdentity:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        index=st.integers(min_value=0, max_value=10 ** 9),
        batch_size=st.sampled_from(BATCH_SIZES),
        style=st.sampled_from([PlanStyle.OUTER_UNION, PlanStyle.OUTER_JOIN]),
    )
    def test_rows_timings_and_charge_log_match(
        self, tiny_db, q1_tree, q1_partitions, index, batch_size, style
    ):
        partition = q1_partitions[index % len(q1_partitions)]
        generator = SqlGenerator(q1_tree, tiny_db.schema, style=style)
        for spec in generator.streams_for_partition(partition):
            tuple_cache, batch_cache = PlanResultCache(), PlanResultCache()
            tuple_engine = QueryEngine(
                tiny_db, cache=tuple_cache, engine="tuple"
            )
            batch_engine = QueryEngine(
                tiny_db, cache=batch_cache, engine="batch",
                batch_size=batch_size,
            )
            expected = tuple_engine.execute(spec.plan)
            actual = batch_engine.execute(spec.plan)
            assert actual.rows == expected.rows
            assert actual.server_ms == expected.server_ms
            assert actual.rows_examined == expected.rows_examined
            assert actual.breakdown == expected.breakdown
            # The full ordered charge log — every (label, ms, rows)
            # triple — is recorded in the cache entry on the miss.
            key = tuple_engine.cache_key_for(spec.plan)
            assert (
                batch_cache.peek(key).charge_log
                == tuple_cache.peek(key).charge_log
            )
            # Re-execution serves the node-result cache: still identical.
            again = batch_engine.execute(spec.plan)
            assert again.rows == expected.rows
            assert again.server_ms == expected.server_ms


# ---------------------------------------------------------------------------
# End-to-end identity: XML bytes and report figures


class TestEndToEndIdentity:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        index=st.integers(min_value=0, max_value=10 ** 9),
        batch_size=st.sampled_from(BATCH_SIZES),
    )
    def test_random_partition_xml_identity(
        self, tiny_db, tiny_estimator, q1_partitions, index, batch_size
    ):
        partition = q1_partitions[index % len(q1_partitions)]
        tuple_result = fresh_view(tiny_db, tiny_estimator).materialize(
            partition, engine="tuple"
        )
        batch_result = fresh_view(tiny_db, tiny_estimator).materialize(
            partition, engine="batch", batch_size=batch_size
        )
        assert batch_result.xml == tuple_result.xml
        assert (
            batch_result.report.query_ms == tuple_result.report.query_ms
        )
        assert (
            batch_result.report.transfer_ms
            == tuple_result.report.transfer_ms
        )
        assert (
            [s.server_ms for s in batch_result.report.streams]
            == [s.server_ms for s in tuple_result.report.streams]
        )

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        batch_size=st.sampled_from(BATCH_SIZES),
        workers=st.sampled_from([2, 4]),
    )
    def test_concurrent_dispatch_identity(
        self, tiny_db, tiny_estimator, baseline, batch_size, workers
    ):
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned", engine="batch", batch_size=batch_size,
            workers=workers,
        )
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms
        assert result.report.transfer_ms == baseline.report.transfer_ms

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=30),
        batch_size=st.sampled_from(BATCH_SIZES),
    )
    def test_faulted_replicated_dispatch_identity(
        self, tiny_db, tiny_estimator, baseline, seed, batch_size
    ):
        """Faults + replicas + retries around the batch engine leave the
        document and figures identical to the tuple fault-free run.  Retry
        exhaustion is the retry machinery's own terminal outcome, not the
        identity property, so such draws are rejected."""
        view = fresh_view(tiny_db, tiny_estimator)
        try:
            result = view.materialize(
                "fully-partitioned", engine="batch", batch_size=batch_size,
                replicas=2, workers=2,
                faults=FaultPolicy(seed=seed, error_rate=0.3),
                retry=RetryPolicy(max_attempts=6),
            )
        except TransientConnectionError:
            assume(False)
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms
        assert result.report.transfer_ms == baseline.report.transfer_ms


# ---------------------------------------------------------------------------
# Mode plumbing and validation


class TestModePlumbing:
    def test_engine_modes_constant(self):
        assert set(ENGINE_MODES) == {"batch", "tuple"}

    def test_invalid_mode_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="engine mode"):
            QueryEngine(tiny_db, engine="vectorized")
        engine = QueryEngine(tiny_db)
        plan = Scan(tiny_db.schema.table("Region"), "r")
        with pytest.raises(ValueError, match="engine mode"):
            engine.execute(plan, engine="columnar")

    def test_connection_forwards_defaults(self, tiny_db):
        connection = Connection(
            tiny_db, CostModel(), engine="tuple", batch_size=64
        )
        assert connection.engine.default_engine == "tuple"
        assert connection.engine.default_batch_size == 64

    def test_execution_options_carry_engine_knobs(self):
        options = ExecutionOptions(engine="batch", batch_size=128)
        assert options.engine == "batch"
        assert options.batch_size == 128

    def test_cli_parses_engine_flags(self):
        args = build_parser().parse_args(
            ["materialize", "--engine", "tuple", "--batch-size", "32"]
        )
        assert args.engine == "tuple"
        assert args.batch_size == 32
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["materialize", "--engine", "columnar"]
            )

    def test_per_call_override_beats_default(self, tiny_db):
        plan = Scan(tiny_db.schema.table("Region"), "r")
        engine = QueryEngine(tiny_db, engine="batch")
        tuple_result = engine.execute(plan, engine="tuple")
        batch_result = engine.execute(plan, engine="batch")
        assert tuple_result.rows == batch_result.rows
        assert tuple_result.server_ms == batch_result.server_ms

    def test_node_cache_clears_on_database_mutation(self, tiny_db):
        plan = Scan(tiny_db.schema.table("Region"), "r")
        engine = QueryEngine(tiny_db, engine="batch")
        before = engine.execute(plan)
        assert engine._node_results  # populated by the run
        tiny_db.insert("Region", 999999, "zz-new-region")
        after = engine.execute(plan)
        reference = QueryEngine(tiny_db, engine="tuple").execute(plan)
        assert after.rows == reference.rows
        assert len(after.rows) == len(before.rows) + 1
