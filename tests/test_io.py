"""Tests for CSV/TBL data import/export (repro.relational.io)."""

import io

import pytest

from repro.common.errors import SchemaError
from repro.relational.io import (
    dump_directory,
    dump_table,
    dump_tbl_directory,
    format_value,
    load_directory,
    load_table,
    load_tbl_directory,
    parse_value,
)
from repro.relational.types import SqlType
from repro.tpch.schema import tpch_schema


class TestValueConversion:
    def test_parse_types(self):
        import datetime

        assert parse_value("42", SqlType.INTEGER) == 42
        assert parse_value("3.5", SqlType.DECIMAL) == 3.5
        assert parse_value("x", SqlType.VARCHAR) == "x"
        assert parse_value("2001-05-21", SqlType.DATE) == datetime.date(2001, 5, 21)

    def test_empty_is_null(self):
        assert parse_value("", SqlType.INTEGER) is None
        with pytest.raises(SchemaError):
            parse_value("", SqlType.INTEGER, nullable=False)

    def test_format_round_trip(self):
        import datetime

        for value, sql_type in [
            (42, SqlType.INTEGER),
            (3.5, SqlType.DECIMAL),
            ("abc", SqlType.VARCHAR),
            (datetime.date(2001, 5, 21), SqlType.DATE),
        ]:
            assert parse_value(format_value(value), sql_type) == value
        assert format_value(None) == ""


class TestTableIo:
    def test_load_table(self, tiny_db):
        from repro.relational.database import Database

        db = Database(tpch_schema())
        n = load_table(db, "Region", ["1,AFRICA", "2,ASIA"])
        assert n == 2
        assert db.table("Region").rows == [(1, "AFRICA"), (2, "ASIA")]

    def test_header_skipped(self):
        from repro.relational.database import Database

        db = Database(tpch_schema())
        load_table(db, "Region", ["regionkey,name", "1,AFRICA"], header=True)
        assert len(db.table("Region")) == 1

    def test_dbgen_trailing_pipe(self):
        from repro.relational.database import Database

        db = Database(tpch_schema())
        load_table(db, "Region", ["1|AFRICA|"], delimiter="|")
        assert db.table("Region").rows == [(1, "AFRICA")]

    def test_field_count_mismatch(self):
        from repro.relational.database import Database

        db = Database(tpch_schema())
        with pytest.raises(SchemaError, match="expected 2 fields"):
            load_table(db, "Region", ["1,AFRICA,extra,junk"])

    def test_dump_table(self, tiny_db):
        sink = io.StringIO()
        n = dump_table(tiny_db, "Region", sink, header=True)
        lines = sink.getvalue().splitlines()
        assert lines[0] == "regionkey,name"
        assert len(lines) == n + 1


class TestDirectoryRoundTrip:
    def test_csv_round_trip(self, tiny_db, tmp_path):
        written = dump_directory(tiny_db, tmp_path / "csv")
        assert written["Supplier"] == len(tiny_db.table("Supplier"))
        reloaded = load_directory(tpch_schema(), tmp_path / "csv")
        for name in tpch_schema().table_names:
            assert reloaded.table(name).rows == tiny_db.table(name).rows

    def test_tbl_round_trip(self, tiny_db, tmp_path):
        dump_tbl_directory(tiny_db, tmp_path / "tbl")
        assert (tmp_path / "tbl" / "LineItem.tbl").exists()
        reloaded = load_tbl_directory(tpch_schema(), tmp_path / "tbl")
        assert reloaded.table("LineItem").rows == tiny_db.table("LineItem").rows

    def test_missing_files_leave_tables_empty(self, tmp_path):
        (tmp_path / "Region.csv").write_text("1,AFRICA\n")
        db = load_directory(tpch_schema(), tmp_path, check=False)
        assert len(db.table("Region")) == 1
        assert len(db.table("Supplier")) == 0

    def test_check_verifies_foreign_keys(self, tmp_path):
        (tmp_path / "Nation.csv").write_text("1,GHOSTLAND,99\n")
        with pytest.raises(SchemaError, match="dangling"):
            load_directory(tpch_schema(), tmp_path)

    def test_loaded_database_runs_views(self, tiny_db, tmp_path):
        """A dumped-and-reloaded database materializes identical XML."""
        from repro.bench.queries import QUERY_1, load_view
        from repro.core.partition import unified_partition
        from repro.core.sqlgen import SqlGenerator
        from repro.relational.connection import Connection
        from repro.relational.engine import CostModel
        from repro.xmlgen.tagger import tag_streams

        dump_directory(tiny_db, tmp_path / "data")
        reloaded = load_directory(tpch_schema(), tmp_path / "data")

        def materialize(db):
            conn = Connection(db, CostModel())
            tree = load_view(QUERY_1, db.schema)
            generator = SqlGenerator(tree, db.schema)
            specs = generator.streams_for_partition(unified_partition(tree))
            streams = [conn.execute(s.plan) for s in specs]
            return tag_streams(tree, specs, streams, root_tag="v")[0]

        assert materialize(reloaded) == materialize(tiny_db)


class TestConnectionSqlConsole:
    def test_sql_text_execution(self, tiny_conn, tiny_db):
        stream = tiny_conn.sql(
            "SELECT s.suppkey AS k FROM Supplier s WHERE s.suppkey <= 3 "
            "ORDER BY k NULLS FIRST"
        )
        assert [r[0] for r in stream] == [1, 2, 3]
        assert stream.sql is not None


class TestViewTreeRender:
    def test_fig6_rendering(self, q1_tree):
        text = q1_tree.render()
        lines = text.splitlines()
        assert lines[0].startswith("S1 <supplier>")
        assert any("(*) S1.4 <part>" in line for line in lines)
        assert any("└─" in line for line in lines)
        assert "suppkey(1,1)" in text

    def test_render_without_args(self, q1_tree):
        text = q1_tree.render(show_args=False)
        assert "suppkey(1,1)" not in text
        assert "<supplier>" in text
