"""Shared fixtures: a tiny deterministic TPC-H database, the workload view
trees, and ready-made connections/estimators.

The ``tiny`` scale keeps integration tests fast while preserving every
structural property (suppliers without parts, parts without orders, etc.).
"""

import pytest

from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.relational.estimator import CostEstimator
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.tpch.schema import tpch_schema
from repro.bench.queries import QUERY_1, QUERY_2, load_view

TINY_SCALE = TpchScale(suppliers=8, parts=16, customers=10, orders=40)


@pytest.fixture(scope="session")
def schema():
    return tpch_schema()


@pytest.fixture(scope="session")
def tiny_db():
    return TpchGenerator(scale=TINY_SCALE, seed=42).generate()


@pytest.fixture(scope="session")
def tiny_conn(tiny_db):
    return Connection(tiny_db, CostModel())


@pytest.fixture(scope="session")
def tiny_estimator(tiny_db):
    return CostEstimator(tiny_db, CostModel())


@pytest.fixture(scope="session")
def q1_tree(tiny_db):
    return load_view(QUERY_1, tiny_db.schema)


@pytest.fixture(scope="session")
def q2_tree(tiny_db):
    return load_view(QUERY_2, tiny_db.schema)
