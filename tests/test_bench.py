"""Tests for the experiment harness (repro.bench)."""

import pytest

from repro.core.partition import (
    Partition,
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle
from repro.bench.queries import QUERY_1, QUERY_2, load_view
from repro.bench.report import format_series, format_sweep_table, summarize_sweep
from repro.bench.sweep import (
    PlanTiming,
    SweepResult,
    run_single_partition,
    sweep_partitions,
)


class TestRunSinglePartition:
    def test_timing_fields(self, q1_tree, tiny_db, tiny_conn):
        timing = run_single_partition(
            q1_tree, tiny_db.schema, tiny_conn, fully_partitioned(q1_tree)
        )
        assert timing.n_streams == 10
        assert timing.query_ms > 0
        assert timing.transfer_ms > 0
        assert timing.total_ms == timing.query_ms + timing.transfer_ms
        assert not timing.timed_out

    def test_timeout_detected(self, q1_tree, tiny_db, tiny_conn):
        timing = run_single_partition(
            q1_tree, tiny_db.schema, tiny_conn, unified_partition(q1_tree),
            budget_ms=0.001,
        )
        assert timing.timed_out
        assert timing.total_ms is None


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self, q1_tree, tiny_db, tiny_conn):
        partitions = [
            fully_partitioned(q1_tree),
            Partition([(1, 1)]),
            Partition([(1, 1), (1, 2), (1, 3)]),
            Partition([(1, 4), (1, 4, 1)]),
        ]
        return sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, partitions=partitions,
            reduce=True,
        )

    def test_all_completed(self, small_sweep):
        assert len(small_sweep.completed()) == 4
        assert small_sweep.timed_out() == []

    def test_fastest(self, small_sweep):
        fastest = small_sweep.fastest(2)
        assert len(fastest) == 2
        assert fastest[0].query_ms <= fastest[1].query_ms

    def test_by_stream_count(self, small_sweep):
        series = small_sweep.by_stream_count()
        assert set(series) == {10, 9, 7, 8}
        assert all(vs == sorted(vs) for vs in series.values())

    def test_timing_for(self, small_sweep, q1_tree):
        timing = small_sweep.timing_for(fully_partitioned(q1_tree))
        assert timing.n_streams == 10
        with pytest.raises(KeyError):
            small_sweep.timing_for(Partition([(1, 4, 2)]))

    def test_progress_callback(self, q1_tree, tiny_db, tiny_conn):
        calls = []
        sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn,
            partitions=[fully_partitioned(q1_tree)],
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 1)]


class TestReporting:
    def test_format_series(self, q1_tree, tiny_db, tiny_conn):
        sweep = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn,
            partitions=[fully_partitioned(q1_tree), Partition([(1, 1)])],
        )
        text = format_series(sweep, "query_ms", title="demo")
        assert "demo" in text
        assert "streams" in text

    def test_format_series_reports_timeouts(self):
        sweep = SweepResult(
            timings=[
                PlanTiming(None, 2, 10.0, 1.0),
                PlanTiming(None, 3, timed_out=True),
            ],
            style=PlanStyle.OUTER_JOIN,
            reduced=False,
        )
        assert "timed out" in format_series(sweep)

    def test_format_sweep_table(self):
        text = format_sweep_table(
            [["a", 1.5, None], ["b", 2.0, 3.0]], ["name", "x", "y"]
        )
        assert "timeout" in text
        assert "name" in text

    def test_summarize_sweep(self, q1_tree, tiny_db, tiny_conn):
        partitions = [fully_partitioned(q1_tree), Partition([(1, 1)])]
        sweep = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, partitions=partitions
        )
        summary = summarize_sweep(
            sweep, {"fully": fully_partitioned(q1_tree)}
        )
        assert summary["optimal"][1] == 1.0
        assert summary["fully"][1] >= 1.0


class TestWorkloadDefinitions:
    def test_query_trees_have_512_plans(self, tiny_db):
        for text in (QUERY_1, QUERY_2):
            tree = load_view(text, tiny_db.schema)
            assert len(tree.edges) == 9


class TestCachedAndParallelSweep:
    @pytest.fixture(scope="class")
    def sample(self, q1_tree):
        return [
            unified_partition(q1_tree),
            fully_partitioned(q1_tree),
            Partition([(1, 1)]),
            Partition([(1, 1), (1, 2), (1, 3)]),
            Partition([(1, 4), (1, 4, 1)]),
            Partition([(1, 4), (1, 4, 2)]),
        ]

    def test_cached_sweep_timings_bit_identical(
        self, q1_tree, tiny_db, tiny_conn, sample
    ):
        kwargs = dict(partitions=sample, reduce=True, budget_ms=50.0)
        uncached = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=False, **kwargs
        )
        cached = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=True, **kwargs
        )
        assert cached.timings == uncached.timings
        assert uncached.cache_stats is None
        assert cached.cache_stats.hits > 0  # subtree queries recur

    def test_workers_match_serial(self, q1_tree, tiny_db, tiny_conn, sample):
        kwargs = dict(partitions=sample, reduce=True, budget_ms=50.0)
        serial = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=False, **kwargs
        )
        threaded = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=False, workers=3,
            **kwargs
        )
        assert threaded.timings == serial.timings  # same values, same order

    def test_workers_with_shared_cache(self, q1_tree, tiny_db, tiny_conn, sample):
        from repro.relational.cache import PlanResultCache

        serial = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=False,
            partitions=sample, reduce=True,
        )
        shared = PlanResultCache()
        first = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=shared, workers=2,
            partitions=sample, reduce=True,
        )
        second = sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn, cache=shared, workers=2,
            partitions=sample, reduce=True,
        )
        assert first.timings == serial.timings
        assert second.timings == serial.timings
        # The second sweep found every plan already cached.
        assert second.cache_stats.misses == first.cache_stats.misses

    def test_sweep_restores_engine_cache(self, q1_tree, tiny_db, tiny_conn):
        before = tiny_conn.engine.cache
        sweep_partitions(
            q1_tree, tiny_db.schema, tiny_conn,
            partitions=[fully_partitioned(q1_tree)],
        )
        assert tiny_conn.engine.cache is before
