"""Tests for the client/server layer (repro.relational.connection)."""

import pytest

from repro.common.errors import PlanError, TimeoutExceeded
from repro.relational.algebra import Scan
from repro.relational.connection import Connection, SourceDescription, TransferModel
from repro.relational.engine import CostModel


@pytest.fixture
def conn(tiny_db):
    return Connection(tiny_db, CostModel())


def supplier_scan(db):
    return Scan(db.schema.table("Supplier"), "s")


class TestTupleStream:
    def test_execute_returns_stream(self, conn, tiny_db):
        stream = conn.execute(supplier_scan(tiny_db), label="suppliers")
        assert len(stream) == len(tiny_db.table("Supplier"))
        assert stream.server_ms > 0
        assert stream.transfer_ms > 0
        assert stream.total_ms == stream.server_ms + stream.transfer_ms
        assert "suppliers" in repr(stream)

    def test_stream_iterable(self, conn, tiny_db):
        stream = conn.execute(supplier_scan(tiny_db))
        assert len(list(stream)) == len(stream)

    def test_budget_propagates(self, conn, tiny_db):
        with pytest.raises(TimeoutExceeded):
            conn.execute(supplier_scan(tiny_db), budget_ms=0.0001)


class TestTransferModel:
    def test_more_rows_cost_more(self, conn, tiny_db):
        small = conn.execute(Scan(tiny_db.schema.table("Region"), "r"))
        large = conn.execute(Scan(tiny_db.schema.table("Orders"), "o"))
        assert large.transfer_ms > small.transfer_ms

    def test_nulls_cheaper_than_values(self, tiny_db):
        model = TransferModel()
        conn = Connection(tiny_db, CostModel(), model)
        scan = Scan(tiny_db.schema.table("Supplier"), "s")
        full = conn._transfer_cost(scan.columns(), [(1, "abc", "xyz", 5)], True)
        nulls = conn._transfer_cost(scan.columns(), [(1, None, None, None)], True)
        assert nulls < full

    def test_wide_row_penalty_only_without_compact(self, tiny_db):
        model = TransferModel(wide_threshold=2, wide_row_factor=1.0)
        conn = Connection(tiny_db, CostModel(), model)
        scan = Scan(tiny_db.schema.table("Supplier"), "s")  # 4 columns
        row = [(1, "a", "b", 2)]
        wide = conn._transfer_cost(scan.columns(), row, compact_rows=False)
        compact = conn._transfer_cost(scan.columns(), row, compact_rows=True)
        assert wide > compact

    def test_no_penalty_below_threshold(self, tiny_db):
        model = TransferModel(wide_threshold=99)
        conn = Connection(tiny_db, CostModel(), model)
        scan = Scan(tiny_db.schema.table("Supplier"), "s")
        row = [(1, "a", "b", 2)]
        assert conn._transfer_cost(scan.columns(), row, False) == pytest.approx(
            conn._transfer_cost(scan.columns(), row, True)
        )


class TestSourceDescription:
    def test_defaults_permit_everything(self):
        SourceDescription().check_plan_features(True, True)

    def test_outer_join_gate(self):
        source = SourceDescription(supports_left_outer_join=False)
        with pytest.raises(PlanError, match="OUTER JOIN"):
            source.check_plan_features(True, False)
        source.check_plan_features(False, True)

    def test_union_gate(self):
        source = SourceDescription(supports_union=False)
        with pytest.raises(PlanError, match="UNION"):
            source.check_plan_features(False, True)
        source.check_plan_features(True, False)
