"""Observability (repro.obs): tracing, metrics, and exporters.

The load-bearing invariants:

* **observation never perturbs the simulation** — with a full tracing
  session attached, the XML document is byte-identical and every
  simulated figure (``query_ms``, ``transfer_ms``, the elapsed
  makespans) is identical to the tracing-off run, over random
  partitions, sequentially and with concurrent dispatch;
* the Chrome-trace export is valid Trace Event JSON and covers the whole
  pipeline — plan, sqlgen, per-stream dispatch (including retries under
  injected faults), merge, tag;
* the metrics snapshot reconciles with the :class:`PlanReport` resilience
  fields — attempts, retries, injected faults, backoff, cache replays —
  with no double counting;
* tracing defaults *off*: the null tracer/metrics are shared singletons
  that allocate nothing.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.core.options import ExecutionOptions
from repro.core.partition import enumerate_partitions
from repro.core.silkroute import SilkRoute
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    ObsOptions,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    obs_parts,
    profile_tree,
)
from repro.relational.cache import PlanResultCache
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.relational.faults import FaultPolicy, RetryPolicy


def fresh_view(tiny_db, tiny_estimator, **silk_kwargs):
    connection = Connection(tiny_db, CostModel())
    silk = SilkRoute(connection, estimator=tiny_estimator, **silk_kwargs)
    return silk.define_view(QUERY_1)


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_spans_nest_and_record(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                inner.set(rows=3)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert outer.children == [inner]
        assert outer.attrs["kind"] == "test"
        assert inner.attrs["rows"] == 3
        assert outer.wall_end_s >= outer.wall_start_s
        assert inner.wall_ms <= outer.wall_ms

    def test_current_tracks_thread_local_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_explicit_parent_attaches_across_threads(self):
        import threading

        tracer = Tracer()
        with tracer.span("dispatch") as dispatch:
            parent = tracer.current()

            def worker():
                with tracer.span("stream:S1", parent=parent):
                    pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert [c.name for c in dispatch.children] == ["stream:S1"]

    def test_set_after_close_and_set_sim(self):
        tracer = Tracer()
        with tracer.span("dispatch") as span:
            pass
        span.set(makespan=True)
        span.set_sim(123.5)
        assert span.attrs["makespan"] is True
        assert span.sim_ms == 123.5

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("stream:S1") as span:
            tracer.event("fault", label="S1", attempt=1)
        assert [e.name for e in span.events] == ["fault"]
        assert span.events[0].attrs["attempt"] == 1

    def test_find_matches_name_and_prefix(self):
        tracer = Tracer()
        with tracer.span("dispatch"):
            with tracer.span("stream:S1"):
                pass
            with tracer.span("stream:S2"):
                pass
        assert len(tracer.find("stream")) == 2
        assert len(tracer.find("stream:S1")) == 1
        assert len(tracer.find("dispatch")) == 1
        assert tracer.find("nonexistent") == []

    def test_exception_marks_span_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("x")
        assert span.attrs["error"] == "ValueError"
        assert span.wall_end_s is not None
        assert tracer.current() is None


class TestNullObjects:
    def test_null_tracer_is_a_shared_noop(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", attr=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(rows=1)
            s.set_sim(5.0)
            s.event("x")
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.current() is None

    def test_null_metrics_is_a_shared_noop(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("c")
        NULL_METRICS.gauge("g", 1)
        NULL_METRICS.observe("h", 1.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_obs_parts_resolves_none_to_singletons(self):
        assert obs_parts(None) == (NULL_TRACER, NULL_METRICS)
        obs = ObsOptions()
        assert obs_parts(obs) == (obs.tracer, obs.metrics)

    def test_disabled_halves_use_singletons(self):
        obs = ObsOptions(trace=False, metrics=False)
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is NULL_METRICS
        assert obs.enabled is False
        assert ObsOptions(trace=True, metrics=False).enabled is True


class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 2)
        reg.gauge("g", 1.0)
        reg.gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 2.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 4.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert hist["mean"] == 2.0

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap["counters"]["c"] == 1


# ---------------------------------------------------------------------------
# ExecutionOptions integration


class TestOptionsIntegration:
    def test_obs_options_embed_in_frozen_options(self):
        obs = ObsOptions()
        opts = ExecutionOptions(obs=obs)
        assert opts.obs is obs
        hash(opts)  # sessions hash by identity
        assert ExecutionOptions(obs=obs) != ExecutionOptions(obs=ObsOptions())

    def test_report_carries_the_live_session(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(options=ExecutionOptions(obs=obs))
        assert result.report.obs is obs
        assert result.report.obs.profile()
        assert obs.tracer.find("materialize")

    def test_default_execution_attaches_nothing(self, tiny_db, tiny_estimator):
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize()
        assert result.report.obs is None


# ---------------------------------------------------------------------------
# The identity contract: observation never perturbs the simulation


class TestObservationIdentity:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_tracing_on_changes_nothing(self, data, tiny_db, tiny_estimator,
                                        q1_tree):
        partitions = list(enumerate_partitions(q1_tree))
        partition = data.draw(st.sampled_from(partitions), label="partition")
        workers = data.draw(st.sampled_from([None, 2, 4]), label="workers")

        baseline = fresh_view(tiny_db, tiny_estimator).materialize(
            partition, workers=workers,
        )
        obs = ObsOptions()
        traced = fresh_view(tiny_db, tiny_estimator).materialize(
            partition, workers=workers, options=ExecutionOptions(obs=obs),
        )

        assert traced.xml == baseline.xml
        assert traced.report.query_ms == baseline.report.query_ms
        assert traced.report.transfer_ms == baseline.report.transfer_ms
        assert (
            traced.report.elapsed_query_ms == baseline.report.elapsed_query_ms
        )
        assert (
            traced.report.elapsed_total_ms == baseline.report.elapsed_total_ms
        )
        # And the trace actually recorded the run.
        assert obs.tracer.find("materialize")
        assert len(obs.tracer.find("stream")) == traced.report.n_streams

    def test_identity_holds_under_faults(self, tiny_db, tiny_estimator):
        knobs = dict(
            faults=FaultPolicy(seed=7, error_rate=0.3),
            retry=RetryPolicy(max_attempts=5),
            workers=3,
        )
        baseline = fresh_view(tiny_db, tiny_estimator).materialize(
            "fully-partitioned", **knobs,
        )
        obs = ObsOptions()
        traced = fresh_view(tiny_db, tiny_estimator).materialize(
            "fully-partitioned", options=ExecutionOptions(obs=obs), **knobs,
        )
        assert traced.xml == baseline.xml
        assert traced.report.query_ms == baseline.report.query_ms
        assert traced.report.transfer_ms == baseline.report.transfer_ms
        assert (
            traced.report.elapsed_total_ms == baseline.report.elapsed_total_ms
        )
        assert traced.report.backoff_ms == baseline.report.backoff_ms

    def test_sweep_timings_identical_under_obs(self, tiny_db, tiny_estimator,
                                               q1_tree, schema):
        partitions = list(enumerate_partitions(q1_tree))[:16]
        # Both runs pass an options object: an explicit ExecutionOptions
        # supplies its own reduce default, overriding the sweep's
        # per-method reduce=False.
        baseline = sweep_partitions(
            q1_tree, schema, Connection(tiny_db, CostModel()),
            partitions=partitions, options=ExecutionOptions(),
        )
        obs = ObsOptions()
        traced = sweep_partitions(
            q1_tree, schema, Connection(tiny_db, CostModel()),
            partitions=partitions, options=ExecutionOptions(obs=obs),
        )
        assert (
            [t.total_ms for t in traced.timings]
            == [t.total_ms for t in baseline.timings]
        )
        assert len(obs.tracer.find("partition")) == len(partitions)
        sweep_span = obs.tracer.find("sweep")[0]
        assert sweep_span.attrs["plans"] == len(partitions)
        assert obs.metrics.snapshot()["counters"]["sweep.plans"] == len(
            partitions
        )


# ---------------------------------------------------------------------------
# Chrome-trace export


class TestChromeTrace:
    @pytest.fixture
    def traced_run(self, tiny_db, tiny_estimator):
        """A materialization under faults, so the trace includes a retry."""
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned",
            options=ExecutionOptions(
                obs=obs,
                faults=FaultPolicy(seed=0, fail_streams={"S1": 1}),
                retry=RetryPolicy(max_attempts=3),
            ),
        )
        return obs, result

    def test_json_is_valid_and_covers_the_pipeline(self, traced_run):
        obs, result = traced_run
        events = json.loads(obs.chrome_trace_json())
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        # Full pipeline coverage: sqlgen, per-stream dispatch, merge, tag.
        for required in ("materialize", "sqlgen", "dispatch", "merge", "tag"):
            assert required in names, f"missing {required} span"
        assert any(n.startswith("stream:") for n in names)
        # The injected fault produced a retry span and a fault instant.
        assert "retry" in names
        assert any(
            e["ph"] == "i" and e["name"].endswith("fault") for e in events
        )

    def test_events_are_well_formed(self, traced_run):
        obs, _ = traced_run
        events = obs.chrome_trace()
        for event in events:
            assert event["ph"] in ("X", "i", "M")
            if event["ph"] == "M":
                continue
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Complete events for every recorded span.
        spans = list(obs.tracer.walk())
        assert len([e for e in events if e["ph"] == "X"]) == len(spans)
        # Thread-name metadata for every tid used.
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        named = {e["tid"] for e in events if e["ph"] == "M"}
        assert tids <= named

    def test_sim_ms_rides_in_args(self, traced_run):
        obs, result = traced_run
        events = obs.chrome_trace()
        stream_events = [
            e for e in events
            if e["ph"] == "X" and e["name"].startswith("stream:")
        ]
        assert stream_events
        assert all("sim_ms" in e["args"] for e in stream_events)

    def test_greedy_trace_includes_plan_span(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        view.materialize(options=ExecutionOptions(obs=obs))
        names = {e["name"] for e in chrome_trace(obs.tracer)}
        assert "plan" in names

    def test_profile_tree_renders(self, traced_run):
        obs, _ = traced_run
        text = obs.profile()
        assert "materialize" in text
        assert "stream:" in text
        assert "sim" in text  # simulated durations are shown

    def test_metrics_json_round_trips(self, traced_run):
        obs, _ = traced_run
        snap = json.loads(metrics_json(obs.metrics))
        assert set(snap) == {"counters", "gauges", "histograms"}


# ---------------------------------------------------------------------------
# Metrics reconciliation with PlanReport — no double counting


class TestMetricsReconciliation:
    def _counters(self, obs):
        return obs.metrics.snapshot()["counters"]

    def test_fault_run_reconciles(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned",
            options=ExecutionOptions(
                obs=obs,
                faults=FaultPolicy(seed=3, error_rate=0.4),
                retry=RetryPolicy(max_attempts=6),
            ),
        )
        report = result.report
        counters = self._counters(obs)
        assert counters["dispatch.attempts"] == report.attempts
        assert counters.get("dispatch.retries", 0) == report.retries
        assert counters.get("faults.injected", 0) == report.faults_injected
        assert math.isclose(
            counters.get("retry.backoff_ms", 0.0), report.backoff_ms
        )
        assert math.isclose(
            counters.get("faults.latency_ms", 0.0), report.fault_latency_ms
        )
        assert counters["streams.executed"] == report.n_streams
        assert counters["tuples.transferred"] == sum(
            s.rows for s in result.report.streams
        )

    def test_clean_run_reconciles(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned", workers=4,
            options=ExecutionOptions(obs=obs),
        )
        counters = self._counters(obs)
        assert counters["dispatch.attempts"] == result.report.attempts
        assert "dispatch.retries" not in counters
        assert "faults.injected" not in counters
        hist = obs.metrics.snapshot()["histograms"]
        assert hist["stream.query_ms"]["count"] == result.report.n_streams
        assert math.isclose(
            hist["stream.query_ms"]["sum"], result.report.query_ms
        )
        assert math.isclose(
            hist["stream.transfer_ms"]["sum"], result.report.transfer_ms
        )

    def test_cache_hits_reconcile(self, tiny_db, tiny_estimator):
        cache = PlanResultCache()
        view = fresh_view(tiny_db, tiny_estimator, cache=cache)
        obs = ObsOptions()
        opts = ExecutionOptions(obs=obs)
        first = view.materialize("fully-partitioned", options=opts)
        second = view.materialize("fully-partitioned", options=opts)
        assert second.xml == first.xml
        counters = self._counters(obs)
        gauges = obs.metrics.snapshot()["gauges"]
        stats = cache.stats()
        # Published gauges mirror the cache's own lifetime counters.
        assert gauges["plan_cache.hits"] == stats.hits
        assert gauges["plan_cache.misses"] == stats.misses
        assert gauges["plan_cache.hit_rate"] == stats.hit_rate
        # Engine-level hit/miss counters match exactly — each execution is
        # counted once, as a hit or a miss, never both.
        assert counters["plan_cache.hits"] == stats.hits
        assert counters["plan_cache.misses"] == stats.misses
        assert stats.hits == second.report.n_streams
        assert (
            counters["dispatch.attempts"]
            == first.report.attempts + second.report.attempts
        )

    def test_node_cache_counters_reconcile(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        connection = Connection(tiny_db, CostModel())
        silk = SilkRoute(connection, estimator=tiny_estimator)
        view = silk.define_view(QUERY_1)
        opts = ExecutionOptions(obs=obs)
        first = view.materialize("fully-partitioned", options=opts)
        second = view.materialize("fully-partitioned", options=opts)
        assert second.xml == first.xml
        counters = self._counters(obs)
        stats = connection.engine.node_cache.stats()
        # Per-event counters match the cache's lifetime totals exactly —
        # every lookup counted once, as a hit or a miss, never both.
        assert stats.hits > 0 and stats.misses > 0
        assert counters["node_cache.hits"] == stats.hits
        assert counters["node_cache.misses"] == stats.misses
        assert counters["node_cache.stores"] == stats.stores
        assert counters.get("node_cache.evictions", 0) == stats.evictions
        assert (
            counters.get("node_cache.invalidations", 0) == stats.invalidations
        )
        gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["node_cache.hits"] == stats.hits
        assert gauges["node_cache.entries"] == stats.entries

    def test_cache_replays_shield_a_faulty_source(self, tiny_db,
                                                  tiny_estimator):
        cache = PlanResultCache()
        view = fresh_view(tiny_db, tiny_estimator, cache=cache)
        obs = ObsOptions()
        warm = view.materialize(
            "fully-partitioned", options=ExecutionOptions(obs=obs),
        )
        # With the cache warm, a source failing on every attempt is never
        # contacted: the resilient dispatcher short-circuits to replay.
        shielded = view.materialize(
            "fully-partitioned",
            options=ExecutionOptions(
                obs=obs, faults=FaultPolicy(seed=1, error_rate=1.0),
            ),
        )
        assert shielded.xml == warm.xml
        counters = self._counters(obs)
        # Replays are counted as replays, not as source attempts, and no
        # faults fired — the report agrees.
        assert counters["cache.replays"] == shielded.report.n_streams
        assert shielded.report.attempts == 0
        assert shielded.report.faults_injected == 0
        assert "faults.injected" not in counters
        assert (
            counters["dispatch.attempts"]
            == warm.report.attempts + shielded.report.attempts
        )

    def test_hedged_run_reconciles(self, tiny_db, tiny_estimator):
        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        result = view.materialize(
            "fully-partitioned",
            options=ExecutionOptions(
                obs=obs, replicas=3, hedge_ms=5.0,
                faults=FaultPolicy(seed=3, error_rate=0.3, latency_ms=20.0),
                retry=RetryPolicy(max_attempts=5),
            ),
        )
        report = result.report
        counters = self._counters(obs)
        assert report.hedges > 0
        assert counters["dispatch.attempts"] == report.attempts
        assert counters.get("dispatch.retries", 0) == report.retries
        assert counters.get("faults.injected", 0) == report.faults_injected
        assert counters.get("dispatch.failovers", 0) == report.failovers
        assert counters.get("dispatch.hedges", 0) == report.hedges
        assert counters.get("dispatch.hedge_wins", 0) == report.hedge_wins
        assert math.isclose(
            counters.get("hedge.wait_ms", 0.0), report.hedge_wait_ms
        )
        assert math.isclose(
            counters.get("retry.backoff_ms", 0.0), report.backoff_ms
        )
        assert math.isclose(
            counters.get("faults.latency_ms", 0.0), report.fault_latency_ms
        )
        # The abandoned side of a hedge never charges server time: the
        # per-stream histogram sums exactly to the report's totals, which
        # in turn are byte-for-byte the fault-free figures.
        hist = obs.metrics.snapshot()["histograms"]
        assert hist["stream.query_ms"]["count"] == report.n_streams
        assert math.isclose(hist["stream.query_ms"]["sum"], report.query_ms)
        assert math.isclose(
            hist["stream.transfer_ms"]["sum"], report.transfer_ms
        )
        clean = fresh_view(tiny_db, tiny_estimator).materialize(
            "fully-partitioned",
        )
        assert result.xml == clean.xml
        assert math.isclose(report.query_ms, clean.report.query_ms)

    def test_timeout_counts_no_phantom_attempts(self, tiny_db, tiny_estimator):
        from repro.common.errors import TimeoutExceeded

        obs = ObsOptions()
        view = fresh_view(tiny_db, tiny_estimator)
        with pytest.raises(TimeoutExceeded) as info:
            view.materialize(
                "fully-partitioned",
                options=ExecutionOptions(obs=obs, budget_ms=0.01),
            )
        report = info.value.report
        counters = self._counters(obs)
        # The interrupted attempt appears in neither the report nor the
        # metrics — they agree exactly.
        assert counters.get("dispatch.attempts", 0) == report.attempts
        dispatch = obs.tracer.find("dispatch")[0]
        assert dispatch.attrs.get("timed_out") is True


# ---------------------------------------------------------------------------
# Export helpers on empty sessions


class TestEmptySession:
    def test_exports_work_before_any_run(self):
        obs = ObsOptions()
        assert json.loads(obs.chrome_trace_json()) == []
        assert profile_tree(obs.tracer) == ""
        assert chrome_trace_json(obs.tracer) == "[]"
        snap = obs.snapshot()
        assert snap.trace == ()
        assert snap.metrics["counters"] == {}
