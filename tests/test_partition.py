"""Tests for view-tree partitioning (repro.core.partition)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.partition import (
    Partition,
    enumerate_partitions,
    fully_partitioned,
    partition_subtrees,
    unified_partition,
)


class TestPartition:
    def test_equality_and_hash(self):
        a = Partition([(1, 2), (1, 4)])
        b = Partition([(1, 4), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert len(a) == 2

    def test_keeps(self, q1_tree):
        partition = Partition([(1, 4)])
        assert partition.keeps(q1_tree.node((1, 4)))
        assert not partition.keeps(q1_tree.node((1, 2)))

    def test_repr(self):
        assert "S1.4" in repr(Partition([(1, 4)]))


class TestNamedStrategies:
    def test_unified_keeps_all(self, q1_tree):
        assert len(unified_partition(q1_tree)) == 9

    def test_fully_partitioned_keeps_none(self, q1_tree):
        assert len(fully_partitioned(q1_tree)) == 0


class TestEnumeration:
    def test_count_is_two_to_the_edges(self, q1_tree):
        """2^9 = 512 plans (Sec. 2)."""
        partitions = list(enumerate_partitions(q1_tree))
        assert len(partitions) == 512
        assert len(set(partitions)) == 512

    def test_extremes_included(self, q1_tree):
        partitions = set(enumerate_partitions(q1_tree))
        assert unified_partition(q1_tree) in partitions
        assert fully_partitioned(q1_tree) in partitions


class TestSubtrees:
    def test_unified_single_subtree(self, q1_tree):
        subtrees = partition_subtrees(q1_tree, unified_partition(q1_tree))
        assert len(subtrees) == 1
        assert subtrees[0].root is q1_tree.root
        assert len(subtrees[0].nodes) == 10

    def test_fully_partitioned_ten_subtrees(self, q1_tree):
        subtrees = partition_subtrees(q1_tree, fully_partitioned(q1_tree))
        assert len(subtrees) == 10
        assert all(len(s.nodes) == 1 for s in subtrees)

    def test_stream_count_is_nodes_minus_edges(self, q1_tree):
        partition = Partition([(1, 2), (1, 4), (1, 4, 2)])
        subtrees = partition_subtrees(q1_tree, partition)
        assert len(subtrees) == 10 - 3

    def test_document_order(self, q1_tree):
        subtrees = partition_subtrees(q1_tree, Partition([(1, 4, 1)]))
        roots = [s.root.sfi for s in subtrees]
        assert roots == sorted(roots, key=lambda s: [int(x) for x in s[1:].split(".")])

    def test_kept_children(self, q1_tree):
        partition = Partition([(1, 4), (1, 4, 1)])
        [*_, part_subtree] = [
            s for s in partition_subtrees(q1_tree, partition)
            if s.contains(q1_tree.node((1, 4)))
        ]
        part = q1_tree.node((1, 4))
        kept = part_subtree.kept_children(part)
        assert [c.sfi for c in kept] == ["S1.4.1"]

    def test_max_index_length(self, q1_tree):
        partition = Partition([(1, 4), (1, 4, 2)])
        subtree = next(
            s for s in partition_subtrees(q1_tree, partition)
            if s.root is q1_tree.root
        )
        assert subtree.max_index_length() == 3

    def test_invalid_edge_rejected(self, q1_tree):
        with pytest.raises(PlanError):
            partition_subtrees(q1_tree, Partition([(9, 9)]))

    def test_root_edge_rejected(self, q1_tree):
        with pytest.raises(PlanError):
            partition_subtrees(q1_tree, Partition([(1,)]))


@settings(max_examples=60)
@given(st.sets(st.sampled_from([
    (1, 1), (1, 2), (1, 3), (1, 4), (1, 4, 1), (1, 4, 2),
    (1, 4, 2, 1), (1, 4, 2, 2), (1, 4, 2, 3),
])))
def test_subtrees_partition_nodes(q1_tree, kept):
    """Any edge subset yields connected components covering every node
    exactly once, with #components = #nodes - #edges."""
    partition = Partition(kept)
    subtrees = partition_subtrees(q1_tree, partition)
    seen = []
    for subtree in subtrees:
        for node in subtree.nodes:
            seen.append(node.index)
        # connectivity: every non-root member's parent is in the subtree
        for node in subtree.nodes:
            if node is not subtree.root:
                assert subtree.contains(node.parent)
    assert sorted(seen) == sorted(n.index for n in q1_tree.nodes)
    assert len(subtrees) == 10 - len(kept)
