"""Fault injection, retry/backoff, circuit breaking, and adaptive plan
degradation (repro.relational.faults + the resilient dispatch and facade).

The load-bearing invariants:

* fault draws are deterministic and order-independent — a seed replays
  bit-identically, sequentially or concurrently;
* the document produced under faults + retries is byte-identical to the
  fault-free run, and the paper's ``query_ms``/``transfer_ms`` figures are
  untouched (resilience overhead is charged to the elapsed makespan only);
* fault outcomes are never stored in the plan-result cache, and a cache
  hit never counts as an attempt;
* a stream that exhausts its retries degrades into finer streams when a
  finer split exists, and otherwise propagates a
  ``TransientConnectionError`` carrying the stream label and the partial
  report.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.queries import QUERY_1
from repro.bench.sweep import sweep_partitions
from repro.common.errors import TransientConnectionError
from repro.core.options import ExecutionOptions
from repro.core.silkroute import SilkRoute
from repro.relational.cache import PlanResultCache, resolve_cache
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.relational.faults import (
    NO_RETRY,
    CircuitBreaker,
    FaultPolicy,
    RetryPolicy,
)


@pytest.fixture
def silk(tiny_db, tiny_estimator):
    # A fresh connection per test: fault policies and caches installed
    # here must not leak into the shared session connection.
    connection = Connection(tiny_db, CostModel())
    return SilkRoute(connection, estimator=tiny_estimator)


@pytest.fixture
def view(silk):
    return silk.define_view(QUERY_1)


class TestFaultPolicy:
    def test_draws_are_deterministic(self):
        policy = FaultPolicy(seed=11, error_rate=0.5, latency_ms=20.0)
        first = [policy.decide("S1", "fp", attempt) for attempt in (1, 2, 3)]
        second = [policy.decide("S1", "fp", attempt) for attempt in (1, 2, 3)]
        assert first == second

    def test_draws_vary_by_label_fingerprint_attempt(self):
        policy = FaultPolicy(seed=11, error_rate=0.5)
        draws = {
            (label, fp, attempt): policy.decide(label, fp, attempt).fail
            for label in ("S1", "S2")
            for fp in ("fpA", "fpB")
            for attempt in (1, 2, 3, 4)
        }
        # Not all identical: the key actually feeds the PRNG.
        assert len(set(draws.values())) == 2

    def test_zero_rate_never_fails(self):
        policy = FaultPolicy(seed=3, error_rate=0.0)
        assert not any(
            policy.decide("S1", "fp", attempt).fail for attempt in range(1, 50)
        )

    def test_pinned_stream_fails_up_to_limit(self):
        policy = FaultPolicy(seed=0, fail_streams={"S1": 2})
        assert policy.decide("S1", "fp", 1).fail
        assert policy.decide("S1", "fp", 2).fail
        assert not policy.decide("S1", "fp", 3).fail
        assert not policy.decide("S2", "fp", 1).fail

    def test_backoff_is_exponential_and_deterministic(self):
        retry = RetryPolicy(base_ms=100.0, multiplier=2.0, jitter=0.0)
        assert retry.backoff_for("S1", 1) == 100.0
        assert retry.backoff_for("S1", 2) == 200.0
        assert retry.backoff_for("S1", 3) == 400.0
        jittered = RetryPolicy(base_ms=100.0, multiplier=2.0, jitter=0.25)
        first = jittered.backoff_for("S1", 1, seed=5)
        assert first == jittered.backoff_for("S1", 1, seed=5)
        assert 75.0 <= first <= 125.0

    def test_circuit_breaker_trips_and_resets(self):
        breaker = CircuitBreaker(threshold=2)
        assert breaker.allow("fp")
        breaker.record_failure("fp")
        assert breaker.allow("fp")
        breaker.record_failure("fp")
        assert not breaker.allow("fp")
        assert breaker.trips == 1
        breaker.reset()
        assert breaker.allow("fp")


class TestCircuitBreakerStates:
    def test_closed_open_half_open_closed(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2)
        assert breaker.state("fp") == "closed"
        breaker.record_failure("fp")
        assert breaker.state("fp") == "closed"
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        # Two denials stand in for the cooldown period.
        assert not breaker.allow("fp")
        assert not breaker.allow("fp")
        assert breaker.state("fp") == "half-open"
        # Half-open admits exactly one probe; the denial count restarts.
        assert breaker.allow("fp")
        assert breaker.state("fp") == "open"
        # A successful probe closes the circuit again.
        breaker.record_success("fp")
        assert breaker.state("fp") == "closed"
        assert breaker.allow("fp")

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        assert not breaker.allow("fp")
        assert breaker.state("fp") == "half-open"
        assert breaker.allow("fp")        # the probe
        breaker.record_failure("fp")      # ...which fails
        assert breaker.state("fp") == "open"
        assert not breaker.allow("fp")    # sits out another cooldown
        assert breaker.allow("fp")        # before the next probe

    def test_no_cooldown_preserves_legacy_behaviour(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        assert not any(breaker.allow("fp") for _ in range(10))
        assert breaker.fast_failures == 10

    def test_state_has_no_side_effects(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_failure("fp")
        for _ in range(10):
            assert breaker.state("fp") == "open"
        # state() never advanced the denial count or counted fast failures.
        assert breaker.fast_failures == 0
        assert not breaker.allow("fp")


class TestRetryDeadline:
    """Budget exhaustion mid-backoff: a retry whose wait would cross the
    deadline is abandoned; a wait landing *exactly on* it is allowed."""

    @pytest.fixture
    def spec(self, q1_tree, tiny_db):
        from repro.core.partition import fully_partitioned
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_tree, tiny_db.schema)
        return generator.streams_for_partition(fully_partitioned(q1_tree))[0]

    def test_deadline_exactly_on_backoff_boundary_allows_retry(
            self, spec, tiny_db):
        from repro.relational.dispatch import run_spec_with_retry

        connection = Connection(tiny_db, CostModel())
        faults = FaultPolicy(seed=0, fail_streams={spec.label: 1})
        retry = RetryPolicy(max_attempts=5, base_ms=100.0, jitter=0.0,
                            deadline_ms=100.0)
        stream, stats = run_spec_with_retry(
            connection, spec, retry=retry, faults=faults,
        )
        # spent (0) + backoff (100) == deadline (100): not over — retried.
        assert stats.attempts == 2
        assert stats.retries == 1
        assert stats.backoff_ms == 100.0

    def test_deadline_just_below_backoff_exhausts(self, spec, tiny_db):
        from repro.relational.dispatch import run_spec_with_retry

        connection = Connection(tiny_db, CostModel())
        faults = FaultPolicy(seed=0, fail_streams={spec.label: 1})
        retry = RetryPolicy(max_attempts=5, base_ms=100.0, jitter=0.0,
                            deadline_ms=99.0)
        with pytest.raises(TransientConnectionError) as info:
            run_spec_with_retry(connection, spec, retry=retry, faults=faults)
        assert info.value.attempts == 1
        # The abandoned wait is never charged: exhaustion happened before
        # the backoff was spent.
        assert info.value.stats.backoff_ms == 0.0

    def test_budget_exhausts_mid_backoff_before_max_attempts(
            self, spec, tiny_db):
        from repro.relational.dispatch import run_spec_with_retry

        connection = Connection(tiny_db, CostModel())
        faults = FaultPolicy(seed=0, fail_streams=[spec.label])
        retry = RetryPolicy(max_attempts=10, base_ms=100.0, multiplier=2.0,
                            jitter=0.0, deadline_ms=500.0)
        with pytest.raises(TransientConnectionError) as info:
            run_spec_with_retry(connection, spec, retry=retry, faults=faults)
        # Backoffs 100 + 200 fit under 500; the third (400) would cross it,
        # so the stream exhausts at attempt 3 of an allowed 10.
        assert info.value.attempts == 3
        assert info.value.stats.retries == 2
        assert info.value.stats.backoff_ms == 300.0


class TestByteIdentity:
    def test_faulted_run_is_byte_identical(self, view):
        baseline = view.materialize("fully-partitioned")
        result = view.materialize(
            "fully-partitioned",
            retry=RetryPolicy(max_attempts=6),
            faults=FaultPolicy(seed=7, error_rate=0.4),
        )
        assert result.xml == baseline.xml
        assert result.report.faults_injected > 0
        assert result.report.retries > 0
        assert result.report.backoff_ms > 0
        # The paper's figures are untouched by resilience overhead.
        assert result.report.query_ms == baseline.report.query_ms
        assert result.report.transfer_ms == baseline.report.transfer_ms

    def test_acceptance_seed_both_styles(self, view):
        # ISSUE acceptance: error_rate=0.2 with the default RetryPolicy
        # materializes byte-identically under both plan styles.
        for style in ("outer-join", "outer-union"):
            from repro.core.sqlgen import PlanStyle

            plan_style = (
                PlanStyle.OUTER_JOIN
                if style == "outer-join"
                else PlanStyle.OUTER_UNION
            )
            baseline = view.materialize("fully-partitioned", style=plan_style)
            injected = 0
            for seed in range(20):
                result = view.materialize(
                    "fully-partitioned",
                    style=plan_style,
                    retry=RetryPolicy(),
                    faults=FaultPolicy(seed=seed, error_rate=0.2),
                )
                assert result.xml == baseline.xml
                injected += result.report.faults_injected
            assert injected > 0

    def test_concurrent_dispatch_draws_identically(self, view):
        opts = ExecutionOptions(
            retry=RetryPolicy(max_attempts=6),
            faults=FaultPolicy(seed=7, error_rate=0.4),
        )
        serial = view.materialize("fully-partitioned", options=opts)
        concurrent = view.materialize(
            "fully-partitioned", options=opts.replace(workers=4)
        )
        assert concurrent.xml == serial.xml
        assert concurrent.report.faults_injected == serial.report.faults_injected
        assert concurrent.report.retries == serial.report.retries
        assert concurrent.report.backoff_ms == serial.report.backoff_ms

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        error_rate=st.floats(min_value=0.05, max_value=0.45),
    )
    def test_materialize_byte_identity_property(
        self, tiny_db, tiny_estimator, seed, error_rate
    ):
        connection = Connection(tiny_db, CostModel())
        silk = SilkRoute(connection, estimator=tiny_estimator)
        view = silk.define_view(QUERY_1)
        baseline = view.materialize("fully-partitioned")
        try:
            result = view.materialize(
                "fully-partitioned",
                retry=RetryPolicy(max_attempts=8),
                faults=FaultPolicy(seed=seed, error_rate=error_rate),
            )
        except TransientConnectionError as exc:
            # Exhaustion is legitimate at high rates; the partial report
            # must still identify the failing stream.
            assert exc.stream_label
            assert exc.report is not None
            return
        assert result.xml == baseline.xml
        assert result.report.query_ms == baseline.report.query_ms


class TestNoRetry:
    def test_same_seed_raises_deterministically(self, view):
        faults = FaultPolicy(seed=7, error_rate=1.0)
        labels = []
        for _ in range(2):
            with pytest.raises(TransientConnectionError) as excinfo:
                view.materialize("fully-partitioned", faults=faults)
            exc = excinfo.value
            labels.append(exc.stream_label)
            assert exc.report is not None
            assert exc.report.streams == []
            assert exc.attempts == 1
        assert labels[0] == labels[1] == "S1"

    def test_partial_report_lists_completed_streams(self, view):
        # Pin a mid-plan stream so earlier siblings complete first.
        faults = FaultPolicy(seed=0, fail_streams={"S1.4": None})
        with pytest.raises(TransientConnectionError) as excinfo:
            view.materialize("fully-partitioned", faults=faults)
        exc = excinfo.value
        assert exc.stream_label == "S1.4"
        completed = [s.label for s in exc.report.streams]
        assert completed  # the streams before S1.4 in document order
        assert "S1.4" not in completed

    def test_no_retry_policy_constant(self, view):
        baseline = view.materialize("fully-partitioned")
        result = view.materialize(
            "fully-partitioned",
            retry=NO_RETRY,
            faults=FaultPolicy(seed=0, error_rate=0.0),
        )
        assert result.xml == baseline.xml
        assert result.report.retries == 0


class TestCacheInterplay:
    def test_fault_outcomes_never_cached(self, silk, view):
        silk.cache = True
        with pytest.raises(TransientConnectionError):
            view.materialize(
                "fully-partitioned", faults=FaultPolicy(seed=0, error_rate=1.0)
            )
        assert len(silk.cache) == 0

    def test_cache_hit_never_counts_as_attempt(self, silk, view):
        silk.cache = True
        baseline = view.materialize("fully-partitioned")
        # Every stream is now cached: even a certain-failure policy cannot
        # touch the run, because cached plans never contact the source.
        result = view.materialize(
            "fully-partitioned", faults=FaultPolicy(seed=0, error_rate=1.0)
        )
        assert result.xml == baseline.xml
        assert result.report.attempts == 0
        assert result.report.faults_injected == 0
        assert all(s.from_cache for s in result.report.streams)

    def test_successful_retry_is_cached_cleanly(self, silk, view):
        silk.cache = True
        result = view.materialize(
            "fully-partitioned",
            retry=RetryPolicy(max_attempts=6),
            faults=FaultPolicy(seed=7, error_rate=0.4),
        )
        assert result.report.faults_injected > 0
        # The stored entries are the clean executions: replaying them is
        # attempt-free and byte-identical.
        replay = view.materialize(
            "fully-partitioned", faults=FaultPolicy(seed=7, error_rate=1.0)
        )
        assert replay.xml == result.xml
        assert replay.report.attempts == 0


class TestDegradation:
    def test_unified_plan_degrades_to_finer_streams(self, view):
        baseline = view.materialize("unified")
        result = view.materialize(
            "unified",
            retry=RetryPolicy(max_attempts=2),
            faults=FaultPolicy(seed=7, error_rate=0.4),
        )
        assert result.xml == baseline.xml
        assert result.report.degraded_streams == ("S1'",)
        assert result.report.n_streams > 1

    def test_single_node_stream_propagates(self, view):
        faults = FaultPolicy(seed=0, fail_streams={"S1": None})
        with pytest.raises(TransientConnectionError) as excinfo:
            view.materialize(
                "fully-partitioned",
                retry=RetryPolicy(max_attempts=2),
                faults=faults,
            )
        exc = excinfo.value
        assert exc.stream_label == "S1"
        assert exc.report is not None
        assert exc.report.degraded_streams == ()

    def test_degradation_accounts_spent_attempts(self, view):
        result = view.materialize(
            "unified",
            retry=RetryPolicy(max_attempts=2),
            faults=FaultPolicy(seed=7, error_rate=0.4),
        )
        # The degraded-away coarse stream burned two attempts that must
        # appear in the plan totals even though it produced no stream.
        assert result.report.attempts > result.report.n_streams


class TestExecutionOptions:
    def test_explicit_kwargs_override_options(self, view):
        opts = ExecutionOptions(budget_ms=1.0)
        baseline = view.materialize("fully-partitioned")
        # budget_ms=None explicitly disables the option's tiny budget.
        result = view.materialize(
            "fully-partitioned", options=opts, budget_ms=None
        )
        assert result.xml == baseline.xml

    def test_options_flow_through_facade(self, view):
        from repro.core.sqlgen import PlanStyle

        opts = ExecutionOptions(style=PlanStyle.OUTER_UNION, workers=2)
        result = view.materialize("fully-partitioned", options=opts)
        assert result.report.n_streams == 10
        assert result.report.workers == 2

    def test_unknown_option_rejected(self):
        from repro.core.options import resolve_options

        with pytest.raises(TypeError):
            resolve_options(None, bogus=1)

    def test_frozen_and_replace(self):
        opts = ExecutionOptions(workers=2)
        with pytest.raises(Exception):
            opts.workers = 3
        assert opts.replace(workers=4).workers == 4
        assert opts.workers == 2

    def test_top_level_reexports(self):
        import repro

        assert repro.ExecutionOptions is ExecutionOptions
        assert repro.FaultPolicy is FaultPolicy
        assert repro.RetryPolicy is RetryPolicy
        assert repro.TransientConnectionError is TransientConnectionError


class TestCacheWiring:
    def test_connection_true_installs_fresh(self, tiny_db):
        connection = Connection(tiny_db, CostModel(), cache=True)
        assert isinstance(connection.cache, PlanResultCache)

    def test_silkroute_shares_instance(self, tiny_db, tiny_estimator):
        shared = PlanResultCache()
        connection = Connection(tiny_db, CostModel())
        silk = SilkRoute(connection, estimator=tiny_estimator, cache=shared)
        assert silk.cache is shared
        assert connection.cache is shared

    def test_false_uninstalls(self, tiny_db, tiny_estimator):
        connection = Connection(tiny_db, CostModel(), cache=True)
        silk = SilkRoute(connection, estimator=tiny_estimator)
        silk.cache = False
        assert connection.cache is None

    def test_resolve_cache_contract(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert isinstance(resolve_cache(True), PlanResultCache)
        shared = PlanResultCache()
        assert resolve_cache(shared) is shared


class TestCursorClose:
    def test_context_manager_closes(self, tiny_conn):
        from repro.relational.sqlparse import parse_sql

        plan = parse_sql(
            "SELECT s.suppkey AS k FROM Supplier s", tiny_conn.database.schema
        )
        cursor = tiny_conn.execute_iter(plan)
        with cursor:
            next(iter(cursor))
        assert cursor.closed
        assert list(cursor) == []
        cursor.close()  # idempotent

    def test_materialize_to_closes_cursors_on_error(self, view):
        sink = io.StringIO()
        with pytest.raises(TransientConnectionError):
            view.materialize_to(
                sink, "fully-partitioned",
                faults=FaultPolicy(seed=0, fail_streams={"S1.4": None}),
            )


class TestSweepFaults:
    def test_sweep_records_failures_without_degrading(
        self, q1_tree, tiny_db, tiny_estimator
    ):
        from repro.core.partition import fully_partitioned

        connection = Connection(tiny_db, CostModel())
        result = sweep_partitions(
            q1_tree, tiny_db.schema, connection,
            partitions=[fully_partitioned(q1_tree)],
            cache=False,
            retry=RetryPolicy(max_attempts=2),
            faults=FaultPolicy(seed=0, fail_streams={"S1": None}),
        )
        assert len(result.failed()) == 1
        timing = result.failed()[0]
        assert timing.failed and not timing.timed_out
        assert timing.total_ms is None
        assert timing.attempts >= 2

    def test_sweep_options_bundle(self, q1_tree, tiny_db):
        from repro.core.partition import unified_partition

        connection = Connection(tiny_db, CostModel())
        opts = ExecutionOptions(faults=FaultPolicy(seed=7, error_rate=0.4),
                                retry=RetryPolicy(max_attempts=6))
        result = sweep_partitions(
            q1_tree, tiny_db.schema, connection,
            partitions=[unified_partition(q1_tree)],
            cache=False, options=opts,
        )
        assert len(result.completed()) == 1


class TestCliFlags:
    def test_materialize_with_fault_flags(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "materialize", "--strategy", "fully-partitioned",
                "--fault-seed", "7", "--fault-rate", "0.4", "--retries", "6",
            ],
            out=out,
        )
        assert code == 0
        assert "-- resilience:" in out.getvalue()

    def test_parser_accepts_execution_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--workers", "2", "--budget-ms", "1000",
             "--retries", "3", "--fault-seed", "1"]
        )
        assert args.workers == 2
        assert args.budget_ms == 1000.0
        assert args.retries == 3
        assert args.fault_seed == 1
