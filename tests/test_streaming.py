"""Tests for the streaming execution pipeline (PR: streaming tentpole).

Three surfaces are covered:

* :meth:`XmlView.materialize_to` — the constant-memory path must produce
  byte-identical XML and a bit-identical report versus ``materialize()``,
  across queries, plan styles, partition strategies, reduction, and result
  cache warm/cold (property-based).
* :meth:`Connection.execute_iter` / the engine's Volcano iterators — lazy
  evaluation with the same charge log as the batch path.
* Concurrent dispatch — ``execute_partition(workers=N)`` must be
  indistinguishable from the sequential run except for the dispatch
  fields, including under timeouts and a shared result cache.
"""

import io
import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import TimeoutExceeded
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import PlanStyle
from repro.relational.cache import PlanResultCache
from repro.relational.connection import Connection
from repro.relational.engine import CostModel
from repro.bench.queries import QUERY_1, QUERY_2


@pytest.fixture(scope="module")
def views(tiny_db):
    """Views over two independent connections: one uncached ("cold"), one
    with a shared result cache ("warm" — examples re-populate it)."""

    def make(cache):
        silk = SilkRoute(Connection(tiny_db, CostModel()), cache=cache)
        return {
            "Q1": silk.define_view(QUERY_1),
            "Q2": silk.define_view(QUERY_2),
        }

    return {"cold": make(False), "warm": make(True)}


@pytest.fixture(scope="module")
def q1_view(tiny_db):
    silk = SilkRoute(Connection(tiny_db, CostModel()))
    return silk.define_view(QUERY_1)


def assert_same_stream_reports(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert (ra.label, ra.rows, ra.server_ms, ra.transfer_ms, ra.sql) == (
            rb.label, rb.rows, rb.server_ms, rb.transfer_ms, rb.sql
        )


class TestMaterializeToProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        query=st.sampled_from(["Q1", "Q2"]),
        style=st.sampled_from([PlanStyle.OUTER_JOIN, PlanStyle.OUTER_UNION]),
        strategy=st.sampled_from(["unified", "fully-partitioned", None]),
        reduce=st.booleans(),
        cache=st.sampled_from(["cold", "warm"]),
    )
    def test_byte_identical_and_report_identical(
        self, views, query, style, strategy, reduce, cache
    ):
        view = views[cache][query]
        if cache == "warm":
            # Populate the result cache so the streaming run replays hits.
            view.materialize(strategy, style=style, reduce=reduce)
        ref = view.materialize(strategy, style=style, reduce=reduce)
        sink = io.StringIO()
        out = view.materialize_to(sink, strategy, style=style, reduce=reduce)
        assert sink.getvalue() == ref.xml
        assert out.xml is None
        assert out.report.query_ms == ref.report.query_ms
        assert out.report.transfer_ms == ref.report.transfer_ms
        assert out.report.total_ms == ref.report.total_ms
        assert_same_stream_reports(ref.report.streams, out.report.streams)


class TestExecuteIter:
    def test_lazy_rows_match_batch(self, tiny_conn, q1_view, tiny_db):
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_view.tree, tiny_db.schema)
        specs = generator.streams_for_partition(q1_view.unified_partition())
        for spec in specs:
            batch = tiny_conn.execute(spec.plan, compact_rows=spec.compact)
            cursor = tiny_conn.execute_iter(
                spec.plan, compact_rows=spec.compact
            )
            assert not cursor.exhausted
            assert list(cursor) == list(batch)
            assert cursor.exhausted
            assert cursor.rows_read == len(batch)
            assert cursor.server_ms == batch.server_ms
            assert cursor.transfer_ms == batch.transfer_ms

    def test_charges_accrue_incrementally(self, tiny_conn, q1_view, tiny_db):
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_view.tree, tiny_db.schema)
        [spec] = generator.streams_for_partition(q1_view.unified_partition())
        cursor = tiny_conn.execute_iter(spec.plan, compact_rows=spec.compact)
        rows = iter(cursor)
        next(rows)
        mid_transfer = cursor.transfer_ms
        assert mid_transfer > 0
        for _ in rows:
            pass
        assert cursor.transfer_ms > mid_transfer

    def test_budget_raises_with_label(self, tiny_conn, q1_view, tiny_db):
        from repro.core.sqlgen import SqlGenerator

        generator = SqlGenerator(q1_view.tree, tiny_db.schema)
        [spec] = generator.streams_for_partition(q1_view.unified_partition())
        with pytest.raises(TimeoutExceeded) as exc_info:
            cursor = tiny_conn.execute_iter(
                spec.plan, budget_ms=0.001, label=spec.label
            )
            list(cursor)
        assert exc_info.value.stream_label == spec.label


class TestConcurrentDispatch:
    def test_identical_to_sequential(self, q1_view):
        part = q1_view.fully_partitioned()
        specs_s, streams_s, seq = q1_view.execute_partition(part, reduce=False)
        specs_c, streams_c, con = q1_view.execute_partition(
            part, reduce=False, workers=4
        )
        assert [s.sql for s in specs_s] == [s.sql for s in specs_c]
        assert [list(s) for s in streams_s] == [list(s) for s in streams_c]
        assert_same_stream_reports(seq.streams, con.streams)
        assert seq.query_ms == con.query_ms
        assert seq.transfer_ms == con.transfer_ms
        assert seq.workers == 1 and con.workers == 4
        # Sequential makespan is the sum; concurrent approaches the max.
        assert seq.elapsed_query_ms == seq.query_ms
        assert con.elapsed_query_ms < seq.elapsed_query_ms
        assert con.elapsed_query_ms >= max(
            s.server_ms for s in streams_s
        )

    def test_stream_report_sql_populated(self, q1_view):
        _, _, report = q1_view.execute_partition(
            q1_view.fully_partitioned(), reduce=False
        )
        for stream_report in report.streams:
            assert stream_report.sql.lstrip().upper().startswith("SELECT")

    def test_timeout_deterministic_across_workers(self, q1_view):
        part = q1_view.fully_partitioned()
        _, streams, _ = q1_view.execute_partition(part, reduce=False)
        times = sorted(s.server_ms for s in streams)
        budget = (times[-1] + times[-2]) / 2
        _, s1, r1 = q1_view.execute_partition(
            part, reduce=False, budget_ms=budget
        )
        _, s2, r2 = q1_view.execute_partition(
            part, reduce=False, budget_ms=budget, workers=4
        )
        assert s1 is None and s2 is None
        assert r1.timed_out and r2.timed_out
        assert r1.timed_out_label == r2.timed_out_label
        assert [x.label for x in r1.streams] == [x.label for x in r2.streams]
        assert math.isnan(r1.total_ms) and math.isnan(r2.total_ms)

    def test_materialize_workers_same_document(self, q1_view):
        a = q1_view.materialize("fully-partitioned", reduce=False)
        b = q1_view.materialize("fully-partitioned", reduce=False, workers=4)
        assert a.xml == b.xml
        assert a.report.query_ms == b.report.query_ms

    def test_materialize_timeout_carries_partial_report(self, q1_view):
        with pytest.raises(TimeoutExceeded) as exc_info:
            q1_view.materialize("unified", budget_ms=0.001)
        exc = exc_info.value
        assert exc.stream_label is not None
        assert exc.report is not None
        assert exc.report.timed_out
        assert exc.report.timed_out_label == exc.stream_label
        assert math.isnan(exc.report.total_ms)

    def test_concurrent_cache_single_flight(self, tiny_db):
        cache = PlanResultCache()
        silk = SilkRoute(Connection(tiny_db, CostModel()), cache=cache)
        view = silk.define_view(QUERY_1)
        part = view.fully_partitioned()
        _, _, cold = view.execute_partition(part, reduce=False, workers=4)
        misses_after_cold = cache.stats().misses
        assert misses_after_cold == cold.n_streams
        _, _, warm = view.execute_partition(part, reduce=False, workers=4)
        assert cache.stats().misses == misses_after_cold
        assert cache.stats().hits >= warm.n_streams
        assert_same_stream_reports(cold.streams, warm.streams)


class TestMaterializeToTimeout:
    def test_partial_report_attached(self, q1_view):
        sink = io.StringIO()
        with pytest.raises(TimeoutExceeded) as exc_info:
            q1_view.materialize_to(sink, "unified", budget_ms=0.001)
        exc = exc_info.value
        assert exc.report is not None
        assert exc.report.timed_out
        assert math.isnan(exc.report.total_ms)
