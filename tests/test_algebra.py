"""Tests for the relational-algebra IR (repro.relational.algebra)."""

import pytest

from repro.common.errors import QueryError
from repro.relational.algebra import (
    And,
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    JoinBranch,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
    count_operators,
    outer_join_nesting,
    walk,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import SqlType


@pytest.fixture
def people():
    return TableSchema(
        "People",
        [Column("id", SqlType.INTEGER), Column("name", SqlType.VARCHAR)],
        key=["id"],
    )


@pytest.fixture
def pets():
    return TableSchema(
        "Pets",
        [Column("pid", SqlType.INTEGER), Column("owner", SqlType.INTEGER)],
        key=["pid"],
    )


class TestScan:
    def test_columns_qualified(self, people):
        scan = Scan(people, "p")
        assert scan.column_names() == ("p.id", "p.name")
        assert scan.columns()[0].source == ("People", "id")

    def test_positions(self, people):
        assert Scan(people, "p").positions() == {"p.id": 0, "p.name": 1}


class TestPredicates:
    def test_comparison_eval(self, people):
        scan = Scan(people, "p")
        cmp = Comparison("=", ColumnRef("p.id"), Literal(3))
        assert cmp.evaluate((3, "x"), scan.positions())
        assert not cmp.evaluate((4, "x"), scan.positions())

    def test_null_never_matches(self, people):
        scan = Scan(people, "p")
        cmp = Comparison("=", ColumnRef("p.id"), Literal(3))
        assert not cmp.evaluate((None, "x"), scan.positions())
        neq = Comparison("!=", ColumnRef("p.id"), Literal(3))
        assert not neq.evaluate((None, "x"), scan.positions())

    def test_all_operators(self):
        positions = {"a": 0}
        for op, expected in [("<", True), ("<=", True), (">", False),
                             (">=", False), ("!=", True), ("=", False)]:
            cmp = Comparison(op, ColumnRef("a"), Literal(5))
            assert cmp.evaluate((1,), positions) is expected

    def test_bad_operator(self):
        with pytest.raises(QueryError):
            Comparison("~", ColumnRef("a"), Literal(1))

    def test_and(self):
        positions = {"a": 0, "b": 1}
        pred = And.of([
            Comparison("=", ColumnRef("a"), Literal(1)),
            Comparison("=", ColumnRef("b"), Literal(2)),
        ])
        assert pred.evaluate((1, 2), positions)
        assert not pred.evaluate((1, 3), positions)
        assert pred.referenced_columns() == ["a", "b"]

    def test_empty_and_is_true(self):
        assert And.of([]).evaluate((), {})
        assert And.of([]).to_sql() == "TRUE"

    def test_comparison_sql(self):
        assert Comparison("!=", ColumnRef("a"), Literal(1)).to_sql() == "a <> 1"


class TestFilterProject:
    def test_filter_unknown_column(self, people):
        with pytest.raises(QueryError):
            Filter(Scan(people, "p"), Comparison("=", ColumnRef("zz"), Literal(1)))

    def test_filter_preserves_columns(self, people):
        scan = Scan(people, "p")
        f = Filter(scan, Comparison("=", ColumnRef("p.id"), Literal(1)))
        assert f.columns() == scan.columns()
        assert f.children == (scan,)

    def test_project_rename(self, people):
        proj = Project(Scan(people, "p"), [ProjectItem(ColumnRef("p.id"), "id")])
        assert proj.column_names() == ("id",)
        assert proj.columns()[0].source == ("People", "id")

    def test_project_constant(self, people):
        proj = Project(Scan(people, "p"), [ConstantColumn("L1", 1)])
        assert proj.columns()[0].sql_type is SqlType.INTEGER

    def test_project_null_constant_needs_type(self, people):
        item = ConstantColumn("x", None, SqlType.VARCHAR)
        proj = Project(Scan(people, "p"), [item])
        assert proj.columns()[0].sql_type is SqlType.VARCHAR

    def test_null_literal_without_type_rejected(self, people):
        with pytest.raises(QueryError):
            Project(Scan(people, "p"), [ProjectItem(Literal(None), "x")])

    def test_project_unknown_column(self, people):
        with pytest.raises(QueryError):
            Project(Scan(people, "p"), [ProjectItem(ColumnRef("zz"), "x")])

    def test_project_duplicate_names(self, people):
        with pytest.raises(QueryError, match="duplicate"):
            Project(
                Scan(people, "p"),
                [ProjectItem(ColumnRef("p.id"), "x"),
                 ProjectItem(ColumnRef("p.name"), "x")],
            )


class TestJoins:
    def test_inner_join_columns(self, people, pets):
        join = InnerJoin(Scan(people, "p"), Scan(pets, "q"), [("p.id", "q.owner")])
        assert join.column_names() == ("p.id", "p.name", "q.pid", "q.owner")

    def test_inner_join_unknown_columns(self, people, pets):
        with pytest.raises(QueryError):
            InnerJoin(Scan(people, "p"), Scan(pets, "q"), [("zz", "q.owner")])
        with pytest.raises(QueryError):
            InnerJoin(Scan(people, "p"), Scan(pets, "q"), [("p.id", "zz")])

    def test_outer_join_requires_branch(self, people, pets):
        with pytest.raises(QueryError):
            LeftOuterJoin(Scan(people, "p"), Scan(pets, "q"), [])

    def test_outer_join_tag_column_checked(self, people, pets):
        with pytest.raises(QueryError):
            LeftOuterJoin(
                Scan(people, "p"),
                Scan(pets, "q"),
                [JoinBranch((("p.id", "q.owner"),), tag_column="zz", tag_value=1)],
            )

    def test_simple_constructor(self, people, pets):
        join = LeftOuterJoin.simple(
            Scan(people, "p"), Scan(pets, "q"), [("p.id", "q.owner")]
        )
        assert len(join.branches) == 1
        assert join.branches[0].tag_column is None


class TestUnionSort:
    def test_union_schema_is_column_union(self, people, pets):
        union = OuterUnion([Scan(people, "p"), Scan(pets, "q")])
        assert union.column_names() == ("p.id", "p.name", "q.pid", "q.owner")

    def test_union_requires_input(self):
        with pytest.raises(QueryError):
            OuterUnion([])

    def test_union_conflicting_types(self, people):
        a = Project(Scan(people, "p"), [ProjectItem(ColumnRef("p.id"), "x")])
        b = Project(Scan(people, "p"), [ProjectItem(ColumnRef("p.name"), "x")])
        with pytest.raises(QueryError, match="conflicting"):
            OuterUnion([a, b])

    def test_sort_unknown_key(self, people):
        with pytest.raises(QueryError):
            Sort(Scan(people, "p"), ["zz"])


class TestInspection:
    def test_walk_and_count(self, people, pets):
        join = InnerJoin(Scan(people, "p"), Scan(pets, "q"), [("p.id", "q.owner")])
        plan = Sort(Distinct(join), ["p.id"])
        kinds = [type(op).__name__ for op in walk(plan)]
        assert kinds == ["Sort", "Distinct", "InnerJoin", "Scan", "Scan"]
        assert count_operators(plan, Scan) == 2

    def test_outer_join_nesting(self, people, pets):
        p, q = Scan(people, "p"), Scan(pets, "q")
        flat = LeftOuterJoin.simple(p, q, [("p.id", "q.owner")])
        assert outer_join_nesting(flat) == 1
        assert outer_join_nesting(p) == 0
        r = Scan(people, "r")
        nested = LeftOuterJoin.simple(
            r, Project(flat, [ProjectItem(ColumnRef("p.id"), "x")]),
            [("r.id", "x")],
        )
        assert outer_join_nesting(nested) == 2

    def test_fingerprints_structural(self, people):
        a = Scan(people, "p")
        b = Scan(people, "p")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != Scan(people, "q").fingerprint()

    def test_fingerprint_distinguishes_predicates(self, people):
        scan = Scan(people, "p")
        f1 = Filter(scan, Comparison("=", ColumnRef("p.id"), Literal(1)))
        f2 = Filter(scan, Comparison("=", ColumnRef("p.id"), Literal(2)))
        assert f1.fingerprint() != f2.fingerprint()
