"""Tests for the SQL parser (repro.relational.sqlparse) — including the
round-trip property: parse(render(plan)) executes to the same rows."""

import pytest

from repro.common.errors import QueryError
from repro.common.ordering import sort_key
from repro.core.partition import (
    Partition,
    fully_partitioned,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.relational.engine import CostModel, QueryEngine
from repro.relational.sqlparse import parse_sql


@pytest.fixture
def engine(tiny_db):
    return QueryEngine(tiny_db, CostModel())


class TestBasicParsing:
    def test_simple_select(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT s.suppkey AS k, s.name AS n FROM Supplier s",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert len(rows) == len(tiny_db.table("Supplier"))
        assert plan.column_names() == ("k", "n")

    def test_where_filter(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT s.suppkey AS k FROM Supplier s WHERE s.suppkey = 3",
            tiny_db.schema,
        )
        assert engine.execute(plan).rows == [(3,)]

    def test_implicit_join(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT s.suppkey AS k, n.name AS nation "
            "FROM Supplier s, Nation n WHERE s.nationkey = n.nationkey",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert len(rows) == len(tiny_db.table("Supplier"))

    def test_distinct(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT DISTINCT s.nationkey AS nk FROM Supplier s",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert len(rows) == len({r[0] for r in rows})

    def test_string_and_comparison_ops(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT p.partkey AS k FROM Part p WHERE p.size <> 'M' "
            "AND p.partkey <= 5",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        sizes = {r[0] for r in tiny_db.table("Part") if r[4] != "M"}
        assert {r[0] for r in rows} == {k for k in sizes if k <= 5}

    def test_order_by_nulls_first(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT s.nationkey AS nk FROM Supplier s "
            "ORDER BY nk NULLS FIRST",
            tiny_db.schema,
        )
        values = [r[0] for r in engine.execute(plan).rows]
        assert values == sorted(values)

    def test_union_all_with_null_padding(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT s.suppkey AS a, NULL AS b FROM Supplier s "
            "UNION ALL "
            "SELECT NULL AS a, n.name AS b FROM Nation n",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert len(rows) == len(tiny_db.table("Supplier")) + len(
            tiny_db.table("Nation")
        )

    def test_derived_table(self, tiny_db, engine):
        plan = parse_sql(
            "SELECT q.k AS k FROM ("
            "SELECT s.suppkey AS k FROM Supplier s"
            ") AS q WHERE q.k > 4",
            tiny_db.schema,
        )
        rows = engine.execute(plan).rows
        assert all(r[0] > 4 for r in rows)

    def test_left_outer_join_with_tags(self, tiny_db, engine):
        sql = (
            "SELECT q1.k AS k, q2.t AS t, q2.nk AS nk FROM ("
            "SELECT s.suppkey AS k, s.nationkey AS snk FROM Supplier s"
            ") AS q1 LEFT OUTER JOIN ("
            "SELECT 1 AS t, n.nationkey AS nk FROM Nation n"
            ") AS q2 ON (q2.t = 1 AND q1.snk = q2.nk)"
        )
        plan = parse_sql(sql, tiny_db.schema)
        rows = engine.execute(plan).rows
        assert len(rows) == len(tiny_db.table("Supplier"))
        assert all(r[2] is not None for r in rows)


class TestErrors:
    def test_unknown_table(self, tiny_db):
        with pytest.raises(Exception):
            parse_sql("SELECT x.a AS a FROM Nope x", tiny_db.schema)

    def test_garbage(self, tiny_db):
        with pytest.raises(QueryError):
            parse_sql("SELECT ; FROM", tiny_db.schema)

    def test_trailing_tokens(self, tiny_db):
        with pytest.raises(QueryError, match="trailing"):
            parse_sql(
                "SELECT s.suppkey AS k FROM Supplier s extra",
                tiny_db.schema,
            )

    def test_literal_needs_alias(self, tiny_db):
        with pytest.raises(QueryError, match="AS alias"):
            parse_sql("SELECT 1 FROM Supplier s", tiny_db.schema)


class TestRoundTrip:
    """parse(render(plan)) executes to exactly the same sorted rows."""

    @pytest.mark.parametrize("style", [PlanStyle.OUTER_JOIN,
                                       PlanStyle.OUTER_UNION])
    @pytest.mark.parametrize("reduce", [False, True])
    def test_unified_round_trip(self, q1_tree, tiny_db, engine, style, reduce):
        generator = SqlGenerator(q1_tree, tiny_db.schema, style=style,
                                 reduce=reduce)
        [spec] = generator.streams_for_partition(unified_partition(q1_tree))
        self._assert_round_trip(spec, tiny_db, engine)

    def test_fully_partitioned_round_trip(self, q1_tree, tiny_db, engine):
        generator = SqlGenerator(q1_tree, tiny_db.schema)
        for spec in generator.streams_for_partition(
            fully_partitioned(q1_tree)
        ):
            self._assert_round_trip(spec, tiny_db, engine)

    def test_mid_partition_round_trip(self, q1_tree, tiny_db, engine):
        generator = SqlGenerator(q1_tree, tiny_db.schema, reduce=True)
        partition = Partition([(1, 1), (1, 2), (1, 4), (1, 4, 2),
                               (1, 4, 2, 2)])
        for spec in generator.streams_for_partition(partition):
            self._assert_round_trip(spec, tiny_db, engine)

    def test_query2_round_trip(self, q2_tree, tiny_db, engine):
        generator = SqlGenerator(q2_tree, tiny_db.schema)
        [spec] = generator.streams_for_partition(unified_partition(q2_tree))
        self._assert_round_trip(spec, tiny_db, engine)

    def _assert_round_trip(self, spec, db, engine):
        sql = spec.sql
        reparsed = parse_sql(sql, db.schema)
        original_rows = engine.execute(spec.plan).rows
        reparsed_rows = engine.execute(reparsed).rows
        assert sorted(original_rows, key=sort_key) == sorted(
            reparsed_rows, key=sort_key
        )
        assert [c.name for c in reparsed.columns()] == list(
            spec.column_names
        )
