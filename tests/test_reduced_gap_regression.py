"""Regression tests for reduced units whose children hang off merged
(non-representative) members — found by the random-RXL property tests.

Two distinct failure modes are pinned down:

1. **L-path gaps**: a child unit under a merged member must emit the L
   constants bridging the levels between the unit representative and its
   own index, or the decoder stops at the NULL gap and drops instances.
2. **Branch-tag collisions**: two children hanging off the same merged
   member share their first bridged L value, so the ON disjunction needs
   the synthetic branch-ordinal tag to keep their rows apart.
"""

import pytest

from repro.core.labeling import label_view_tree
from repro.core.partition import Partition, unified_partition
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.rxl.parser import parse_rxl
from repro.xmlgen.tagger import tag_streams

#: nation -> region ('1', merged by reduction) -> two sibling '*' blocks
#: hanging off the merged region member.
GAP_QUERY = """
from Nation $v1
construct
  <a>
    { from Region $v2
      where $v1.regionkey = $v2.regionkey
      construct
        <b>
          { from Nation $v3 where $v2.regionkey = $v3.regionkey
            construct <c>$v3.name</c> }
          { from Nation $v4 where $v2.regionkey = $v4.regionkey
            construct <d>$v4.name</d> }
        </b> }
  </a>
"""


@pytest.fixture(scope="module")
def gap_tree(tiny_db):
    tree = build_view_tree(parse_rxl(GAP_QUERY), tiny_db.schema)
    label_view_tree(tree, tiny_db.schema)
    return tree


def materialize(tree, db, conn, partition, style, reduce):
    generator = SqlGenerator(tree, db.schema, style=style, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    streams = [conn.execute(s.plan, compact_rows=s.compact) for s in specs]
    return tag_streams(tree, specs, streams, root_tag="doc")


class TestGapBridging:
    def test_labels(self, gap_tree):
        assert gap_tree.node((1, 1)).label == "1"   # region
        assert gap_tree.node((1, 1, 1)).label == "*"
        assert gap_tree.node((1, 1, 2)).label == "*"

    def test_reduced_unified_matches_reference(self, gap_tree, tiny_db,
                                               tiny_conn):
        reference, _ = materialize(
            gap_tree, tiny_db, tiny_conn, unified_partition(gap_tree),
            PlanStyle.OUTER_JOIN, False,
        )
        xml, tagger = materialize(
            gap_tree, tiny_db, tiny_conn, unified_partition(gap_tree),
            PlanStyle.OUTER_JOIN, True,
        )
        assert xml == reference
        assert tagger.implicit_opens == 0

    def test_no_l_gap_in_reduced_rows(self, gap_tree, tiny_db, tiny_conn):
        """Rows reaching level 3 must carry a non-NULL L2."""
        generator = SqlGenerator(gap_tree, tiny_db.schema, reduce=True)
        [spec] = generator.streams_for_partition(unified_partition(gap_tree))
        names = spec.column_names
        l2, l3 = names.index("L2"), names.index("L3")
        rows = tiny_conn.execute(spec.plan).rows
        deep = [r for r in rows if r[l3] is not None]
        assert deep
        assert all(r[l2] is not None for r in deep)

    def test_branch_tags_do_not_cross_match(self, gap_tree, tiny_db,
                                            tiny_conn):
        """<c> and <d> have identical join keys and identical bridged L
        values; without the ordinal tag every row would match both
        branches and duplicate."""
        reference, _ = materialize(
            gap_tree, tiny_db, tiny_conn, unified_partition(gap_tree),
            PlanStyle.OUTER_JOIN, False,
        )
        n_regions_used = len(
            {r[2] for r in tiny_db.table("Nation")}
        )
        n_nations = len(tiny_db.table("Nation"))
        # every nation appears under <c> and <d> once per nation sharing
        # its region; just check c/d counts are equal and no duplication
        # relative to the unreduced reference.
        assert reference.count("<c>") == reference.count("<d>")
        xml, _ = materialize(
            gap_tree, tiny_db, tiny_conn, unified_partition(gap_tree),
            PlanStyle.OUTER_JOIN, True,
        )
        assert xml.count("<c>") == reference.count("<c>")

    @pytest.mark.parametrize("style", list(PlanStyle))
    def test_all_partitions_of_gap_tree(self, gap_tree, tiny_db, tiny_conn,
                                        style):
        import itertools

        reference, _ = materialize(
            gap_tree, tiny_db, tiny_conn, unified_partition(gap_tree),
            PlanStyle.OUTER_JOIN, False,
        )
        edges = [child.index for _, child in gap_tree.edges]
        for r in range(len(edges) + 1):
            for kept in itertools.combinations(edges, r):
                for reduce in (False, True):
                    xml, tagger = materialize(
                        gap_tree, tiny_db, tiny_conn, Partition(kept),
                        style, reduce,
                    )
                    assert xml == reference, (kept, style, reduce)
                    assert tagger.implicit_opens == 0, (kept, style, reduce)
