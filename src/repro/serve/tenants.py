"""Tenant registry: per-tenant admission quotas for the query service.

Each tenant owns one
:class:`~repro.relational.replicas.AdmissionController` built from its
:class:`~repro.relational.replicas.AdmissionPolicy`, so the serving
layer's whole-request quota (``max_inflight_requests``) and the
engine-level stream limits (``max_concurrent_streams`` /
``max_queued_streams`` / ``deadline_ms``) are enforced by the same
object the dispatch layer already understands — a tenant's controller
is simply passed down as the execution's ``max_concurrent``.

Unknown tenants are admitted under ``default_policy`` (each still gets
its *own* controller, so one tenant's quota never counts against
another's); a ``None`` default means unregistered tenants run
unthrottled.
"""

import threading
from dataclasses import dataclass

from repro.relational.replicas import AdmissionController, AdmissionPolicy


@dataclass(frozen=True)
class Tenant:
    """One registered tenant: a name and its admission policy."""

    name: str
    policy: AdmissionPolicy = None


class TenantRegistry:
    """Named tenants and their (lazily built) admission controllers."""

    def __init__(self, default_policy=None):
        self.default_policy = default_policy
        self._lock = threading.Lock()
        self._tenants = {}
        self._controllers = {}

    def register(self, name, policy=None):
        """Register (or re-register) ``name`` under ``policy``; returns
        the :class:`Tenant`.  Re-registering replaces the policy and
        resets the tenant's controller."""
        if isinstance(policy, (int, float)):
            policy = AdmissionPolicy(max_inflight_requests=int(policy))
        tenant = Tenant(name=name, policy=policy)
        with self._lock:
            self._tenants[name] = tenant
            self._controllers.pop(name, None)
        return tenant

    def tenants(self):
        with self._lock:
            return dict(self._tenants)

    def controller(self, name):
        """The tenant's :class:`AdmissionController`, built on first use
        from its policy (or the registry default); None when neither the
        tenant nor the registry carries a policy."""
        with self._lock:
            controller = self._controllers.get(name)
            if controller is not None:
                return controller
            tenant = self._tenants.get(name)
            policy = tenant.policy if tenant is not None else None
            if policy is None:
                policy = self.default_policy
            if policy is None:
                return None
            controller = AdmissionController(policy)
            self._controllers[name] = controller
            return controller

    def stats(self):
        """Per-tenant counters: ``{name: {admitted, shed, inflight}}``."""
        with self._lock:
            controllers = dict(self._controllers)
        return {
            name: {
                "admitted": c.admitted,
                "shed": c.shed,
                "inflight": c.inflight,
            }
            for name, c in controllers.items()
        }
