"""A blocking JSON-line client for the query service.

::

    with ServeClient(host, port) as client:
        reply = client.query("q1", tenant="acme", indent=2)
        print(reply["xml"])
        client.mutate("Nation", op="insert", rows=1)

Each method sends one protocol request and returns the response's
payload dict; a ``{"ok": false}`` response raises
:class:`~repro.serve.protocol.ServeError` carrying the server-side
exception type, the stamped tenant/request id, and (for sheds and
timeouts) the partial report.  One client drives one connection and is
not thread-safe — give each client thread its own.
"""

import socket

from repro.serve.protocol import (
    ServeError,
    decode,
    encode,
    options_to_wire,
)


class ServeClient:
    """One connection to a :class:`~repro.serve.server.Server` front end."""

    def __init__(self, host, port, timeout=30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self):
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _call(self, request):
        self._sock.sendall(encode(request))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", {}))
        return response

    def ping(self):
        return self._call({"op": "ping"})["pong"]

    def stats(self):
        return self._call({"op": "stats"})["stats"]

    def query(self, query, tenant="default", request_id=None,
              partition=None, root_tag="view", indent=None, options=None):
        """Run ``query`` (a registered name, RXL text, or
        ``{"rxl": ...}``); returns the response dict (``xml``,
        ``report``, ``coalesced``, ``stats``).  ``options`` may be an
        :class:`~repro.core.options.ExecutionOptions` (whitelisted
        fields cross the wire) or a ready wire dict."""
        request = {
            "op": "query", "query": query, "tenant": tenant,
            "root_tag": root_tag,
        }
        if request_id is not None:
            request["id"] = request_id
        if partition is not None:
            request["partition"] = partition
        if indent is not None:
            request["indent"] = indent
        wire = (options if isinstance(options, (dict, type(None)))
                else options_to_wire(options))
        if wire:
            request["options"] = wire
        return self._call(request)

    def explain(self, query, tenant="default", partition=None, options=None):
        request = {"op": "explain", "query": query, "tenant": tenant}
        if partition is not None:
            request["partition"] = partition
        wire = (options if isinstance(options, (dict, type(None)))
                else options_to_wire(options))
        if wire:
            request["options"] = wire
        return self._call(request)["sql"]

    def mutate(self, table, op="insert", rows=1, seed=0, tenant="default",
               request_id=None):
        request = {
            "op": "mutate", "table": table, "mutation": op, "rows": rows,
            "seed": seed, "tenant": tenant,
        }
        if request_id is not None:
            request["id"] = request_id
        return self._call(request)
