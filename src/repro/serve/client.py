"""A blocking JSON-line client for the query service.

::

    with ServeClient(host, port) as client:
        reply = client.query("q1", tenant="acme", indent=2)
        print(reply["xml"])
        client.mutate("Nation", op="insert", rows=1)

Each method sends one protocol request and returns the response's
payload dict; a ``{"ok": false}`` response raises
:class:`~repro.serve.protocol.ServeError` carrying the server-side
exception type, the stamped tenant/request id, and (for sheds and
timeouts) the partial report.  One client drives one connection and is
not thread-safe — give each client thread its own.

**Transient-failure retry.**  ``retries=N`` makes every call survive up
to N connection-level failures — a dropped socket, a server restart, a
torn response — by reconnecting and resending the same request after a
capped exponential backoff.  Server-side *errors* (a ``{"ok": false}``
response) are never retried: the server answered; retrying is the
caller's decision.  Retried mutations stay **exactly-once**: when
retries are enabled, :meth:`ServeClient.mutate` pins an idempotency key
(a UUID ``request_id``) to the request before the first send, so a
resend of a mutation whose response was lost deduplicates server-side
(and, when the server runs a WAL, even across a crash + restart in the
middle of the retry window).
"""

import socket
import time
import uuid

from repro.serve.protocol import (
    ServeError,
    decode,
    encode,
    options_to_wire,
)


class ServeClient:
    """One connection to a :class:`~repro.serve.server.Server` front end.

    ``retries`` is the number of *re*-sends after a transient connection
    failure (0 — the default — fails fast); ``backoff_s`` is the first
    retry's sleep, doubling per attempt up to ``max_backoff_s``.
    ``sleep`` is injectable for tests.
    """

    def __init__(self, host, port, timeout=30.0, retries=0,
                 backoff_s=0.05, max_backoff_s=2.0, sleep=time.sleep):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._sleep = sleep
        self._sock = None
        self._rfile = None
        self._connect()

    def _connect(self):
        self._teardown()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout,
        )
        self._rfile = self._sock.makefile("rb")

    def _teardown(self):
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self):
        self._teardown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _send_once(self, request):
        if self._sock is None:
            self._connect()
        self._sock.sendall(encode(request))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # A torn response: the server died mid-write.  The request's
            # fate is unknown — exactly what idempotency keys are for.
            raise ConnectionError("torn response (connection lost mid-frame)")
        response = decode(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", {}))
        return response

    def _call(self, request):
        backoff = self.backoff_s
        attempt = 0
        while True:
            try:
                return self._send_once(request)
            except ServeError:
                raise  # the server answered; not a transient failure
            except (ConnectionError, OSError):
                attempt += 1
                if attempt > self.retries:
                    raise
                self._teardown()
                self._sleep(backoff)
                backoff = min(backoff * 2, self.max_backoff_s)
                try:
                    self._connect()
                except OSError:
                    # Server still down — charge the attempt, keep backing
                    # off; _send_once reconnects when a budget remains.
                    continue

    def ping(self):
        return self._call({"op": "ping"})["pong"]

    def stats(self):
        return self._call({"op": "stats"})["stats"]

    def query(self, query, tenant="default", request_id=None,
              partition=None, root_tag="view", indent=None, options=None):
        """Run ``query`` (a registered name, RXL text, or
        ``{"rxl": ...}``); returns the response dict (``xml``,
        ``report``, ``coalesced``, ``stats``).  ``options`` may be an
        :class:`~repro.core.options.ExecutionOptions` (whitelisted
        fields cross the wire) or a ready wire dict."""
        request = {
            "op": "query", "query": query, "tenant": tenant,
            "root_tag": root_tag,
        }
        if request_id is not None:
            request["id"] = request_id
        if partition is not None:
            request["partition"] = partition
        if indent is not None:
            request["indent"] = indent
        wire = (options if isinstance(options, (dict, type(None)))
                else options_to_wire(options))
        if wire:
            request["options"] = wire
        return self._call(request)

    def explain(self, query, tenant="default", partition=None, options=None):
        request = {"op": "explain", "query": query, "tenant": tenant}
        if partition is not None:
            request["partition"] = partition
        wire = (options if isinstance(options, (dict, type(None)))
                else options_to_wire(options))
        if wire:
            request["options"] = wire
        return self._call(request)["sql"]

    def mutate(self, table, op="insert", rows=1, seed=0, tenant="default",
               request_id=None):
        """Apply a delta; the response carries ``mutated``, ``table``,
        ``generation``, and ``deduplicated``.

        With retries enabled the mutation is pinned to an idempotency
        key before the first send (an explicit ``request_id`` is used as
        given): every resend carries the same id, so a retry of a
        mutation that *did* commit — the response was merely lost —
        returns the recorded result instead of applying twice."""
        if request_id is None and self.retries:
            request_id = f"c-{uuid.uuid4().hex}"
        request = {
            "op": "mutate", "table": table, "mutation": op, "rows": rows,
            "seed": seed, "tenant": tenant,
        }
        if request_id is not None:
            request["id"] = request_id
        return self._call(request)
