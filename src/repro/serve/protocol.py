"""The query service's wire protocol: one JSON object per line.

A client sends one request object per line and reads one response
object per line, in order — the framing is trivial on purpose so any
language (or ``nc``) can speak it.  Requests name an operation::

    {"op": "query",  "query": "q1", "tenant": "acme", "id": "r-1",
     "options": {"style": "outer-join", "workers": 2}}
    {"op": "mutate", "table": "Nation", "mutation": "insert", "rows": 2}
    {"op": "explain", "query": {"rxl": "..."}}
    {"op": "stats"}
    {"op": "ping"}

``query`` is either a name the server registered
(:meth:`~repro.serve.server.Server.register_query`) or ``{"rxl": ...}``
inline text.  Responses are ``{"ok": true, ...}`` with the operation's
payload, or ``{"ok": false, "error": {...}}`` where the error object
carries the exception type, message, and — for errors raised inside the
execution — the originating ``tenant``/``request_id`` stamped by
:func:`~repro.common.errors.tag_request`.

Only a whitelisted subset of
:class:`~repro.core.options.ExecutionOptions` crosses the wire
(:data:`WIRE_OPTIONS`); everything else — observability sessions,
replica pool objects, request contexts, durability paths — is the
server's business.  Simulated timings are deterministic, so ``NaN`` (a
timed-out sum) is the only non-JSON float a report can hold; it crosses
as ``null``.

The wire is hardened, not trusted: a frame longer than
:data:`MAX_FRAME_BYTES` or one that is not valid JSON gets a structured
``{"ok": false}`` error response (tenant/request id stamped when the
frame was parseable enough to carry them) and the connection *stays
open* — a malformed request must not tear down a connection other
requests are multiplexed on.
"""

import json
import math

from repro.common.errors import ReproError
from repro.core.options import ExecutionOptions
from repro.core.sqlgen import PlanStyle
from repro.relational.backends import BACKEND_NAMES
from repro.relational.faults import FaultPolicy, RetryPolicy

#: Hard cap on one request frame (bytes, newline included).  Far above
#: any legitimate request — inline RXL texts are a few KiB — and far
#: below what a hostile or confused client could make the server buffer.
MAX_FRAME_BYTES = 1 << 20

#: ExecutionOptions fields a client may set, with their wire codecs.
WIRE_OPTIONS = (
    "style", "reduce", "budget_ms", "workers", "retries", "fault_seed",
    "fault_rate", "replicas", "hedge_ms", "max_concurrent", "engine",
    "batch_size", "backend",
)

_STYLES = {
    "outer-join": PlanStyle.OUTER_JOIN,
    "outer-union": PlanStyle.OUTER_UNION,
}


class ProtocolError(ReproError, ValueError):
    """A request or response that does not follow the protocol."""


def encode(obj):
    """``obj`` as one protocol line (bytes, newline-terminated)."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line):
    """One protocol line (bytes or str) back to its object."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol line is not a JSON object")
    return obj


def options_from_wire(wire):
    """A client's ``options`` object to :class:`ExecutionOptions`.

    Unknown keys are refused (a typo should not silently run with
    defaults); ``retries``/``fault_seed``/``fault_rate`` build the
    resilience policies the engine understands.
    """
    if wire is None:
        return None
    unknown = set(wire) - set(WIRE_OPTIONS)
    if unknown:
        raise ProtocolError(f"unknown wire option(s): {sorted(unknown)}")
    fields = {}
    style = wire.get("style")
    if style is not None:
        try:
            fields["style"] = _STYLES[style]
        except KeyError:
            raise ProtocolError(
                f"unknown style {style!r} (expected one of "
                f"{sorted(_STYLES)})"
            ) from None
    if "reduce" in wire:
        fields["reduce"] = bool(wire["reduce"])
    retries = wire.get("retries")
    if retries is not None:
        fields["retry"] = RetryPolicy(max_attempts=int(retries))
    if wire.get("fault_seed") is not None or wire.get("fault_rate") is not None:
        fields["faults"] = FaultPolicy(
            seed=int(wire.get("fault_seed") or 0),
            error_rate=float(wire.get("fault_rate") or 0.0),
        )
    for name in ("budget_ms", "hedge_ms"):
        if wire.get(name) is not None:
            fields[name] = float(wire[name])
    for name in ("workers", "replicas", "max_concurrent", "batch_size"):
        if wire.get(name) is not None:
            fields[name] = int(wire[name])
    engine = wire.get("engine")
    if engine is not None:
        if engine not in ("batch", "tuple"):
            raise ProtocolError(
                f"unknown engine {engine!r} (expected 'batch' or 'tuple')"
            )
        fields["engine"] = engine
    backend = wire.get("backend")
    if backend is not None:
        if backend not in BACKEND_NAMES:
            raise ProtocolError(
                f"unknown backend {backend!r} "
                f"(expected one of {', '.join(BACKEND_NAMES)})"
            )
        fields["backend"] = backend
    return ExecutionOptions(**fields)


def options_to_wire(options):
    """The wire dict a client sends for ``options`` (inverse of
    :func:`options_from_wire` over the whitelisted subset)."""
    if options is None:
        return None
    wire = {}
    if options.style is not None:
        wire["style"] = options.style.value
    wire["reduce"] = bool(options.reduce)
    if options.retry is not None:
        wire["retries"] = options.retry.max_attempts
    if options.faults is not None:
        wire["fault_seed"] = options.faults.seed
        wire["fault_rate"] = options.faults.error_rate
    for name in ("budget_ms", "hedge_ms", "workers", "replicas",
                 "max_concurrent", "batch_size", "engine"):
        value = getattr(options, name)
        if value is not None:
            wire[name] = value
    # Only backend *names* cross the wire; a live Backend instance is a
    # local resource and stays client-side.
    if isinstance(options.backend, str):
        wire["backend"] = options.backend
    return wire


def _finite(value):
    if value is None:
        return None
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def report_to_wire(report):
    """A :class:`~repro.core.silkroute.PlanReport` summary as plain JSON
    (non-finite simulated sums — a timed-out plan — cross as null)."""
    if report is None:
        return None
    return {
        "n_streams": report.n_streams,
        "query_ms": _finite(report.query_ms),
        "transfer_ms": _finite(report.transfer_ms),
        "elapsed_query_ms": _finite(report.elapsed_query_ms),
        "elapsed_total_ms": _finite(report.elapsed_total_ms),
        "workers": report.workers,
        "timed_out": report.timed_out,
        "timed_out_label": report.timed_out_label,
        "attempts": report.attempts,
        "retries": report.retries,
        "faults_injected": report.faults_injected,
        "failovers": report.failovers,
        "hedges": report.hedges,
        "hedge_wins": report.hedge_wins,
        "degraded_streams": list(report.degraded_streams),
        "shed_streams": list(report.shed_streams),
    }


def error_to_wire(exc):
    """An exception as the protocol's error object, carrying the stamped
    tenant/request id and the overload/timeout specifics when present."""
    error = {
        "type": type(exc).__name__,
        "message": str(exc),
        "tenant": getattr(exc, "tenant", None),
        "request_id": getattr(exc, "request_id", None),
    }
    reason = getattr(exc, "reason", None)
    if reason is not None:
        error["reason"] = reason
    stream_label = getattr(exc, "stream_label", None)
    if stream_label is not None:
        error["stream_label"] = stream_label
    report = getattr(exc, "report", None)
    if report is not None:
        error["report"] = report_to_wire(report)
    return error


class ServeError(ReproError):
    """A server-side failure surfaced to a protocol client.

    Mirrors the error object: ``kind`` is the original exception type
    name, ``tenant``/``request_id`` the stamped request identity,
    ``reason`` the overload reason (e.g. ``"tenant"`` for a quota shed),
    and ``report`` the partial plan-report dict when the failure carried
    one.
    """

    def __init__(self, error):
        self.kind = error.get("type", "Error")
        self.tenant = error.get("tenant")
        self.request_id = error.get("request_id")
        self.reason = error.get("reason")
        self.stream_label = error.get("stream_label")
        self.report = error.get("report")
        super().__init__(f"{self.kind}: {error.get('message', '')}")
