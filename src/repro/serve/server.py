"""The multi-tenant query service.

One :class:`Server` wraps one shared :class:`~repro.session.Session` —
so every tenant's requests hit the same plan-result cache, per-view
splice caches, and finished-document cache — and layers the serving
concerns on top:

* **Tenancy** — each tenant is admitted by its own
  :class:`~repro.relational.replicas.AdmissionController`
  (:mod:`repro.serve.tenants`): the whole-request quota
  (``max_inflight_requests``) sheds a hammering tenant with
  ``OverloadError(reason="tenant")`` before any work is planned, and a
  tenant policy's stream-level limits ride into the execution as its
  ``max_concurrent``.
* **Coalescing** — identical in-flight queries (same view text, plan,
  serialization, execution options, and per-table generation vector)
  share one execution through a
  :class:`~repro.relational.cache.SingleFlight`: the leader runs, every
  follower receives the byte-identical document and report.  The key
  includes the generation vector, so coalescing never spans a mutation.
* **Consistency** — mutations take the write side of a reader/writer
  lock; queries share the read side.  Every admitted request is
  appended to an execution log whose order is, by construction, a
  serialization the concurrent run is equivalent to: replaying the log
  serially on a fresh database reproduces every document byte-for-byte
  and every simulated timing exactly (:meth:`Server.replay` — the soak
  tests' oracle).
* **Liveness of IVM** — a mutation bumps table generations through the
  shared session, so the next query invalidates exactly the dependent
  plan/splice/document entries (PR 7's ``dependency_key``), live, while
  other tenants keep reading.

The socket front end (:meth:`Server.start` / :meth:`Server.serve_forever`)
speaks the JSON-line protocol of :mod:`repro.serve.protocol`; in-process
callers use :meth:`Server.query` / :meth:`Server.mutate` directly.
"""

import socketserver
import threading
import time
from contextlib import contextmanager

from repro.common.errors import QueryError, ReproError
from repro.core.options import RequestContext, resolve_options
from repro.obs.metrics import MetricsRegistry
from repro.relational.cache import SingleFlight
from repro.serve.protocol import (
    ProtocolError,
    error_to_wire,
    options_from_wire,
    report_to_wire,
)
from repro.serve.tenants import TenantRegistry
from repro.session import QueryResult, Session


class _ReadWriteLock:
    """A writer-preferring reader/writer lock.

    Queries share the read side; a mutation's write side waits for the
    in-flight readers to drain while blocking new ones — so writers
    cannot starve and every request falls on exactly one side of every
    mutation (the property the execution log's serializability rests
    on).
    """

    def __init__(self):
        self._cv = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cv:
            while self._writer or self._writers_waiting:
                self._cv.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cv:
                self._readers -= 1
                if not self._readers:
                    self._cv.notify_all()

    @contextmanager
    def write(self):
        with self._cv:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cv.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cv:
                self._writer = False
                self._cv.notify_all()


class Server:
    """An in-process multi-tenant query service over one shared session.

    ``session`` (or the ``db``/``options``/``document_cache_bytes``
    used to build one) is shared by every tenant.  ``queries`` maps
    names clients may use on the wire to RXL texts
    (:meth:`register_query` adds more).  ``default_policy`` is the
    admission policy applied to tenants without their own
    (:meth:`register_tenant`); None admits unregistered tenants
    unthrottled.

    The server keeps its own :class:`~repro.obs.metrics.MetricsRegistry`
    (``serve.*`` counters, ``serve.latency_ms`` histogram with
    p50/p95/p99) separate from any per-execution observability session —
    serving metrics are wall-clock and non-deterministic by nature,
    execution metrics stay deterministic.
    """

    def __init__(self, session=None, db=None, queries=None,
                 default_policy=None, options=None,
                 document_cache_bytes=None):
        if session is None:
            session = Session(db, options=options,
                              document_cache_bytes=document_cache_bytes)
        self.session = session
        self.registry = TenantRegistry(default_policy)
        self.metrics = MetricsRegistry()
        self._queries = dict(queries or {})
        self._rw = _ReadWriteLock()
        self._flight = SingleFlight()
        self._log = []
        self._log_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_seq = 0
        self._tcp = None
        self._tcp_thread = None

    # -- registration ------------------------------------------------------

    def register_query(self, name, rxl_text):
        """Expose ``rxl_text`` to clients under ``name``."""
        self._queries[name] = rxl_text
        return name

    def register_tenant(self, name, policy=None):
        """Register tenant ``name`` under an
        :class:`~repro.relational.replicas.AdmissionPolicy` (or an int —
        a bare ``max_inflight_requests`` quota)."""
        return self.registry.register(name, policy)

    def queries(self):
        return dict(self._queries)

    # -- request plumbing --------------------------------------------------

    def _request_id(self, request_id):
        if request_id is not None:
            return request_id
        with self._id_lock:
            self._next_seq += 1
            return f"r-{self._next_seq}"

    def _resolve_rxl(self, query):
        if isinstance(query, dict):
            query = query.get("rxl")
        if not isinstance(query, str):
            raise QueryError(f"unservable query {query!r}")
        rxl = self._queries.get(query)
        if rxl is not None:
            return rxl
        head = query.split(None, 1)
        if head and head[0].lower() in ("from", "construct"):
            return query  # inline RXL text
        raise QueryError(
            f"unknown query {query!r} (registered: {sorted(self._queries)})"
        )

    def _admit(self, tenant, request_id):
        """Per-tenant whole-request admission; returns the controller to
        release (None when the tenant is unthrottled)."""
        controller = self.registry.controller(tenant)
        if controller is not None:
            try:
                controller.acquire_request(tenant, request_id)
            except Exception:
                self.metrics.inc("serve.shed")
                self.metrics.inc(f"serve.tenant.{tenant}.shed")
                raise
        return controller

    def _canonical_options(self, options, overrides, controller):
        """The request's resolved options with everything that cannot (or
        must not) key coalescing stripped: the observability session and
        request context hash by identity, and a tenant controller is
        replaced by its frozen policy so equal policies coalesce and the
        execution log replays without live objects."""
        opts = resolve_options(
            options if options is not None else self.session.options,
            **overrides,
        )
        if controller is not None:
            policy = controller.policy
            if (policy.max_concurrent_streams is not None
                    or policy.max_queued_streams is not None
                    or policy.deadline_ms is not None):
                opts = opts.replace(max_concurrent=policy)
        return opts.replace(obs=None, request=None)

    def _append_log(self, kind, **payload):
        with self._log_lock:
            self._log.append(dict(kind=kind, **payload))

    def execution_log(self):
        """The admitted requests, in an order the concurrent execution is
        equivalent to (every query falls between the mutations it saw)."""
        with self._log_lock:
            return tuple(self._log)

    # -- the service surface ----------------------------------------------

    def query(self, query, tenant="default", request_id=None,
              partition=None, root_tag="view", indent=None, options=None,
              obs=None, **overrides):
        """Serve one query request; returns a
        :class:`~repro.session.QueryResult` whose ``coalesced`` flag
        says whether this request shared another's execution.

        ``query`` is a registered name or RXL text; ``options`` and
        keyword ``overrides`` merge over the session defaults exactly as
        in :meth:`Session.materialize`.  ``obs`` attaches an
        observability session to executions this request *leads* (a
        coalesced follower performs no execution to observe).
        """
        request_id = self._request_id(request_id)
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.tenant.{tenant}.requests")
        start = time.perf_counter()
        controller = self._admit(tenant, request_id)
        try:
            with self._rw.read():
                rxl = self._resolve_rxl(query)
                opts = self._canonical_options(options, overrides, controller)
                generations = tuple(
                    sorted(self.session.database.table_generations().items())
                )
                key = (rxl, partition, root_tag, indent, opts, generations)
                context = RequestContext(tenant=tenant, request_id=request_id)

                def run():
                    return self.session.materialize(
                        rxl, partition=partition, root_tag=root_tag,
                        indent=indent,
                        options=opts.replace(obs=obs, request=context),
                    )

                try:
                    shared, led = self._flight.do(key, run)
                except Exception:
                    self.metrics.inc("serve.errors")
                    raise
                # Logged only once the execution succeeded (a failed
                # request produced no document to replay) — still under
                # the read lock, so no mutation lands between the
                # generation snapshot and the log entry.
                self._append_log(
                    "query", tenant=tenant, request_id=request_id, rxl=rxl,
                    partition=partition, root_tag=root_tag, indent=indent,
                    options=opts,
                )
            if not led:
                self.metrics.inc("serve.coalesced")
            stats = dict(shared.stats)
            stats["serve"] = {"tenant": tenant, "request_id": request_id}
            return QueryResult(
                xml=shared.xml, report=shared.report, tagger=shared.tagger,
                stats=stats, coalesced=not led,
            )
        finally:
            if controller is not None:
                controller.release_request()
            self.metrics.observe(
                "serve.latency_ms", (time.perf_counter() - start) * 1000.0,
            )

    def explain(self, query, tenant="default", request_id=None,
                partition=None, options=None, **overrides):
        """The SQL the plan would send (no execution, no admission —
        explain is free)."""
        with self._rw.read():
            rxl = self._resolve_rxl(query)
            opts = resolve_options(
                options if options is not None else self.session.options,
                **overrides,
            )
            return self.session.explain(rxl, partition, options=opts)

    def mutate(self, table, op="insert", rows=1, seed=0, tenant="default",
               request_id=None):
        """Apply a delta through the service: exclusive against every
        query, logged, and immediately visible (dependent cache keys move
        with the table generation)."""
        request_id = self._request_id(request_id)
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.tenant.{tenant}.requests")
        start = time.perf_counter()
        controller = self._admit(tenant, request_id)
        try:
            with self._rw.write():
                try:
                    result = self.session.mutate(table, op=op, rows=rows,
                                                 seed=seed)
                except Exception:
                    self.metrics.inc("serve.errors")
                    raise
                self._append_log(
                    "mutate", tenant=tenant, request_id=request_id,
                    table=table, op=op, rows=rows, seed=seed,
                )
            self.metrics.inc("serve.mutations")
            stats = dict(result.stats)
            stats["serve"] = {"tenant": tenant, "request_id": request_id}
            return QueryResult(
                mutated=result.mutated, table=result.table, stats=stats,
            )
        finally:
            if controller is not None:
                controller.release_request()
            self.metrics.observe(
                "serve.latency_ms", (time.perf_counter() - start) * 1000.0,
            )

    def stats(self):
        """Service counters: requests/coalesced/shed/mutations/errors,
        per-tenant admission, latency percentiles, and the shared
        session's cache stats."""
        snapshot = self.metrics.snapshot()
        latency = snapshot["histograms"].get("serve.latency_ms")
        stats = {
            "requests": self.metrics.counter("serve.requests"),
            "coalesced": self.metrics.counter("serve.coalesced"),
            "shed": self.metrics.counter("serve.shed"),
            "mutations": self.metrics.counter("serve.mutations"),
            "errors": self.metrics.counter("serve.errors"),
            "tenants": self.registry.stats(),
            "latency_ms": latency,
            "log_entries": len(self.execution_log()),
        }
        cache = self.session.silkroute.cache
        if cache is not None:
            stats["plan_cache"] = cache.stats().as_dict()
        return stats

    # -- the serial oracle -------------------------------------------------

    def replay(self, session=None):
        """Re-run the execution log serially against ``session`` (default:
        a fresh Configuration-A session, matching ``Server()``'s default
        database) and return the per-entry
        :class:`~repro.session.QueryResult` list.

        Because the log is a serialization the concurrent run was
        equivalent to, the replay's documents are byte-identical and its
        simulated timings exactly those the live clients saw — the soak
        tests diff them directly.
        """
        if session is None:
            session = Session()
        results = []
        for entry in self.execution_log():
            if entry["kind"] == "query":
                results.append(session.materialize(
                    entry["rxl"], partition=entry["partition"],
                    root_tag=entry["root_tag"], indent=entry["indent"],
                    options=entry["options"],
                ))
            else:
                results.append(session.mutate(
                    entry["table"], op=entry["op"], rows=entry["rows"],
                    seed=entry["seed"],
                ))
        return results

    # -- the socket front end ----------------------------------------------

    def handle_request(self, request):
        """One protocol request object to its response object (shared by
        the socket handler and the protocol tests)."""
        op = request.get("op")
        tenant = request.get("tenant", "default")
        request_id = request.get("id")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "query":
                result = self.query(
                    request.get("query"), tenant=tenant,
                    request_id=request_id,
                    partition=request.get("partition"),
                    root_tag=request.get("root_tag", "view"),
                    indent=request.get("indent"),
                    options=options_from_wire(request.get("options")),
                )
                return {
                    "ok": True,
                    "xml": result.xml,
                    "coalesced": result.coalesced,
                    "report": report_to_wire(result.report),
                    "stats": result.stats.get("serve"),
                }
            if op == "explain":
                result = self.explain(
                    request.get("query"), tenant=tenant,
                    request_id=request_id,
                    partition=request.get("partition"),
                    options=options_from_wire(request.get("options")),
                )
                return {"ok": True, "sql": list(result.sql)}
            if op == "mutate":
                result = self.mutate(
                    request.get("table"),
                    op=request.get("mutation", "insert"),
                    rows=int(request.get("rows", 1)),
                    seed=int(request.get("seed", 0)),
                    tenant=tenant, request_id=request_id,
                )
                return {
                    "ok": True,
                    "mutated": result.mutated,
                    "table": result.table,
                    "generation": result.stats.get("generation"),
                }
            raise ProtocolError(f"unknown op {op!r}")
        except (ReproError, ProtocolError, ValueError, TypeError) as exc:
            return {"ok": False, "error": error_to_wire(exc)}

    def start(self, host="127.0.0.1", port=0):
        """Bind the JSON-line front end and serve it from a background
        thread; returns the bound ``(host, port)``."""
        if self._tcp is not None:
            raise RuntimeError("server already started")
        self._tcp = _TcpFrontEnd((host, port), _Handler)
        self._tcp.repro_server = self
        self._tcp_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve", daemon=True,
        )
        self._tcp_thread.start()
        return self._tcp.server_address[:2]

    def serve_forever(self, host="127.0.0.1", port=0, ready=None):
        """Bind and serve on the calling thread (the CLI's entry point).
        ``ready`` is called with the bound ``(host, port)`` once
        listening."""
        self._tcp = _TcpFrontEnd((host, port), _Handler)
        self._tcp.repro_server = self
        if ready is not None:
            ready(self._tcp.server_address[:2])
        try:
            self._tcp.serve_forever()
        finally:
            self._tcp.server_close()
            self._tcp = None

    def shutdown(self):
        """Stop the socket front end (in-process serving keeps working)."""
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            if self._tcp_thread is not None:
                self._tcp_thread.join(timeout=5)
            self._tcp = None
            self._tcp_thread = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()


class _Handler(socketserver.StreamRequestHandler):
    """One connection: JSON-line requests in, JSON-line responses out."""

    def handle(self):
        from repro.serve.protocol import decode, encode

        server = self.server.repro_server
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                response = server.handle_request(decode(line))
            except Exception as exc:  # never kill the connection loop
                response = {"ok": False, "error": error_to_wire(exc)}
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _TcpFrontEnd(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
