"""The multi-tenant query service.

One :class:`Server` wraps one shared :class:`~repro.session.Session` —
so every tenant's requests hit the same plan-result cache, per-view
splice caches, and finished-document cache — and layers the serving
concerns on top:

* **Tenancy** — each tenant is admitted by its own
  :class:`~repro.relational.replicas.AdmissionController`
  (:mod:`repro.serve.tenants`): the whole-request quota
  (``max_inflight_requests``) sheds a hammering tenant with
  ``OverloadError(reason="tenant")`` before any work is planned, and a
  tenant policy's stream-level limits ride into the execution as its
  ``max_concurrent``.
* **Coalescing** — identical in-flight queries (same view text, plan,
  serialization, execution options, and per-table generation vector)
  share one execution through a
  :class:`~repro.relational.cache.SingleFlight`: the leader runs, every
  follower receives the byte-identical document and report.  The key
  includes the generation vector, so coalescing never spans a mutation.
* **Consistency** — mutations take the write side of a reader/writer
  lock; queries share the read side.  Every admitted request is
  appended to an execution log whose order is, by construction, a
  serialization the concurrent run is equivalent to: replaying the log
  serially on a fresh database reproduces every document byte-for-byte
  and every simulated timing exactly (:meth:`Server.replay` — the soak
  tests' oracle).
* **Liveness of IVM** — a mutation bumps table generations through the
  shared session, so the next query invalidates exactly the dependent
  plan/splice/document entries (PR 7's ``dependency_key``), live, while
  other tenants keep reading.

The socket front end (:meth:`Server.start` / :meth:`Server.serve_forever`)
speaks the JSON-line protocol of :mod:`repro.serve.protocol`; in-process
callers use :meth:`Server.query` / :meth:`Server.mutate` directly.
"""

import socketserver
import threading
import time
import uuid
from contextlib import contextmanager

from repro.common.errors import OverloadError, QueryError, ReproError, tag_request
from repro.core.options import RequestContext, resolve_options
from repro.obs.metrics import MetricsRegistry
from repro.relational.cache import SingleFlight
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    error_to_wire,
    options_from_wire,
    report_to_wire,
)
from repro.serve.tenants import TenantRegistry
from repro.session import QueryResult, Session


class _ReadWriteLock:
    """A writer-preferring reader/writer lock.

    Queries share the read side; a mutation's write side waits for the
    in-flight readers to drain while blocking new ones — so writers
    cannot starve and every request falls on exactly one side of every
    mutation (the property the execution log's serializability rests
    on).
    """

    def __init__(self):
        self._cv = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cv:
            while self._writer or self._writers_waiting:
                self._cv.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cv:
                self._readers -= 1
                if not self._readers:
                    self._cv.notify_all()

    @contextmanager
    def write(self):
        with self._cv:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cv.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cv:
                self._writer = False
                self._cv.notify_all()


class Server:
    """An in-process multi-tenant query service over one shared session.

    ``session`` (or the ``db``/``options``/``document_cache_bytes``
    used to build one) is shared by every tenant.  ``queries`` maps
    names clients may use on the wire to RXL texts
    (:meth:`register_query` adds more).  ``default_policy`` is the
    admission policy applied to tenants without their own
    (:meth:`register_tenant`); None admits unregistered tenants
    unthrottled.

    The server keeps its own :class:`~repro.obs.metrics.MetricsRegistry`
    (``serve.*`` counters, ``serve.latency_ms`` histogram with
    p50/p95/p99) separate from any per-execution observability session —
    serving metrics are wall-clock and non-deterministic by nature,
    execution metrics stay deterministic.
    """

    def __init__(self, session=None, db=None, queries=None,
                 default_policy=None, options=None,
                 document_cache_bytes=None, wal=None, checkpoint_every=None,
                 max_frame_bytes=None):
        if session is None:
            session = Session(db, options=options,
                              document_cache_bytes=document_cache_bytes,
                              wal=wal, checkpoint_every=checkpoint_every)
        self.session = session
        self.registry = TenantRegistry(default_policy)
        self.metrics = MetricsRegistry()
        if self.session.wal is not None:
            # The log's wal.* counters land next to the serve.* ones.
            self.session.wal.metrics = self.metrics
        self.max_frame_bytes = (max_frame_bytes if max_frame_bytes is not None
                                else MAX_FRAME_BYTES)
        self._queries = dict(queries or {})
        self._rw = _ReadWriteLock()
        self._flight = SingleFlight()
        self._log = []
        self._log_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_seq = 0
        #: Auto-generated request ids carry a per-process token so ids
        #: never collide across a restart — the WAL's dedup map must see
        #: a *retry* as equal and a *new request* as fresh.
        self._id_token = uuid.uuid4().hex[:8]
        #: Fallback exactly-once map for servers without a WAL: request
        #: id -> recorded mutate result (process-local, capped).
        self._dedup = {}
        self._dedup_order = []
        self._draining = False
        self._inflight = 0
        self._drain_cv = threading.Condition()
        self._tcp = None
        self._tcp_thread = None

    # -- registration ------------------------------------------------------

    def register_query(self, name, rxl_text):
        """Expose ``rxl_text`` to clients under ``name``."""
        self._queries[name] = rxl_text
        return name

    def register_tenant(self, name, policy=None):
        """Register tenant ``name`` under an
        :class:`~repro.relational.replicas.AdmissionPolicy` (or an int —
        a bare ``max_inflight_requests`` quota)."""
        return self.registry.register(name, policy)

    def queries(self):
        return dict(self._queries)

    # -- request plumbing --------------------------------------------------

    def _request_id(self, request_id):
        if request_id is not None:
            return request_id
        with self._id_lock:
            self._next_seq += 1
            return f"r-{self._id_token}-{self._next_seq}"

    # -- drain -------------------------------------------------------------

    def _enter_request(self, tenant, request_id):
        """Count one request in flight; shed it when draining.  The shed
        is typed (``OverloadError(reason="draining")``) so a client's
        retry logic can distinguish a restarting server from a full one."""
        with self._drain_cv:
            if self._draining:
                self.metrics.inc("serve.draining_shed")
                raise tag_request(
                    OverloadError("server is draining", reason="draining"),
                    tenant, request_id,
                )
            self._inflight += 1

    def _exit_request(self):
        with self._drain_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._drain_cv.notify_all()

    @property
    def draining(self):
        return self._draining

    def drain(self, timeout=30.0):
        """Stop admitting new requests and wait (up to ``timeout``
        seconds) for the in-flight ones to finish; returns True when the
        server is empty.  Idempotent — the SIGTERM path of graceful
        shutdown."""
        with self._drain_cv:
            self._draining = True
            deadline = time.monotonic() + timeout
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drain_cv.wait(remaining)
            return True

    def undrain(self):
        """Re-open admission (tests and planned maintenance windows)."""
        with self._drain_cv:
            self._draining = False

    def terminate(self, timeout=30.0):
        """Graceful SIGTERM shutdown: drain, stop the socket front end,
        checkpoint the WAL (so the next start recovers from a snapshot,
        not a long log replay), and close it.  Returns True when every
        in-flight request finished inside ``timeout``."""
        drained = self.drain(timeout)
        self.shutdown()
        wal = self.session.wal
        if wal is not None:
            try:
                wal.checkpoint(self.session.database)
            finally:
                wal.close()
        return drained

    def _resolve_rxl(self, query):
        if isinstance(query, dict):
            query = query.get("rxl")
        if not isinstance(query, str):
            raise QueryError(f"unservable query {query!r}")
        rxl = self._queries.get(query)
        if rxl is not None:
            return rxl
        head = query.split(None, 1)
        if head and head[0].lower() in ("from", "construct"):
            return query  # inline RXL text
        raise QueryError(
            f"unknown query {query!r} (registered: {sorted(self._queries)})"
        )

    def _admit(self, tenant, request_id):
        """Per-tenant whole-request admission; returns the controller to
        release (None when the tenant is unthrottled)."""
        controller = self.registry.controller(tenant)
        if controller is not None:
            try:
                controller.acquire_request(tenant, request_id)
            except Exception:
                self.metrics.inc("serve.shed")
                self.metrics.inc(f"serve.tenant.{tenant}.shed")
                raise
        return controller

    def _canonical_options(self, options, overrides, controller):
        """The request's resolved options with everything that cannot (or
        must not) key coalescing stripped: the observability session and
        request context hash by identity, and a tenant controller is
        replaced by its frozen policy so equal policies coalesce and the
        execution log replays without live objects."""
        opts = resolve_options(
            options if options is not None else self.session.options,
            **overrides,
        )
        if controller is not None:
            policy = controller.policy
            if (policy.max_concurrent_streams is not None
                    or policy.max_queued_streams is not None
                    or policy.deadline_ms is not None):
                opts = opts.replace(max_concurrent=policy)
        return opts.replace(obs=None, request=None, wal_path=None,
                            checkpoint_every=None)

    def _append_log(self, kind, **payload):
        with self._log_lock:
            self._log.append(dict(kind=kind, **payload))

    def execution_log(self):
        """The admitted requests, in an order the concurrent execution is
        equivalent to (every query falls between the mutations it saw)."""
        with self._log_lock:
            return tuple(self._log)

    # -- the service surface ----------------------------------------------

    def query(self, query, tenant="default", request_id=None,
              partition=None, root_tag="view", indent=None, options=None,
              obs=None, **overrides):
        """Serve one query request; returns a
        :class:`~repro.session.QueryResult` whose ``coalesced`` flag
        says whether this request shared another's execution.

        ``query`` is a registered name or RXL text; ``options`` and
        keyword ``overrides`` merge over the session defaults exactly as
        in :meth:`Session.materialize`.  ``obs`` attaches an
        observability session to executions this request *leads* (a
        coalesced follower performs no execution to observe).
        """
        request_id = self._request_id(request_id)
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.tenant.{tenant}.requests")
        start = time.perf_counter()
        self._enter_request(tenant, request_id)
        controller = None
        try:
            controller = self._admit(tenant, request_id)
            with self._rw.read():
                rxl = self._resolve_rxl(query)
                opts = self._canonical_options(options, overrides, controller)
                generations = tuple(
                    sorted(self.session.database.table_generations().items())
                )
                key = (rxl, partition, root_tag, indent, opts, generations)
                context = RequestContext(tenant=tenant, request_id=request_id)

                def run():
                    return self.session.materialize(
                        rxl, partition=partition, root_tag=root_tag,
                        indent=indent,
                        options=opts.replace(obs=obs, request=context),
                    )

                try:
                    shared, led = self._flight.do(key, run)
                except Exception:
                    self.metrics.inc("serve.errors")
                    raise
                # Logged only once the execution succeeded (a failed
                # request produced no document to replay) — still under
                # the read lock, so no mutation lands between the
                # generation snapshot and the log entry.
                self._append_log(
                    "query", tenant=tenant, request_id=request_id, rxl=rxl,
                    partition=partition, root_tag=root_tag, indent=indent,
                    options=opts,
                )
            if not led:
                self.metrics.inc("serve.coalesced")
            stats = dict(shared.stats)
            stats["serve"] = {"tenant": tenant, "request_id": request_id}
            return QueryResult(
                xml=shared.xml, report=shared.report, tagger=shared.tagger,
                stats=stats, coalesced=not led,
            )
        finally:
            if controller is not None:
                controller.release_request()
            self._exit_request()
            self.metrics.observe(
                "serve.latency_ms", (time.perf_counter() - start) * 1000.0,
            )

    def explain(self, query, tenant="default", request_id=None,
                partition=None, options=None, **overrides):
        """The SQL the plan would send (no execution, no admission —
        explain is free)."""
        with self._rw.read():
            rxl = self._resolve_rxl(query)
            opts = resolve_options(
                options if options is not None else self.session.options,
                **overrides,
            )
            return self.session.explain(rxl, partition, options=opts)

    def _recorded_mutation(self, request_id):
        """The recorded result of an already-committed mutation request,
        or None.  With a WAL the map is the log's (durable, restart-proof);
        without one it is a process-local capped dict — enough to absorb
        a client's in-session retries."""
        if request_id is None:
            return None
        wal = self.session.wal
        if wal is not None:
            return wal.request_result(request_id)
        return self._dedup.get(request_id)

    def _record_mutation(self, request_id, recorded):
        if request_id is None or self.session.wal is not None:
            return  # the WAL's commit record already carries it
        self._dedup[request_id] = recorded
        self._dedup_order.append(request_id)
        while len(self._dedup_order) > 4096:
            self._dedup.pop(self._dedup_order.pop(0), None)

    def mutate(self, table, op="insert", rows=1, seed=0, tenant="default",
               request_id=None):
        """Apply a delta through the service: exclusive against every
        query, logged, durable when a WAL is attached, and immediately
        visible (dependent cache keys move with the table generation).

        ``request_id`` makes the mutation **exactly-once**: a repeat of
        an already-committed id (a client retry after a lost response —
        or, with a WAL, after a server crash and restart) returns the
        recorded result without re-applying the delta."""
        request_id = self._request_id(request_id)
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.tenant.{tenant}.requests")
        start = time.perf_counter()
        self._enter_request(tenant, request_id)
        controller = None
        try:
            controller = self._admit(tenant, request_id)
            with self._rw.write():
                recorded = self._recorded_mutation(request_id)
                if recorded is not None:
                    self.metrics.inc("serve.deduped")
                    stats = {
                        "generation": recorded["generation"],
                        "deduplicated": True,
                        "serve": {"tenant": tenant, "request_id": request_id},
                    }
                    return QueryResult(
                        mutated=recorded["mutated"],
                        table=recorded["table"], stats=stats,
                    )
                try:
                    result = self.session.mutate(table, op=op, rows=rows,
                                                 seed=seed,
                                                 request_id=request_id)
                except Exception as exc:
                    self.metrics.inc("serve.errors")
                    raise tag_request(exc, tenant, request_id)
                self._record_mutation(request_id, {
                    "mutated": result.mutated, "table": result.table,
                    "generation": result.stats.get("generation"),
                })
                self._append_log(
                    "mutate", tenant=tenant, request_id=request_id,
                    table=table, op=op, rows=rows, seed=seed,
                )
            self.metrics.inc("serve.mutations")
            stats = dict(result.stats)
            stats["serve"] = {"tenant": tenant, "request_id": request_id}
            return QueryResult(
                mutated=result.mutated, table=result.table, stats=stats,
            )
        finally:
            if controller is not None:
                controller.release_request()
            self._exit_request()
            self.metrics.observe(
                "serve.latency_ms", (time.perf_counter() - start) * 1000.0,
            )

    def stats(self):
        """Service counters: requests/coalesced/shed/mutations/errors,
        per-tenant admission, latency percentiles, and the shared
        session's cache stats."""
        snapshot = self.metrics.snapshot()
        latency = snapshot["histograms"].get("serve.latency_ms")
        stats = {
            "requests": self.metrics.counter("serve.requests"),
            "coalesced": self.metrics.counter("serve.coalesced"),
            "shed": self.metrics.counter("serve.shed"),
            "mutations": self.metrics.counter("serve.mutations"),
            "errors": self.metrics.counter("serve.errors"),
            "deduped": self.metrics.counter("serve.deduped"),
            "draining": self._draining,
            "draining_shed": self.metrics.counter("serve.draining_shed"),
            "client_disconnects": self.metrics.counter(
                "serve.client_disconnects"),
            "malformed_frames": self.metrics.counter(
                "serve.malformed_frames"),
            "oversized_frames": self.metrics.counter(
                "serve.oversized_frames"),
            "tenants": self.registry.stats(),
            "latency_ms": latency,
            "log_entries": len(self.execution_log()),
        }
        wal = self.session.wal
        if wal is not None:
            stats["wal"] = {
                "appends": self.metrics.counter("wal.appends"),
                "fsyncs": self.metrics.counter("wal.fsyncs"),
                "checkpoints": self.metrics.counter("wal.checkpoints"),
                "dedup_hits": self.metrics.counter("wal.dedup_hits"),
                "size_bytes": wal.size_bytes(),
            }
        cache = self.session.silkroute.cache
        if cache is not None:
            stats["plan_cache"] = cache.stats().as_dict()
        return stats

    # -- the serial oracle -------------------------------------------------

    def replay(self, session=None):
        """Re-run the execution log serially against ``session`` (default:
        a fresh Configuration-A session, matching ``Server()``'s default
        database) and return the per-entry
        :class:`~repro.session.QueryResult` list.

        Because the log is a serialization the concurrent run was
        equivalent to, the replay's documents are byte-identical and its
        simulated timings exactly those the live clients saw — the soak
        tests diff them directly.
        """
        if session is None:
            session = Session()
        results = []
        for entry in self.execution_log():
            if entry["kind"] == "query":
                results.append(session.materialize(
                    entry["rxl"], partition=entry["partition"],
                    root_tag=entry["root_tag"], indent=entry["indent"],
                    options=entry["options"],
                ))
            else:
                results.append(session.mutate(
                    entry["table"], op=entry["op"], rows=entry["rows"],
                    seed=entry["seed"],
                ))
        return results

    # -- the socket front end ----------------------------------------------

    def handle_request(self, request):
        """One protocol request object to its response object (shared by
        the socket handler and the protocol tests)."""
        op = request.get("op")
        tenant = request.get("tenant", "default")
        request_id = request.get("id")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "query":
                result = self.query(
                    request.get("query"), tenant=tenant,
                    request_id=request_id,
                    partition=request.get("partition"),
                    root_tag=request.get("root_tag", "view"),
                    indent=request.get("indent"),
                    options=options_from_wire(request.get("options")),
                )
                return {
                    "ok": True,
                    "xml": result.xml,
                    "coalesced": result.coalesced,
                    "report": report_to_wire(result.report),
                    "stats": result.stats.get("serve"),
                }
            if op == "explain":
                result = self.explain(
                    request.get("query"), tenant=tenant,
                    request_id=request_id,
                    partition=request.get("partition"),
                    options=options_from_wire(request.get("options")),
                )
                return {"ok": True, "sql": list(result.sql)}
            if op == "mutate":
                result = self.mutate(
                    request.get("table"),
                    op=request.get("mutation", "insert"),
                    rows=int(request.get("rows", 1)),
                    seed=int(request.get("seed", 0)),
                    tenant=tenant, request_id=request_id,
                )
                return {
                    "ok": True,
                    "mutated": result.mutated,
                    "table": result.table,
                    "generation": result.stats.get("generation"),
                    "deduplicated": bool(result.stats.get("deduplicated")),
                }
            raise ProtocolError(f"unknown op {op!r}")
        except (ReproError, ProtocolError, ValueError, TypeError) as exc:
            # Stamp the request identity so even pre-dispatch failures
            # (unknown op, malformed options) name their originator.
            return {"ok": False,
                    "error": error_to_wire(tag_request(exc, tenant,
                                                       request_id))}

    def start(self, host="127.0.0.1", port=0):
        """Bind the JSON-line front end and serve it from a background
        thread; returns the bound ``(host, port)``."""
        if self._tcp is not None:
            raise RuntimeError("server already started")
        self._tcp = _TcpFrontEnd((host, port), _Handler)
        self._tcp.repro_server = self
        self._tcp_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve", daemon=True,
        )
        self._tcp_thread.start()
        return self._tcp.server_address[:2]

    def serve_forever(self, host="127.0.0.1", port=0, ready=None):
        """Bind and serve on the calling thread (the CLI's entry point).
        ``ready`` is called with the bound ``(host, port)`` once
        listening."""
        tcp = self._tcp = _TcpFrontEnd((host, port), _Handler)
        tcp.repro_server = self
        if ready is not None:
            ready(tcp.server_address[:2])
        try:
            tcp.serve_forever()
        finally:
            # A concurrent terminate()/shutdown() may have closed and
            # cleared self._tcp already; closing twice is harmless.
            tcp.server_close()
            self._tcp = None

    def shutdown(self):
        """Stop the socket front end (in-process serving keeps working)."""
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
            if self._tcp_thread is not None:
                self._tcp_thread.join(timeout=5)
            self._tcp = None
            self._tcp_thread = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()


class _Handler(socketserver.StreamRequestHandler):
    """One connection: JSON-line requests in, JSON-line responses out.

    Hardened against the wire's realities: an oversized frame is drained
    and answered with a structured error (the connection survives), a
    malformed frame gets the same treatment, and a client that vanished
    mid-read or mid-response (``BrokenPipeError``/``ConnectionResetError``
    — also surfacing as ``ConnectionError``/``OSError`` from the socket
    layer) is counted in ``serve.client_disconnects`` and the handler
    returns cleanly — the request slot and thread are released, never
    left writing to a dead socket.
    """

    def handle(self):
        from repro.serve.protocol import decode, encode

        server = self.server.repro_server
        limit = server.max_frame_bytes
        while True:
            try:
                line = self.rfile.readline(limit + 1)
            except (ConnectionError, OSError):
                server.metrics.inc("serve.client_disconnects")
                return
            if not line:
                return
            if len(line) > limit:
                if not self._drain_oversized(server):
                    return
                server.metrics.inc("serve.oversized_frames")
                response = {"ok": False, "error": error_to_wire(
                    ProtocolError(
                        f"frame exceeds {limit} bytes"
                    ))}
            elif not line.strip():
                continue
            else:
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    server.metrics.inc("serve.malformed_frames")
                    response = {"ok": False, "error": error_to_wire(exc)}
                else:
                    try:
                        response = server.handle_request(request)
                    except Exception as exc:  # never kill the loop
                        response = {"ok": False, "error": error_to_wire(exc)}
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except (ConnectionError, OSError):
                server.metrics.inc("serve.client_disconnects")
                return

    def _drain_oversized(self, server):
        """Swallow the rest of an oversized frame up to its newline so
        the next read starts on a frame boundary; False when the client
        disconnected (or the frame never ends within reason)."""
        for _ in range(1024):  # caps drained garbage at ~1024 * limit
            try:
                chunk = self.rfile.readline(server.max_frame_bytes + 1)
            except (ConnectionError, OSError):
                server.metrics.inc("serve.client_disconnects")
                return False
            if not chunk:
                return False
            if chunk.endswith(b"\n"):
                return True
        return False


class _TcpFrontEnd(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
