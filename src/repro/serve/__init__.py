"""The long-running multi-tenant query service.

:class:`Server` serves named/RXL queries from many concurrent clients
over one shared :class:`~repro.session.Session` — shared result caches,
request coalescing, per-tenant admission quotas, and live incremental
maintenance under mutations — either in-process (tests, embedding) or
over a JSON-line socket front end (:class:`ServeClient`,
``python -m repro serve``).  See :mod:`repro.serve.server` for the
architecture notes.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import ServeError
from repro.serve.server import Server
from repro.serve.tenants import Tenant, TenantRegistry

__all__ = [
    "Server",
    "ServeClient",
    "ServeError",
    "Tenant",
    "TenantRegistry",
]
