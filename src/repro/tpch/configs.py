"""Experimental configurations A and B (the paper's Table 1).

Configuration A: 1 MB TPC-H database on a slow server (AMD K6-2 350 MHz) —
used for the exhaustive 512-plan sweeps of Figs. 13/14.  Configuration B:
100 MB database on a faster server (Intel Celeron 566 MHz) — used for the
greedy-algorithm evaluation of Fig. 15.  Here the data scale is reduced
(documented substitution in DESIGN.md) but the A:B ratio and the
slow-vs-fast server cost models are preserved.
"""

from dataclasses import dataclass, field

from repro.relational.connection import Connection, SourceDescription, TransferModel
from repro.relational.engine import CONFIG_A_COST_MODEL, CONFIG_B_COST_MODEL, CostModel
from repro.relational.estimator import CostEstimator
from repro.tpch.generator import TpchGenerator, TpchScale


@dataclass(frozen=True)
class Configuration:
    """One experimental setup: data scale + server cost model + timeout."""

    name: str
    scale: TpchScale
    cost_model: CostModel
    transfer_model: TransferModel = field(default_factory=TransferModel)
    source: SourceDescription = field(default_factory=SourceDescription)
    seed: int = 20010521
    #: The paper's per-subquery budget ("If a subquery did not complete
    #: within 5 minutes, no time was reported"), in simulated ms.
    subquery_budget_ms: float = 300_000.0


CONFIG_A = Configuration(
    name="A",
    scale=TpchScale(),
    cost_model=CONFIG_A_COST_MODEL,
)

CONFIG_B = Configuration(
    name="B",
    scale=TpchScale().scaled(25.0),
    cost_model=CONFIG_B_COST_MODEL,
)


def build_database(config):
    """Generate the TPC-H database for a configuration."""
    return TpchGenerator(scale=config.scale, seed=config.seed).generate()


def build_configuration(config, database=None):
    """Return ``(database, connection, estimator)`` ready for experiments."""
    database = database or build_database(config)
    connection = Connection(database, config.cost_model, config.transfer_model)
    estimator = CostEstimator(database, config.cost_model)
    return database, connection, estimator
