"""Deterministic TPC-H-style data generator (a small ``dbgen``).

Seeded, so every run of a benchmark sees identical data.  The generator
honours the paper's Fig. 1 keys (``PartSupp`` keyed by ``partkey``:
each part is stocked by exactly one supplier; ``LineItem`` keyed by
``orderkey``: each order has one line) and preserves the structural
properties the paper's experiments depend on:

* a fraction of suppliers stock no parts (the outer join in Sec. 2's example
  exists *because* "there could be suppliers without parts, and they need to
  appear in the XML document"),
* a fraction of stocked parts have no pending line items,
* every nation belongs to a region, every supplier/customer to a nation,
  every order to a customer, every line item to an order and to a stocked
  part — so all C2 inclusion dependencies used by the labeler really hold.
"""

import datetime
import random
from dataclasses import dataclass

from repro.relational.database import Database
from repro.tpch.schema import tpch_schema

_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
_PART_FINISHES = [
    "anodized", "burnished", "plated", "polished", "brushed", "lacquered",
]
_PART_MATERIALS = [
    "brass", "copper", "nickel", "steel", "tin", "zinc", "bronze", "chrome",
]
_MFGRS = ["Mfgr#1", "Mfgr#2", "Mfgr#3", "Mfgr#4", "Mfgr#5"]
_BRANDS = ["Brand#1", "Brand#2", "Brand#3", "Brand#4", "Brand#5"]
_SIZES = ["S", "M", "L", "XL"]
_STATUSES = ["O", "F", "P"]


@dataclass(frozen=True)
class TpchScale:
    """Table cardinalities for one generated database.

    ``scaled`` multiplies everything except the fixed Region/Nation tables,
    which TPC-H keeps constant across scale factors.  ``PartSupp`` always
    has one row per part and ``LineItem`` one row per order (Fig. 1 keys).
    """

    suppliers: int = 20
    parts: int = 80
    customers: int = 50
    orders: int = 400
    regions: int = 5
    nations: int = 25
    supplier_no_part_fraction: float = 0.15
    part_no_order_fraction: float = 0.30

    def scaled(self, factor):
        return TpchScale(
            suppliers=max(2, round(self.suppliers * factor)),
            parts=max(2, round(self.parts * factor)),
            customers=max(2, round(self.customers * factor)),
            orders=max(2, round(self.orders * factor)),
            regions=self.regions,
            nations=self.nations,
            supplier_no_part_fraction=self.supplier_no_part_fraction,
            part_no_order_fraction=self.part_no_order_fraction,
        )


class TpchGenerator:
    """Generates a populated, FK-consistent TPC-H fragment database."""

    def __init__(self, scale=None, seed=20010521):
        self.scale = scale or TpchScale()
        self.seed = seed

    def generate(self, check=True):
        """Build and populate a :class:`Database`; optionally verify FKs."""
        rng = random.Random(self.seed)
        scale = self.scale
        db = Database(tpch_schema())

        regions = min(scale.regions, len(_REGION_NAMES))
        for regionkey in range(1, regions + 1):
            db.insert("Region", regionkey, _REGION_NAMES[regionkey - 1])

        nations = min(scale.nations, len(_NATION_NAMES))
        for nationkey in range(1, nations + 1):
            db.insert(
                "Nation",
                nationkey,
                _NATION_NAMES[nationkey - 1],
                rng.randint(1, regions),
            )

        for suppkey in range(1, scale.suppliers + 1):
            db.insert(
                "Supplier",
                suppkey,
                f"Supplier#{suppkey:06d}",
                f"{rng.randint(1, 999)} {rng.choice(_PART_MATERIALS)} street",
                rng.randint(1, nations),
            )

        for partkey in range(1, scale.parts + 1):
            db.insert(
                "Part",
                partkey,
                f"{rng.choice(_PART_FINISHES)} {rng.choice(_PART_MATERIALS)} "
                f"#{partkey:04d}",
                rng.choice(_MFGRS),
                rng.choice(_BRANDS),
                rng.choice(_SIZES),
                round(rng.uniform(900.0, 2100.0), 2),
            )

        supplier_of_part = self._assign_suppliers(rng)
        for partkey, suppkey in supplier_of_part.items():
            db.insert("PartSupp", partkey, suppkey, rng.randint(1, 9999))

        for custkey in range(1, scale.customers + 1):
            db.insert(
                "Customer",
                custkey,
                f"Customer#{custkey:06d}",
                f"{rng.randint(1, 999)} {rng.choice(_PART_FINISHES)} avenue",
                rng.randint(1, nations),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            )

        orderable = self._orderable_parts(rng, supplier_of_part)
        base_date = datetime.date(1998, 1, 1)
        for orderkey in range(1, scale.orders + 1):
            db.insert(
                "Orders",
                orderkey,
                rng.randint(1, scale.customers),
                rng.choice(_STATUSES),
                round(rng.uniform(1000.0, 400000.0), 2),
                base_date + datetime.timedelta(days=rng.randint(0, 700)),
            )
            partkey = rng.choice(orderable)
            db.insert(
                "LineItem",
                orderkey,
                partkey,
                supplier_of_part[partkey],
                1,
                rng.randint(1, 50),
                round(rng.uniform(900.0, 2100.0), 2),
            )

        if check:
            db.check_foreign_keys()
        db.analyze()
        return db

    def _assign_suppliers(self, rng):
        """One supplier per part, holding out a fraction of suppliers that
        stock nothing (they must still appear in the XML view)."""
        scale = self.scale
        n_without = round(scale.suppliers * scale.supplier_no_part_fraction)
        stockless = set(rng.sample(range(1, scale.suppliers + 1), n_without))
        stocking = [s for s in range(1, scale.suppliers + 1) if s not in stockless]
        if not stocking:
            stocking = [1]
        return {
            partkey: rng.choice(stocking)
            for partkey in range(1, scale.parts + 1)
        }

    def _orderable_parts(self, rng, supplier_of_part):
        """Parts eligible to appear in orders; the rest yield <part>
        elements without <order> children."""
        scale = self.scale
        parts = sorted(supplier_of_part)
        n_held_out = round(len(parts) * scale.part_no_order_fraction)
        held_out = set(rng.sample(parts, n_held_out))
        orderable = [p for p in parts if p not in held_out]
        return orderable or parts
