"""The TPC-H schema fragment of the paper's Fig. 1.

::

    Supplier(*suppkey, name, addr, nationkey)
    PartSupp(*partkey, suppkey, availqty)
    Part(*partkey, name, mfgr, brand, size, retail)
    Customer(*custkey, name, addr, nationkey, ph)
    LineItem(*orderkey, partkey, suppkey, lno, qty, prc)
    Orders(*orderkey, custkey, status, price, date)
    Nation(*nationkey, name, regionkey)
    Region(*regionkey, name)

The keys follow the paper's Fig. 1 *literally* — ``PartSupp`` is keyed by
``partkey`` alone (each part has one supplier) and ``LineItem`` by
``orderkey`` alone (each order has one line) — not real TPC-H's composite
keys.  The paper's Skolem-term argument sets (``S1.4(suppkey, partkey)``,
``S1.4.2(suppkey, partkey, orderkey)``) depend on exactly these key
declarations.

``name`` columns of Region/Nation/Supplier/Part/Customer are declared as
additional candidate keys, matching the paper's Sec. 3.1 assumption that
"name functionally determines nationkey, and pname functionally determines
partkey".
"""

from repro.relational.schema import Column, TableSchema, ForeignKey, DatabaseSchema
from repro.relational.types import SqlType

TPCH_TABLE_NAMES = (
    "Region",
    "Nation",
    "Supplier",
    "Part",
    "PartSupp",
    "Customer",
    "Orders",
    "LineItem",
)


def tpch_schema():
    """Build a fresh :class:`DatabaseSchema` for the TPC-H fragment."""
    integer = SqlType.INTEGER
    varchar = SqlType.VARCHAR
    char = SqlType.CHAR
    decimal = SqlType.DECIMAL
    date = SqlType.DATE

    tables = [
        TableSchema(
            "Region",
            [Column("regionkey", integer), Column("name", varchar)],
            key=["regionkey"],
            unique_sets=[("name",)],
        ),
        TableSchema(
            "Nation",
            [
                Column("nationkey", integer),
                Column("name", varchar),
                Column("regionkey", integer),
            ],
            key=["nationkey"],
            unique_sets=[("name",)],
        ),
        TableSchema(
            "Supplier",
            [
                Column("suppkey", integer),
                Column("name", varchar),
                Column("addr", varchar),
                Column("nationkey", integer),
            ],
            key=["suppkey"],
            unique_sets=[("name",)],
        ),
        TableSchema(
            "Part",
            [
                Column("partkey", integer),
                Column("name", varchar),
                Column("mfgr", varchar),
                Column("brand", varchar),
                Column("size", char),
                Column("retail", decimal),
            ],
            key=["partkey"],
            unique_sets=[("name",)],
        ),
        TableSchema(
            "PartSupp",
            [
                Column("partkey", integer),
                Column("suppkey", integer),
                Column("availqty", integer),
            ],
            key=["partkey"],
        ),
        TableSchema(
            "Customer",
            [
                Column("custkey", integer),
                Column("name", varchar),
                Column("addr", varchar),
                Column("nationkey", integer),
                Column("ph", varchar),
            ],
            key=["custkey"],
            unique_sets=[("name",)],
        ),
        TableSchema(
            "Orders",
            [
                Column("orderkey", integer),
                Column("custkey", integer),
                Column("status", char),
                Column("price", decimal),
                Column("date", date),
            ],
            key=["orderkey"],
        ),
        TableSchema(
            "LineItem",
            [
                Column("orderkey", integer),
                Column("partkey", integer),
                Column("suppkey", integer),
                Column("lno", integer),
                Column("qty", integer),
                Column("prc", decimal),
            ],
            key=["orderkey"],
        ),
    ]

    foreign_keys = [
        ForeignKey("Nation", ("regionkey",), "Region", ("regionkey",)),
        ForeignKey("Supplier", ("nationkey",), "Nation", ("nationkey",)),
        ForeignKey("Customer", ("nationkey",), "Nation", ("nationkey",)),
        ForeignKey("PartSupp", ("partkey",), "Part", ("partkey",)),
        ForeignKey("PartSupp", ("suppkey",), "Supplier", ("suppkey",)),
        ForeignKey("Orders", ("custkey",), "Customer", ("custkey",)),
        ForeignKey("LineItem", ("orderkey",), "Orders", ("orderkey",)),
        ForeignKey("LineItem", ("partkey",), "Part", ("partkey",)),
        ForeignKey("LineItem", ("suppkey",), "Supplier", ("suppkey",)),
        ForeignKey("LineItem", ("partkey",), "PartSupp", ("partkey",)),
    ]

    return DatabaseSchema(tables, foreign_keys)
