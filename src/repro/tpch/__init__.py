"""TPC-H substrate: the Fig. 1 schema fragment and a deterministic data
generator standing in for ``dbgen``.

The paper ran on TPC Benchmark H databases of 1 MB (Configuration A) and
100 MB (Configuration B).  Absolute volume is irrelevant to the simulated
cost model, so the presets here keep the paper's *relative* cardinalities
(orders per customer, parts per supplier, line items per order) at a scale
that executes quickly, and pair each preset with the matching server cost
model.
"""

from repro.tpch.schema import tpch_schema, TPCH_TABLE_NAMES
from repro.tpch.generator import TpchGenerator, TpchScale
from repro.tpch.configs import (
    Configuration,
    CONFIG_A,
    CONFIG_B,
    build_database,
    build_configuration,
)

__all__ = [
    "tpch_schema",
    "TPCH_TABLE_NAMES",
    "TpchGenerator",
    "TpchScale",
    "Configuration",
    "CONFIG_A",
    "CONFIG_B",
    "build_database",
    "build_configuration",
]
