"""The experiment registry: DESIGN.md's per-experiment index as code.

Each entry maps a paper artifact (table or figure) to the workload, the
modules that implement the pieces, the benchmark that regenerates it, and
the paper's headline numbers — so ``python -m repro experiments`` (and the
tests) can enumerate exactly what the reproduction covers.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible table or figure."""

    id: str
    artifact: str
    workload: str
    modules: tuple
    bench: str
    paper_result: str


EXPERIMENTS = (
    Experiment(
        id="E1",
        artifact="Sec. 2 timing table",
        workload="Query 1, Configuration B; fully partitioned vs best "
                 "greedy plan vs sorted outer-union",
        modules=("core.partition", "core.greedy", "core.sqlgen",
                 "relational.engine"),
        bench="benchmarks/test_sec2_table.py",
        paper_result="10 queries: 1837s/584s; 5: 592s/244s; 1: 2729s/1234s "
                     "(total/query) — the middle plan wins",
    ),
    Experiment(
        id="E2",
        artifact="Fig. 13(a)",
        workload="Query 1, Configuration A, all 512 plans, query-only "
                 "time, non-reduced",
        modules=("bench.sweep",),
        bench="benchmarks/test_fig13_query1.py::test_fig13a_query_time_nonreduced",
        paper_result="outer-union unified 1.16x optimal; fully partitioned "
                     "1.24x; 101 plans timed out",
    ),
    Experiment(
        id="E3",
        artifact="Fig. 13(b)",
        workload="Query 1, Configuration A, 512 plans, query-only time, "
                 "with view-tree reduction",
        modules=("core.reduction",),
        bench="benchmarks/test_fig13_query1.py::test_fig13b_query_time_reduced",
        paper_result="ten fastest reduced plans 2.5x faster; optimal "
                     "2.6-4.3x faster than the baselines",
    ),
    Experiment(
        id="E4",
        artifact="Fig. 13(c)",
        workload="Query 1, Configuration A, total time, reduced",
        modules=("relational.connection",),
        bench="benchmarks/test_fig13_query1.py::test_fig13c_total_time_reduced",
        paper_result="outer-union unified 4x optimal total; fully "
                     "partitioned 3x",
    ),
    Experiment(
        id="E5",
        artifact="Fig. 14(a,b,c)",
        workload="Query 2 (parallel * edges), Configuration A, 512 plans",
        modules=("bench.sweep",),
        bench="benchmarks/test_fig14_query2.py",
        paper_result="no timeouts; outer-union 1.21x (query, non-reduced) "
                     "and 4.8x (total, reduced); fully partitioned 1.41x / 3.7x",
    ),
    Experiment(
        id="E6",
        artifact="Fig. 15(a,b)",
        workload="Configuration B, greedy plan family vs unified "
                 "outer-union vs fully partitioned, reduced",
        modules=("core.greedy",),
        bench="benchmarks/test_fig15_config_b.py",
        paper_result="outer-union 5x/4.7x slower (query), 4.6x (total); "
                     "fully partitioned 2.4x/2.6x and 3.1x",
    ),
    Experiment(
        id="E7",
        artifact="Fig. 18(a-d)",
        workload="Greedy-selected mandatory/optional edges, Queries 1-2, "
                 "Configurations A-B, reduced and non-reduced",
        modules=("core.greedy",),
        bench="benchmarks/test_fig18_greedy_plans.py",
        paper_result="families of 32/16/8 plans corresponding directly to "
                     "the fastest measured plans",
    ),
    Experiment(
        id="E8",
        artifact="Table 1",
        workload="Configuration A (1 MB, slow server) and B (100 MB, "
                 "fast server) presets",
        modules=("tpch.configs",),
        bench="benchmarks/test_table1_configs.py",
        paper_result="two configurations; 5-minute subquery budget",
    ),
    Experiment(
        id="E9",
        artifact="Sec. 5.1 estimate-request counts",
        workload="genPlan oracle requests with component memoization",
        modules=("relational.estimator", "core.greedy"),
        bench="benchmarks/test_estimate_requests.py",
        paper_result="22 requests non-reduced, 25 reduced — far below the "
                     "81 worst case",
    ),
    Experiment(
        id="E10",
        artifact="Headline claims (abstract / Sec. 2)",
        workload="Optimal plan shape, 2.5-5x factors, reduction speedup, "
                 "Query-1-only timeouts",
        modules=("*",),
        bench="benchmarks/test_headline_claims.py",
        paper_result="optimal uses several queries; 2.5-5x faster than "
                     "both endpoints; Query 1: 101 timeouts, Query 2: none",
    ),
)


def experiment(id):
    """Look up one experiment by id (e.g. ``"E3"``)."""
    for entry in EXPERIMENTS:
        if entry.id == id:
            return entry
    raise KeyError(f"no experiment {id!r}")


def format_registry():
    """The registry as a text table."""
    lines = []
    for entry in EXPERIMENTS:
        lines.append(f"{entry.id}: {entry.artifact}")
        lines.append(f"    workload: {entry.workload}")
        lines.append(f"    modules:  {', '.join(entry.modules)}")
        lines.append(f"    bench:    {entry.bench}")
        lines.append(f"    paper:    {entry.paper_result}")
    return "\n".join(lines)
