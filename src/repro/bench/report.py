"""Formatting sweep results as the paper's tables and figure series."""


def format_series(sweep, key="query_ms", title=""):
    """Render the Fig. 13/14 scatter data as a text table: one row per
    stream count with min / median / max times (ms, simulated)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'streams':>8} {'plans':>6} {'min':>12} {'median':>12} {'max':>12}")
    series = sweep.by_stream_count(key=key)
    for n_streams in sorted(series):
        values = series[n_streams]
        lines.append(
            f"{n_streams:>8} {len(values):>6} "
            f"{values[0]:>12.0f} {values[len(values) // 2]:>12.0f} "
            f"{values[-1]:>12.0f}"
        )
    n_timed_out = len(sweep.timed_out())
    if n_timed_out:
        lines.append(f"(+ {n_timed_out} plan(s) timed out)")
    return "\n".join(lines)


def format_sweep_table(rows, headers):
    """Simple aligned text table."""
    widths = [len(h) for h in headers]
    rendered = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def summarize_sweep(sweep, named_plans, key="query_ms"):
    """Compare named plans (e.g. unified / fully partitioned) against the
    sweep's optimum.  ``named_plans`` maps label -> Partition.

    Returns {label: (value, slowdown_vs_optimal)}.
    """
    best = sweep.fastest(1, key=key)[0]
    optimum = getattr(best, key)
    summary = {"optimal": (optimum, 1.0, best.n_streams)}
    for label, partition in named_plans.items():
        timing = sweep.timing_for(partition)
        if timing.timed_out:
            summary[label] = (None, None, timing.n_streams)
        else:
            value = getattr(timing, key)
            summary[label] = (value, value / optimum, timing.n_streams)
    return summary


def _fmt(cell):
    if cell is None:
        return "timeout"
    if isinstance(cell, float):
        return f"{cell:.0f}"
    return str(cell)
