"""Text rendering of the paper's figures.

Figs. 13-15 are scatter plots of plan execution time (log scale) against
the number of tuple streams per plan.  :func:`scatter_plot` draws the same
picture in ASCII so sweeps can be eyeballed in a terminal or archived in
the benchmark results.
"""

import math


def scatter_plot(sweep, key="query_ms", title="", height=16, width=64,
                 marks=()):
    """Render a sweep as an ASCII scatter: x = streams, y = log time.

    ``marks`` is an iterable of (label, partition) whose plans are singled
    out with letters in the plot and a legend below.
    """
    completed = sweep.completed()
    if not completed:
        return (title + "\n" if title else "") + "(no completed plans)"

    values = [getattr(t, key) for t in completed]
    lo, hi = min(values), max(values)
    lo_log, hi_log = math.log10(max(lo, 1e-9)), math.log10(max(hi, 1e-9))
    if hi_log - lo_log < 1e-9:
        hi_log = lo_log + 1.0
    max_streams = max(t.n_streams for t in completed)

    def cell(streams, value):
        x = round((streams - 1) / max(max_streams - 1, 1) * (width - 1))
        y = round(
            (math.log10(max(value, 1e-9)) - lo_log)
            / (hi_log - lo_log)
            * (height - 1)
        )
        return x, height - 1 - y

    grid = [[" "] * width for _ in range(height)]
    for timing in completed:
        x, y = cell(timing.n_streams, getattr(timing, key))
        if grid[y][x] == " ":
            grid[y][x] = "."
        elif grid[y][x] == ".":
            grid[y][x] = ":"
        elif grid[y][x] == ":":
            grid[y][x] = "*"

    legend = []
    letters = "ABCDEFGH"
    for letter, (label, partition) in zip(letters, marks):
        try:
            timing = sweep.timing_for(partition)
        except KeyError:
            continue
        if timing.timed_out:
            legend.append(f"  {letter} = {label}: timed out")
            continue
        x, y = cell(timing.n_streams, getattr(timing, key))
        grid[y][x] = letter
        legend.append(
            f"  {letter} = {label}: {getattr(timing, key):.0f}ms "
            f"@ {timing.n_streams} streams"
        )

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.0f}ms"
    bottom_label = f"{lo:.0f}ms"
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (
            bottom_label if i == height - 1 else ""
        )
        lines.append(f"{prefix:>10} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{'':>10} +{axis}")
    lines.append(f"{'':>10}  1{'streams':^{width - 4}}{max_streams}")
    if sweep.timed_out():
        lines.append(f"  ({len(sweep.timed_out())} plan(s) timed out, not shown)")
    lines.extend(legend)
    return "\n".join(lines)
