"""Exhaustive plan sweeps (the experiments behind Figs. 13 and 14).

For every partition of a view tree's edge set, execute the generated
queries against the simulated RDBMS and record query-only time (server
execution) and total time (plus transfer).  Plans whose subqueries exceed
the per-subquery budget are recorded as timed out ("no time was reported").
"""

from dataclasses import dataclass

from repro.common.errors import TimeoutExceeded
from repro.core.partition import enumerate_partitions, partition_subtrees
from repro.core.sqlgen import PlanStyle, SqlGenerator


@dataclass(frozen=True)
class PlanTiming:
    """One plan's outcome in a sweep."""

    partition: object
    n_streams: int
    query_ms: float = None
    transfer_ms: float = None
    timed_out: bool = False

    @property
    def total_ms(self):
        if self.timed_out:
            return None
        return self.query_ms + self.transfer_ms


@dataclass
class SweepResult:
    """All plan timings for one (query, configuration, style) sweep."""

    timings: list
    style: PlanStyle
    reduced: bool

    def completed(self):
        return [t for t in self.timings if not t.timed_out]

    def timed_out(self):
        return [t for t in self.timings if t.timed_out]

    def fastest(self, n=1, key="query_ms"):
        ranked = sorted(self.completed(), key=lambda t: getattr(t, key))
        return ranked[:n]

    def timing_for(self, partition):
        for timing in self.timings:
            if timing.partition == partition:
                return timing
        raise KeyError(f"no timing recorded for {partition}")

    def by_stream_count(self, key="query_ms"):
        """{n_streams: [values]} — the scatter series of Figs. 13/14."""
        series = {}
        for timing in self.completed():
            series.setdefault(timing.n_streams, []).append(getattr(timing, key))
        for values in series.values():
            values.sort()
        return series


def run_single_partition(tree, schema, connection, partition,
                         style=PlanStyle.OUTER_JOIN, reduce=False,
                         budget_ms=None):
    """Execute one plan; returns a :class:`PlanTiming`."""
    generator = SqlGenerator(tree, schema, style=style, reduce=reduce)
    specs = generator.streams_for_partition(partition)
    query_ms = 0.0
    transfer_ms = 0.0
    try:
        for spec in specs:
            stream = connection.execute(
                spec.plan,
                compact_rows=spec.compact,
                budget_ms=budget_ms,
                label=spec.label,
            )
            query_ms += stream.server_ms
            transfer_ms += stream.transfer_ms
    except TimeoutExceeded:
        return PlanTiming(
            partition=partition, n_streams=len(specs), timed_out=True
        )
    return PlanTiming(
        partition=partition,
        n_streams=len(specs),
        query_ms=query_ms,
        transfer_ms=transfer_ms,
    )


def sweep_partitions(tree, schema, connection, style=PlanStyle.OUTER_JOIN,
                     reduce=False, budget_ms=None, partitions=None,
                     progress=None):
    """Execute every plan (or the given ``partitions``); returns a
    :class:`SweepResult`."""
    if partitions is None:
        partitions = list(enumerate_partitions(tree))
    timings = []
    for i, partition in enumerate(partitions):
        timings.append(
            run_single_partition(
                tree, schema, connection, partition,
                style=style, reduce=reduce, budget_ms=budget_ms,
            )
        )
        if progress is not None:
            progress(i + 1, len(partitions))
    return SweepResult(timings=timings, style=style, reduced=reduce)
