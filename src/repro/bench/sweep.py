"""Exhaustive plan sweeps (the experiments behind Figs. 13 and 14).

For every partition of a view tree's edge set, execute the generated
queries against the simulated RDBMS and record query-only time (server
execution) and total time (plus transfer).  Plans whose subqueries exceed
the per-subquery budget are recorded as timed out ("no time was reported").

The 2^|E| plans share almost all of their relational work: the same
subtree query recurs across most partitions.  By default a sweep installs
a :class:`~repro.relational.cache.PlanResultCache` on the connection's
engine for its duration, so each distinct stream plan is executed once and
replayed everywhere else — wall-clock drops by an order of magnitude while
every simulated millisecond (including timeout behaviour) stays
bit-identical.  ``workers=N`` additionally fans partitions out over a
thread pool with deterministic result ordering.
"""

import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.options import UNSET, resolve_options
from repro.core.partition import enumerate_partitions
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.obs import obs_parts
from repro.relational.cache import PlanResultCache, resolve_cache
from repro.relational.dispatch import execute_specs
from repro.relational.replicas import resolve_admission, resolve_pool


@dataclass(frozen=True)
class PlanTiming:
    """One plan's outcome in a sweep.

    ``failed`` marks a plan whose stream exhausted its retries under fault
    injection (sweeps record the failure instead of degrading the plan —
    degradation is :meth:`repro.core.silkroute.XmlView.execute_partition`'s
    job); ``shed`` marks a plan the admission controller refused or cut
    short (:class:`~repro.common.errors.OverloadError`).
    ``attempts``/``retries``/``faults_injected``/``backoff_ms`` and the
    replica counters (``failovers``/``hedges``/``hedge_wins``) total the
    resilience accounting over the plan's streams.
    """

    partition: object
    n_streams: int
    query_ms: float = None
    transfer_ms: float = None
    timed_out: bool = False
    failed: bool = False
    shed: bool = False
    attempts: int = 0
    retries: int = 0
    faults_injected: int = 0
    backoff_ms: float = 0.0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0

    @property
    def total_ms(self):
        if self.timed_out or self.failed or self.shed:
            return None
        return self.query_ms + self.transfer_ms


@dataclass
class SweepResult:
    """All plan timings for one (query, configuration, style) sweep."""

    timings: list
    style: PlanStyle
    reduced: bool
    #: :class:`~repro.relational.cache.CacheStats` snapshot taken at the
    #: end of the sweep, or None when the sweep ran uncached.
    cache_stats: object = None

    def __post_init__(self):
        self._by_partition = {t.partition: t for t in self.timings}

    def completed(self):
        return [
            t for t in self.timings
            if not t.timed_out and not t.failed and not t.shed
        ]

    def timed_out(self):
        return [t for t in self.timings if t.timed_out]

    def failed(self):
        return [t for t in self.timings if t.failed]

    def shed(self):
        return [t for t in self.timings if t.shed]

    def fastest(self, n=1, key="query_ms"):
        ranked = sorted(self.completed(), key=lambda t: getattr(t, key))
        return ranked[:n]

    def timing_for(self, partition):
        try:
            return self._by_partition[partition]
        except KeyError:
            raise KeyError(f"no timing recorded for {partition}") from None

    def by_stream_count(self, key="query_ms"):
        """{n_streams: [values]} — the scatter series of Figs. 13/14."""
        series = {}
        for timing in self.completed():
            series.setdefault(timing.n_streams, []).append(getattr(timing, key))
        for values in series.values():
            values.sort()
        return series


def run_single_partition(tree, schema, connection, partition,
                         style=PlanStyle.OUTER_JOIN, reduce=False,
                         budget_ms=None, generator=None, stream_workers=None,
                         retry=None, faults=None, obs=None, span_parent=None,
                         pool=None, hedge_ms=None, admission=None,
                         epoch=None, engine=None, batch_size=None,
                         expect_generations=None):
    """Execute one plan; returns a :class:`PlanTiming`.

    Pass a prebuilt ``generator`` (one per sweep) to reuse its memoized
    per-subtree stream specs across partitions.  ``stream_workers``
    dispatches the plan's subqueries concurrently
    (:func:`repro.relational.dispatch.execute_specs`); the recorded
    simulated timings and timeout behaviour are identical either way.
    ``retry``/``faults`` run the plan under the resilience regime: a
    stream that exhausts its retries marks the timing ``failed`` (sweeps
    record, they do not degrade).  ``pool``/``hedge_ms``/``epoch`` route
    the streams over a :class:`~repro.relational.replicas.ReplicaPool`
    (a sweep pins one ``epoch`` for all partitions so routing stays
    deterministic under partition-level concurrency); ``admission``
    sheds overloaded plans, marking the timing ``shed``.  ``obs`` (an
    :class:`~repro.obs.ObsOptions` session) wraps the run in a
    ``partition`` span and records per-stream metrics.
    """
    if generator is None:
        generator = SqlGenerator(tree, schema, style=style, reduce=reduce,
                                 tracer=obs_parts(obs)[0])
    tracer, _ = obs_parts(obs)
    with tracer.span("partition", parent=span_parent) as partition_span:
        timing = _run_single(
            tree, schema, connection, partition, generator, budget_ms,
            stream_workers, retry, faults, obs, pool, hedge_ms, admission,
            epoch, engine, batch_size, expect_generations,
        )
        partition_span.set(n_streams=timing.n_streams)
        if timing.timed_out:
            partition_span.set(timed_out=True)
        elif timing.failed:
            partition_span.set(failed=True)
        elif timing.shed:
            partition_span.set(shed=True)
        else:
            partition_span.set_sim(timing.total_ms)
        return timing


def _run_single(tree, schema, connection, partition, generator, budget_ms,
                stream_workers, retry, faults, obs, pool=None, hedge_ms=None,
                admission=None, epoch=None, engine=None, batch_size=None,
                expect_generations=None):
    specs = generator.streams_for_partition(partition)
    result = execute_specs(
        connection, specs, budget_ms=budget_ms, workers=stream_workers,
        retry=retry, faults=faults, obs=obs, pool=pool, hedge_ms=hedge_ms,
        admission=admission, epoch=epoch, engine=engine,
        batch_size=batch_size, expect_generations=expect_generations,
    )
    all_stats = list(result.stats)
    failure_stats = getattr(result.failure, "stats", None)
    if failure_stats is not None:
        all_stats.append(failure_stats)
    resilience = dict(
        attempts=sum(s.attempts for s in all_stats),
        retries=sum(s.retries for s in all_stats),
        faults_injected=sum(s.faults for s in all_stats),
        backoff_ms=sum(s.backoff_ms for s in all_stats),
        failovers=sum(s.failovers for s in all_stats),
        hedges=sum(s.hedges for s in all_stats),
        hedge_wins=sum(s.hedge_wins for s in all_stats),
    )
    if (result.timeout is not None or result.failure is not None
            or result.overload is not None):
        return PlanTiming(
            partition=partition, n_streams=len(specs),
            timed_out=result.timeout is not None,
            failed=result.failure is not None,
            shed=result.overload is not None,
            **resilience,
        )
    query_ms = 0.0
    transfer_ms = 0.0
    for stream in result.streams:
        query_ms += stream.server_ms
        transfer_ms += stream.transfer_ms
    return PlanTiming(
        partition=partition,
        n_streams=len(specs),
        query_ms=query_ms,
        transfer_ms=transfer_ms,
        **resilience,
    )


def sweep_partitions(tree, schema, connection, **kwargs):
    """Deprecated module-level entry point — use
    :meth:`repro.Session.sweep`, which wraps the same engine and returns
    the unified :class:`~repro.session.QueryResult`.  This wrapper
    delegates unchanged (same arguments, same :class:`SweepResult`) and
    emits a :class:`DeprecationWarning`."""
    warnings.warn(
        "sweep_partitions() is deprecated; use repro.Session.sweep()",
        DeprecationWarning, stacklevel=2,
    )
    return _sweep_partitions(tree, schema, connection, **kwargs)


def _sweep_partitions(tree, schema, connection, style=UNSET,
                      reduce=UNSET, budget_ms=UNSET, partitions=None,
                      progress=None, cache=True, workers=UNSET,
                      stream_workers=None, retry=UNSET, faults=UNSET,
                      replicas=UNSET, hedge_ms=UNSET, max_concurrent=UNSET,
                      engine=UNSET, batch_size=UNSET, options=None):
    """Execute every plan (or the given ``partitions``); returns a
    :class:`SweepResult`.

    Execution knobs (``style``, ``reduce``, ``budget_ms``, ``workers``,
    ``retry``, ``faults``) may be bundled in an
    :class:`~repro.core.options.ExecutionOptions` passed as ``options=``;
    explicit keywords win.  In a sweep, ``workers`` fans *partitions* out
    over a thread pool of that size (``stream_workers`` is the per-plan
    subquery fan-out).  The per-method default ``reduce=False`` applies
    when neither a keyword nor an options object supplies a value.

    ``cache`` controls cross-plan result caching for the duration of the
    sweep, through the same :func:`~repro.relational.cache.resolve_cache`
    flow as ``Connection(cache=...)`` and ``SilkRoute(cache=...)``:
    ``True`` (the default) reuses the cache already installed on the
    connection's engine or installs a fresh
    :class:`~repro.relational.cache.PlanResultCache`; ``False`` runs
    uncached; or pass a :class:`PlanResultCache` instance to share one
    across sweeps.  Cached and uncached sweeps produce bit-identical
    simulated timings — only wall-clock changes.

    ``workers`` fans partitions out over a thread pool of that size.
    Result ordering is deterministic (timings follow the input partition
    order) and per-subquery timeouts are handled inside each worker, so a
    timed-out plan is recorded exactly as in the serial path — and the
    order-independent fault draws make this hold under ``faults`` too.
    ``stream_workers`` additionally dispatches each plan's subqueries
    concurrently (usually redundant when ``workers`` already saturates the
    pool).

    ``replicas``/``hedge_ms`` route every plan's streams over one
    :class:`~repro.relational.replicas.ReplicaPool` whose routing epoch
    spans the whole sweep (health folds once, at the end — partition
    order and partition-level concurrency cannot change the routing).
    ``max_concurrent`` applies admission control per plan: an overloaded
    plan is recorded ``shed``, not raised.

    A sweep's timings are only comparable if every plan saw the same
    data, so the per-table generation vector is pinned at the start and
    every dispatch checks it: a concurrent
    ``insert``/``update``/``delete`` raises
    :class:`~repro.common.errors.StaleGenerationError` instead of
    silently recording mixed-generation timings.  Mutate between sweeps,
    not during one — the dependency-scoped caches then re-materialize
    only the affected plans.
    """
    opts = resolve_options(
        options, defaults={"reduce": False}, style=style, reduce=reduce,
        budget_ms=budget_ms, workers=workers, retry=retry, faults=faults,
        replicas=replicas, hedge_ms=hedge_ms, max_concurrent=max_concurrent,
        engine=engine, batch_size=batch_size,
    )
    style, reduce = opts.style, opts.reduce
    budget_ms, workers = opts.budget_ms, opts.workers
    tracer, metrics = obs_parts(opts.obs)
    if partitions is None:
        partitions = list(enumerate_partitions(tree))
    generator = SqlGenerator(
        tree, schema, style=style, reduce=reduce, keep=opts.keep,
        tracer=tracer,
    )
    query_engine = connection.engine
    if opts.node_cache_entries is not None or opts.retention_bytes is not None:
        query_engine.configure_node_cache(
            max_entries=opts.node_cache_entries,
            retention_bytes=opts.retention_bytes,
        )
    pinned_generations = connection.database.table_generations()
    previous = query_engine.cache
    if cache is True:
        # The sweep's historical True semantics: reuse the cache already
        # installed on the engine, else install a fresh one for the sweep.
        query_engine.cache = (
            previous if previous is not None else PlanResultCache()
        )
    else:
        query_engine.cache = resolve_cache(cache)
    # Resolved after the cache swap so a freshly built replica set shares
    # the cache the sweep actually runs under.
    replica_pool = resolve_pool(opts.replicas, connection)
    admission = resolve_admission(opts.max_concurrent)
    if admission is not None:
        stream_workers = admission.clamp_workers(stream_workers)
    epoch = replica_pool.begin_epoch() if replica_pool is not None else None
    try:
        with tracer.span(
            "sweep", style=style.value, plans=len(partitions),
        ) as sweep_span:
            # Captured in the submitting thread so worker-thread partition
            # spans still hang under the sweep span.
            parent = tracer.current()

            def run(partition):
                return run_single_partition(
                    tree, schema, connection, partition,
                    style=style, reduce=reduce, budget_ms=budget_ms,
                    generator=generator, stream_workers=stream_workers,
                    retry=opts.retry, faults=opts.faults, obs=opts.obs,
                    span_parent=parent, pool=replica_pool,
                    hedge_ms=opts.hedge_ms, admission=admission, epoch=epoch,
                    engine=opts.engine, batch_size=opts.batch_size,
                    expect_generations=pinned_generations,
                )

            timings = []
            if workers is not None and workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    for i, timing in enumerate(pool.map(run, partitions)):
                        timings.append(timing)
                        if progress is not None:
                            progress(i + 1, len(partitions))
            else:
                for i, partition in enumerate(partitions):
                    timings.append(run(partition))
                    if progress is not None:
                        progress(i + 1, len(partitions))
            completed = sum(
                1 for t in timings
                if not t.timed_out and not t.failed and not t.shed
            )
            sweep_span.set(completed=completed)
        metrics.inc("sweep.plans", len(partitions))
        stats = (
            query_engine.cache.stats()
            if query_engine.cache is not None else None
        )
        if query_engine.cache is not None and metrics.enabled:
            query_engine.cache.publish(metrics)
        if metrics.enabled:
            query_engine.node_cache.publish(metrics)
    finally:
        if replica_pool is not None:
            replica_pool.finish_epoch(epoch)
        query_engine.cache = previous
    return SweepResult(
        timings=timings, style=style, reduced=reduce, cache_stats=stats
    )
