"""Experiment harness: the paper's workloads and sweep/figure machinery."""

from repro.bench.queries import QUERY_1, QUERY_2, SUPPLIER_DTD, load_view
from repro.bench.sweep import (
    PlanTiming,
    SweepResult,
    sweep_partitions,
    run_single_partition,
)
from repro.bench.report import (
    format_sweep_table,
    format_series,
    summarize_sweep,
)
from repro.bench.figures import scatter_plot
from repro.bench.experiments import EXPERIMENTS, Experiment, experiment, format_registry

__all__ = [
    "QUERY_1",
    "QUERY_2",
    "SUPPLIER_DTD",
    "load_view",
    "PlanTiming",
    "SweepResult",
    "sweep_partitions",
    "run_single_partition",
    "format_sweep_table",
    "format_series",
    "summarize_sweep",
    "scatter_plot",
    "EXPERIMENTS",
    "Experiment",
    "experiment",
    "format_registry",
]
