"""The paper's two workload queries and the exchange DTD.

**Query 1** (Fig. 3 / view tree Fig. 6): the supplier view.  Each supplier
element contains its name, its nation, the geographic region of the nation,
and the list of the supplier's parts; each part its name and pending
orders; each order its order key, customer, and the customer's nation.  The
two one-to-many (``*``) edges — supplier→part and part→order — are *nested
in a chain*, so plans contain nested outer joins.

**Query 2** (view tree Fig. 12): identical except the block defining the
order node is a child of the *supplier* node instead of the part node, so
the two ``*`` edges are *parallel* and plans contain unions of outer joins.

Both view trees have 10 nodes and 9 edges: 2^9 = 512 possible plans.
"""

from repro.core.labeling import label_view_tree
from repro.core.viewtree import build_view_tree
from repro.rxl.parser import parse_rxl

QUERY_1 = """
from Supplier $s
construct
  <supplier>
    <name>$s.name</name>
    { from Nation $n
      where $s.nationkey = $n.nationkey
      construct <nation>$n.name</nation> }
    { from Nation $n2, Region $r
      where $s.nationkey = $n2.nationkey and $n2.regionkey = $r.regionkey
      construct <region>$r.name</region> }
    { from PartSupp $ps, Part $p
      where $s.suppkey = $ps.suppkey and $ps.partkey = $p.partkey
      construct
        <part>
          <pname>$p.name</pname>
          { from LineItem $l, Orders $o
            where $ps.partkey = $l.partkey and $ps.suppkey = $l.suppkey
                  and $l.orderkey = $o.orderkey
            construct
              <order>
                <okey>$o.orderkey</okey>
                { from Customer $c
                  where $o.custkey = $c.custkey
                  construct <customer>$c.name</customer> }
                { from Customer $c2, Nation $n3
                  where $o.custkey = $c2.custkey
                        and $c2.nationkey = $n3.nationkey
                  construct <cnation>$n3.name</cnation> }
              </order> }
        </part> }
  </supplier>
"""

QUERY_2 = """
from Supplier $s
construct
  <supplier>
    <name>$s.name</name>
    { from Nation $n
      where $s.nationkey = $n.nationkey
      construct <nation>$n.name</nation> }
    { from Nation $n2, Region $r
      where $s.nationkey = $n2.nationkey and $n2.regionkey = $r.regionkey
      construct <region>$r.name</region> }
    { from PartSupp $ps, Part $p
      where $s.suppkey = $ps.suppkey and $ps.partkey = $p.partkey
      construct
        <part>
          <pname>$p.name</pname>
        </part> }
    { from PartSupp $ps2, LineItem $l, Orders $o
      where $s.suppkey = $ps2.suppkey and $ps2.partkey = $l.partkey
            and $ps2.suppkey = $l.suppkey and $l.orderkey = $o.orderkey
      construct
        <order>
          <okey>$o.orderkey</okey>
          { from Customer $c
            where $o.custkey = $c.custkey
            construct <customer>$c.name</customer> }
          { from Customer $c2, Nation $n3
            where $o.custkey = $c2.custkey
                  and $c2.nationkey = $n3.nationkey
            construct <cnation>$n3.name</cnation> }
        </order> }
  </supplier>
"""

#: The exchange DTD of Fig. 2, as described in the paper's introduction:
#: "Each supplier element includes its name, its nation, the geographical
#: region of the nation, and a list of the supplier's parts.  Each part
#: element includes a part name and a list of orders pending for the part.
#: Each order element includes an orderkey, the associated customer, and
#: the customer's nation."
SUPPLIER_DTD = """
<!ELEMENT supplier (name, nation, region, part*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT nation (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT part (pname, order*)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT order (okey, customer, cnation)>
<!ELEMENT okey (#PCDATA)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT cnation (#PCDATA)>
"""

#: DTD for Query 2's output, where orders hang off the supplier.
SUPPLIER_DTD_QUERY_2 = """
<!ELEMENT supplier (name, nation, region, part*, order*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT nation (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT part (pname)>
<!ELEMENT pname (#PCDATA)>
<!ELEMENT order (okey, customer, cnation)>
<!ELEMENT okey (#PCDATA)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT cnation (#PCDATA)>
"""


def load_view(rxl_text, schema, simplify_args=False):
    """Parse, build, and label a view tree for a workload query."""
    query = parse_rxl(rxl_text)
    tree = build_view_tree(query, schema, simplify_args=simplify_args)
    label_view_tree(tree, schema)
    return tree
