"""The crash/chaos harness: SIGKILL a serving process, recover, compare.

This module is both a library (the parent-side helpers the recovery
bench and tests drive) and a program (``python -m repro.bench.crash``,
the child that kills itself).  The experiment:

1. The parent picks a deterministic mutation plan and a **crash spec** —
   a named WAL crash point (:data:`repro.relational.wal.CRASH_POINTS`:
   mid-append before/after the write or the fsync, mid-checkpoint around
   the rename and the truncation) or ``mid_response`` (the mutation
   commits durably, then the process dies before acknowledging) — and
   launches the child.
2. The child builds the tiny deterministic database, wraps it in a
   durable :class:`~repro.serve.Server` (``checkpoint_every`` small, so
   crashes land inside checkpoints too), applies the plan one mutation
   per request id, prints ``ACK <request_id> <mutated>`` after each
   commit — and SIGKILLs itself when the crash spec fires.  No cleanup
   handlers run; the kill is as honest as a power cut.
3. The parent :func:`~repro.relational.wal.recover`\\ s the directory and
   compares against a **never-crashed oracle**: a fresh database with the
   *committed prefix* of the plan applied (the WAL's dedup map says
   exactly which requests committed — ACKs alone cannot, since
   ``mid_response`` commits without acknowledging).  Comparison is the
   repo's strongest equivalence: byte-identical XML and bit-identical
   simulated timings for every workload query, on both engines (tuple
   and batch) and both backends (pure simulation and the cross-validated
   SQLite mirror), plus identical generation vectors.
4. Exactly-once: the parent restarts a server **on the recovered state**
   and retries *every* request id of the plan — committed ones must
   deduplicate (served from the log's recorded results), lost ones must
   apply — and the final state must equal the full-plan oracle.

Everything is deterministic given the seed, so a failure reproduces.
"""

import json
import os
import signal
import subprocess
import sys

from repro.tpch.generator import TpchGenerator, TpchScale

#: Small enough that a soak round is fast, big enough that q1/q2 exercise
#: joins, nesting, and every table the mutations touch.
CRASH_SCALE = TpchScale(suppliers=8, parts=16, customers=10, orders=40)

#: Tables the plan mutates: parents of the workload queries' joins, so
#: every delta moves bytes in the served documents.
MUTATION_TABLES = ("Nation", "Supplier", "Customer")

#: Crash specs the harness randomizes over: WAL durability boundaries
#: plus the commit-then-die response path.
CRASH_POINT_CHOICES = (
    "append.before_write",
    "append.before_fsync",
    "append.after_fsync",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "checkpoint.after_truncate",
    "mid_response",
)


def build_database(seed=42):
    """The deterministic database every run (child, oracle, replay)
    starts from."""
    return TpchGenerator(CRASH_SCALE, seed=seed).generate()


def mutation_plan(n_ops, seed=0):
    """A deterministic mutation plan: ``n_ops`` entries of
    ``(request_id, table, op, rows, op_seed)``.  Inserts and updates
    only — deletes would eventually empty the tiny tables mid-soak —
    spread over :data:`MUTATION_TABLES`."""
    plan = []
    for i in range(n_ops):
        table = MUTATION_TABLES[(seed + i) % len(MUTATION_TABLES)]
        op = ("insert", "update")[(seed + i * 7) % 2]
        rows = 1 + (seed + i * 3) % 3
        plan.append((f"m-{seed}-{i}", table, op, rows, seed * 1000 + i))
    return plan


def apply_plan(database, plan):
    """Apply ``plan`` directly (no server, no WAL) — the oracle path.
    Returns the per-request mutated counts."""
    from repro.session import apply_delta

    counts = []
    for _, table, op, rows, op_seed in plan:
        counts.append(apply_delta(database, table, op=op, rows=rows,
                                  seed=op_seed))
    return counts


def build_server(wal_dir, checkpoint_every=5, database=None):
    """A durable server over the deterministic database (or a recovered
    ``database``), exposing the workload queries."""
    from repro.bench.queries import QUERY_1, QUERY_2
    from repro.serve import Server

    if database is None:
        database = build_database()
    return Server(
        db=database, queries={"q1": QUERY_1, "q2": QUERY_2},
        wal=wal_dir, checkpoint_every=checkpoint_every,
    )


# -- equivalence -----------------------------------------------------------


def fingerprint(database, engines=("tuple", "batch"), backends=("simulated",),
                queries=("q1", "q2")):
    """The strongest cheap identity of a database's *served* behaviour:
    for every (query, engine, backend) combination the XML text and the
    simulated timings, plus the generation vector and row counts.

    The SQLite backend self-cross-validates every stream against the
    simulated oracle (:class:`~repro.common.errors.BackendMismatchError`
    on any divergence), so including ``"sqlite"`` in ``backends`` proves
    the real-backend mirror recovered too.
    """
    from repro.bench.queries import QUERY_1, QUERY_2
    from repro.core.options import ExecutionOptions
    from repro.session import Session

    rxl = {"q1": QUERY_1, "q2": QUERY_2}
    session = Session(database)
    out = {
        "generations": dict(sorted(database.table_generations().items())),
        "rows": {name: len(t) for name, t in sorted(database.tables.items())},
    }
    for query in queries:
        for engine in engines:
            for backend in backends:
                options = ExecutionOptions(
                    engine=engine,
                    backend=None if backend == "simulated" else backend,
                )
                result = session.materialize(rxl[query], root_tag="view",
                                             options=options)
                out[f"{query}/{engine}/{backend}"] = {
                    "xml_bytes": len(result.xml),
                    "xml": result.xml,
                    "query_ms": result.report.query_ms,
                    "transfer_ms": result.report.transfer_ms,
                }
    return out


def diff_fingerprints(recovered, oracle):
    """Human-readable differences between two :func:`fingerprint` maps
    (empty list == bit-identical serves)."""
    diffs = []
    for key in sorted(set(recovered) | set(oracle)):
        a, b = recovered.get(key), oracle.get(key)
        if a == b:
            continue
        if isinstance(a, dict) and isinstance(b, dict) and "xml" in (a or {}):
            for field in ("xml", "query_ms", "transfer_ms"):
                if a.get(field) != b.get(field):
                    diffs.append(
                        f"{key}.{field}: recovered "
                        f"{str(a.get(field))[:80]!r} != oracle "
                        f"{str(b.get(field))[:80]!r}"
                    )
        else:
            diffs.append(f"{key}: recovered {a!r} != oracle {b!r}")
    return diffs


# -- the child -------------------------------------------------------------


def _install_crash(spec):
    """Arm the crash: for a WAL point, SIGKILL self when the point has
    been crossed ``spec['after']`` times; ``mid_response`` is handled by
    the mutation loop instead."""
    from repro.relational import wal as wal_module

    point = spec.get("point")
    if point is None or point == "mid_response":
        return
    remaining = [spec.get("after", 1)]

    def hook(name):
        if name == point:
            remaining[0] -= 1
            if remaining[0] <= 0:
                os.kill(os.getpid(), signal.SIGKILL)

    wal_module.set_crash_hook(hook)


def child_main(argv=None):
    """The crashing process: apply the plan through a durable server,
    ACK each commit on stdout, die where the spec says."""
    spec = json.loads((argv or sys.argv[1:])[0])
    server = build_server(spec["wal_dir"],
                          checkpoint_every=spec.get("checkpoint_every", 5))
    _install_crash(spec)
    plan = mutation_plan(spec["n_ops"], seed=spec.get("seed", 0))
    mid_response_at = (spec.get("after", 1) - 1
                       if spec.get("point") == "mid_response" else None)
    for i, (request_id, table, op, rows, op_seed) in enumerate(plan):
        result = server.mutate(table, op=op, rows=rows, seed=op_seed,
                               request_id=request_id)
        if mid_response_at is not None and i == mid_response_at:
            # Committed and applied — but the client never hears back.
            os.kill(os.getpid(), signal.SIGKILL)
        print(f"ACK {request_id} {result.mutated}", flush=True)
    print("DONE", flush=True)
    return 0


def run_child(wal_dir, n_ops, seed=0, point=None, after=1,
              checkpoint_every=5, timeout=120):
    """Launch the child and wait for it to die (or finish); returns
    ``(acked request ids, return code)``.  ``point=None`` runs the plan
    to completion (the no-crash control)."""
    spec = {
        "wal_dir": str(wal_dir), "n_ops": n_ops, "seed": seed,
        "point": point, "after": after, "checkpoint_every": checkpoint_every,
    }
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.crash", json.dumps(spec)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    acked = [
        line.split()[1]
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    ]
    return acked, proc.returncode


# -- the parent-side experiment --------------------------------------------


def run_crash_round(wal_dir, n_ops=12, seed=0, point=None, after=1,
                    checkpoint_every=5, backends=("simulated",)):
    """One full crash → recover → compare → retry-all round.

    Returns a result dict: what was committed, the recovery report
    numbers, and the diff lists (both empty on success) of the
    committed-prefix comparison and the post-retry full-plan comparison.
    """
    from time import perf_counter

    from repro.relational.wal import recover

    plan = mutation_plan(n_ops, seed=seed)
    acked, returncode = run_child(
        wal_dir, n_ops, seed=seed, point=point, after=after,
        checkpoint_every=checkpoint_every,
    )
    crashed = returncode != 0

    # Recover the way a restarted server would: regenerate the
    # deterministic base data, then restore the snapshot (when one was
    # completed before the crash) and replay the log tail over it.  The
    # WAL logs *mutations*; a crash during the very first checkpoint
    # legitimately leaves no snapshot — recovery then keeps the
    # regenerated base and replays nothing.
    started = perf_counter()
    database, report = recover(wal_dir, database=build_database())
    recover_wall_ms = (perf_counter() - started) * 1000.0

    # The WAL, not the ACK stream, is the truth about what committed:
    # mid_response commits without ACKing, mid-append ACKs nothing extra.
    committed = [entry[0] for entry in plan if entry[0] in report.dedup]
    assert committed[:len(acked)] == acked or set(acked) <= set(committed), (
        f"ACKed requests missing from the recovered dedup map: "
        f"{sorted(set(acked) - set(committed))}"
    )

    oracle = build_database()
    apply_plan(oracle, [e for e in plan if e[0] in set(committed)])
    prefix_diffs = diff_fingerprints(
        fingerprint(database, backends=backends),
        fingerprint(oracle, backends=backends),
    )

    # Exactly-once: restart on the recovered state, retry EVERYTHING.
    server = build_server(wal_dir, checkpoint_every=checkpoint_every,
                          database=database)
    deduped = applied = 0
    for request_id, table, op, rows, op_seed in plan:
        result = server.mutate(table, op=op, rows=rows, seed=op_seed,
                               request_id=request_id)
        if result.stats.get("deduplicated"):
            deduped += 1
        else:
            applied += 1
    full_oracle = build_database()
    apply_plan(full_oracle, plan)
    retry_diffs = diff_fingerprints(
        fingerprint(database, backends=backends),
        fingerprint(full_oracle, backends=backends),
    )
    server.session.wal.close()

    return {
        "point": point, "after": after, "n_ops": n_ops, "seed": seed,
        "crashed": crashed, "acked": len(acked),
        "committed": len(committed),
        "recover_wall_ms": recover_wall_ms,
        "snapshot_rows": report.snapshot_rows,
        "records_replayed": report.records_scanned,
        "ops_applied": report.ops_applied,
        "torn_bytes": report.torn_bytes,
        "retries_deduplicated": deduped,
        "retries_applied": applied,
        "prefix_diffs": prefix_diffs,
        "retry_diffs": retry_diffs,
    }


if __name__ == "__main__":
    raise SystemExit(child_main())
