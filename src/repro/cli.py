"""Command-line interface: explore the reproduction without writing code.

::

    python -m repro explain --query q1 --strategy unified
    python -m repro materialize --query q1 --strategy greedy --indent 2
    python -m repro plan --query q2 --reduce
    python -m repro sweep --query q1 --reduce        # slow: 512 plans
    python -m repro trace q1 --out trace.json        # Chrome-trace profile
    python -m repro mutate --table Nation --op insert --rows 2
    python -m repro serve --port 7414                # multi-tenant service
    python -m repro serve --wal state/ --checkpoint-every 256   # durable
    python -m repro recover state/ --query q1        # inspect + prove a WAL
    python -m repro query --connect 127.0.0.1:7414 --query q1 --indent 2

All commands run against a freshly generated Configuration-A TPC-H
database (deterministic seed), so output is reproducible.  ``--metrics``
on the execution commands prints the observability counters as JSON;
``trace`` runs a materialization under a full tracing session and writes
the Chrome-trace file (load it in ``about:tracing`` or Perfetto).
"""

import argparse
import sys

import repro
from repro.bench.queries import QUERY_1, QUERY_2, load_view
from repro.bench.report import format_series
from repro.core.greedy import GreedyPlanner
from repro.core.options import ExecutionOptions
from repro.core.silkroute import SilkRoute
from repro.core.sqlgen import PlanStyle
from repro.obs import ObsOptions, metrics_json
from repro.relational.backends import BACKEND_NAMES, SqliteBackend
from repro.relational.faults import FaultPolicy, RetryPolicy
from repro.session import Session, apply_delta as _apply_delta  # noqa: F401
from repro.tpch.configs import CONFIG_A, build_configuration

_QUERIES = {"q1": QUERY_1, "q2": QUERY_2}
_STYLES = {
    "outer-join": PlanStyle.OUTER_JOIN,
    "outer-union": PlanStyle.OUTER_UNION,
}


def _probability(text):
    """argparse type: a float in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"{value} is not a probability (must be between 0 and 1)")
    return value


def _positive_int(text):
    """argparse type: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"{value} must be at least 1")
    return value


def _positive_float(text):
    """argparse type: a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"{value} must be positive")
    return value


def _execution_options(args, default_budget_ms=None, obs=None, database=None):
    """The :class:`ExecutionOptions` described by the command line."""
    backend = getattr(args, "backend", None)
    if backend == "sqlite" and getattr(args, "db_path", None) is not None:
        backend = SqliteBackend(database, db_path=args.db_path)
    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_attempts=args.retries)
    faults = None
    if args.fault_seed is not None or args.fault_rate is not None:
        faults = FaultPolicy(
            seed=args.fault_seed if args.fault_seed is not None else 0,
            error_rate=args.fault_rate if args.fault_rate is not None else 0.0,
        )
    budget_ms = args.budget_ms
    if budget_ms is None:
        budget_ms = default_budget_ms
    return ExecutionOptions(
        style=_STYLES[args.style],
        reduce=args.reduce,
        budget_ms=budget_ms,
        workers=args.workers,
        retry=retry,
        faults=faults,
        obs=obs,
        replicas=args.replicas,
        hedge_ms=args.hedge_ms,
        max_concurrent=args.max_concurrent,
        engine=getattr(args, "engine", None),
        batch_size=getattr(args, "batch_size", None),
        backend=backend,
    )


def _obs_session(args):
    """An :class:`~repro.obs.ObsOptions` session when the command asked
    for one (``--metrics``, or the ``trace`` command), else None."""
    if getattr(args, "command", None) == "trace" or getattr(args, "metrics", False):
        return ObsOptions()
    return None


def _run_mutate(args, database, connection, estimator, rxl, out):
    """The ``mutate`` command: warm the caches, apply a delta, and show
    that incremental re-materialization matches a cold run byte-for-byte
    (XML and simulated timings) while replaying untouched work."""
    import dataclasses
    import time

    obs = _obs_session(args)
    options = _execution_options(args, obs=obs, database=database)
    session = Session(connection, estimator=estimator)
    strategy = None if args.strategy == "greedy" else args.strategy

    start = time.perf_counter()
    session.materialize(rxl, strategy, root_tag="view", options=options)
    warm_s = time.perf_counter() - start
    print(f"-- warm materialization: {warm_s * 1000:.1f}ms wall", file=out)

    delta = session.mutate(args.table, op=args.op, rows=args.rows,
                           seed=args.seed)
    print(
        f"-- {args.op}: {delta.mutated} row(s) in {args.table} "
        f"(now generation {delta.stats['generation']})",
        file=out,
    )

    start = time.perf_counter()
    incremental = session.materialize(rxl, strategy, root_tag="view",
                                      options=options)
    incremental_s = time.perf_counter() - start

    # Cold oracle: a fresh connection (empty caches) over the *mutated*
    # database must agree byte-for-byte, with identical simulated timings.
    _, cold_connection, cold_estimator = build_configuration(
        CONFIG_A, database=database,
    )
    cold_options = dataclasses.replace(options, obs=None)
    cold_session = Session(cold_connection, estimator=cold_estimator,
                           cache=False)
    start = time.perf_counter()
    cold = cold_session.materialize(rxl, strategy, root_tag="view",
                                    options=cold_options)
    cold_s = time.perf_counter() - start

    identical = (
        incremental.xml == cold.xml
        and incremental.report.query_ms == cold.report.query_ms
        and incremental.report.transfer_ms == cold.report.transfer_ms
    )
    plan_stats = incremental.stats["plan_cache"]
    node_stats = connection.engine.node_cache.stats().as_dict()
    splice = incremental.stats["splice_cache"]
    print(
        f"-- plan cache: {plan_stats['hits']} hit(s), "
        f"{plan_stats['invalidations']} invalidation(s)",
        file=out,
    )
    print(
        f"-- node cache: {node_stats['hits']} hit(s), "
        f"{node_stats['invalidations']} invalidation(s)",
        file=out,
    )
    print(
        f"-- splice cache: {splice['hits']} stream(s) replayed, "
        f"{splice['misses']} decoded",
        file=out,
    )
    speedup = (cold_s / incremental_s) if incremental_s > 0 else float("inf")
    print(
        f"-- incremental {incremental_s * 1000:.1f}ms vs cold "
        f"{cold_s * 1000:.1f}ms wall ({speedup:.1f}x); simulated "
        f"{incremental.report.query_ms:.0f}ms query + "
        f"{incremental.report.transfer_ms:.0f}ms transfer",
        file=out,
    )
    print(
        "-- verified: incremental output byte-identical to the cold run"
        if identical else
        "-- MISMATCH: incremental output differs from the cold run",
        file=out,
    )
    if args.metrics:
        print(metrics_json(obs.metrics), file=out)
    return 0 if identical else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SilkRoute reproduction (SIGMOD 2001) command line",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--query", choices=sorted(_QUERIES), default="q1",
                       help="workload query (default: q1)")
        p.add_argument("--style", choices=sorted(_STYLES),
                       default="outer-join", help="SQL generation style")
        p.add_argument("--reduce", action="store_true",
                       help="apply view-tree reduction")

    def add_execution(p):
        p.add_argument("--workers", type=_positive_int, default=None,
                       help="concurrent dispatch width (subqueries, or "
                            "partitions for sweep)")
        p.add_argument("--budget-ms", type=_positive_float, default=None,
                       help="per-subquery simulated timeout")
        p.add_argument("--retries", type=_positive_int, default=None,
                       help="max attempts per stream under fault injection")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="deterministic fault-injection seed")
        p.add_argument("--fault-rate", type=_probability, default=None,
                       help="per-attempt transient failure probability "
                            "(between 0 and 1)")
        p.add_argument("--replicas", type=_positive_int, default=None,
                       help="serve streams from N simulated replicas with "
                            "health-checked routing and failover")
        p.add_argument("--hedge-ms", type=_positive_float, default=None,
                       help="hedge a backup request on a second replica when "
                            "a stream exceeds this simulated latency")
        p.add_argument("--max-concurrent", type=_positive_int, default=None,
                       help="admission-control cap on concurrent streams")
        p.add_argument("--engine", choices=["batch", "tuple"], default=None,
                       help="plan execution mode: vectorized batch kernels "
                            "or the row-at-a-time interpreter (results and "
                            "simulated timings are identical)")
        p.add_argument("--batch-size", type=_positive_int, default=None,
                       help="rows per chunk in the batch engine's kernels")
        p.add_argument("--backend", choices=sorted(BACKEND_NAMES),
                       default=None,
                       help="also execute the generated SQL on a real "
                            "backend, cross-validated against the simulated "
                            "oracle (results and simulated timings are "
                            "identical; measured wall-clock is reported "
                            "separately)")
        p.add_argument("--db-path", default=None, metavar="FILE",
                       help="SQLite database file for --backend sqlite "
                            "(default: a private in-memory instance)")
        p.add_argument("--metrics", action="store_true",
                       help="print observability counters as JSON afterwards")

    explain = sub.add_parser("explain", help="print the SQL a plan sends")
    add_common(explain)
    explain.add_argument("--strategy", default="greedy",
                         choices=["unified", "fully-partitioned", "greedy"])

    add_execution(explain)

    materialize = sub.add_parser("materialize",
                                 help="materialize the XML view")
    add_common(materialize)
    add_execution(materialize)
    materialize.add_argument("--strategy", default="greedy",
                             choices=["unified", "fully-partitioned", "greedy"])
    materialize.add_argument("--indent", type=int, default=None)
    materialize.add_argument("--out", default=None,
                             help="write the document to a file")

    plan = sub.add_parser("plan", help="run the greedy plan generator")
    add_common(plan)

    sweep = sub.add_parser("sweep",
                           help="time all 512 plans (Fig. 13/14 series)")
    add_common(sweep)
    add_execution(sweep)
    sweep.add_argument("--metric", choices=["query_ms", "total_ms"],
                       default="query_ms")

    query = sub.add_parser(
        "query",
        help="run a query against a running service (--connect) or locally",
    )
    add_common(query)
    add_execution(query)
    query.add_argument("name", nargs="?", choices=sorted(_QUERIES),
                       default=None,
                       help="workload query (same as --query)")
    query.add_argument("--strategy", default="greedy",
                       choices=["unified", "fully-partitioned", "greedy"])
    query.add_argument("--indent", type=int, default=None)
    query.add_argument("--out", default=None,
                       help="write the document to a file")
    query.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="address of a running `repro serve` (omit to "
                            "run locally through a Session)")
    query.add_argument("--tenant", default="default",
                       help="tenant name sent with the request")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant query service (JSON-line protocol)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7414,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--max-inflight", type=_positive_int, default=None,
                       help="per-tenant in-flight request quota "
                            "(default: unthrottled)")
    serve.add_argument("--document-cache-bytes", type=_positive_int,
                       default=None,
                       help="LRU byte budget for finished documents")
    serve.add_argument("--wal", default=None, metavar="PATH",
                       help="directory for the durable write-ahead log; "
                            "mutations are logged + fsynced before they "
                            "apply, and a restart on the same path recovers "
                            "the pre-crash state (tables, generations, and "
                            "the request-dedup map) before serving")
    serve.add_argument("--checkpoint-every", type=_positive_int, default=None,
                       help="snapshot the database and truncate the WAL "
                            "after every N commit records (default: only "
                            "on startup and graceful shutdown)")
    serve.add_argument("--drain-timeout", type=_positive_float, default=30.0,
                       help="seconds SIGTERM waits for in-flight requests "
                            "before exiting (default: 30)")

    recover_cmd = sub.add_parser(
        "recover",
        help="recover a database from a WAL directory and report what "
             "was replayed",
    )
    recover_cmd.add_argument("wal", metavar="PATH",
                             help="the WAL directory a --wal serve wrote")
    recover_cmd.add_argument("--query", choices=sorted(_QUERIES),
                             default=None,
                             help="also materialize this query against the "
                                  "recovered database (proof of life)")

    mutate = sub.add_parser(
        "mutate",
        help="apply a delta and re-materialize the view incrementally",
    )
    add_common(mutate)
    add_execution(mutate)
    mutate.add_argument("--strategy", default="greedy",
                        choices=["unified", "fully-partitioned", "greedy"])
    mutate.add_argument("--table", default="Nation",
                        help="base table to mutate (default: Nation)")
    mutate.add_argument("--op", choices=["insert", "update", "delete"],
                        default="insert",
                        help="mutation kind (default: insert)")
    mutate.add_argument("--rows", type=_positive_int, default=1,
                        help="rows to insert/update/delete (default: 1)")
    mutate.add_argument("--seed", type=int, default=0,
                        help="deterministic delta-synthesis seed")

    trace = sub.add_parser(
        "trace",
        help="materialize under a tracing session and export a Chrome trace",
    )
    trace.add_argument("query", nargs="?", choices=sorted(_QUERIES),
                       default="q1", help="workload query (default: q1)")
    trace.add_argument("--style", choices=sorted(_STYLES),
                       default="outer-join", help="SQL generation style")
    trace.add_argument("--reduce", action="store_true",
                       help="apply view-tree reduction")
    trace.add_argument("--strategy", default="greedy",
                       choices=["unified", "fully-partitioned", "greedy"])
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace JSON output file "
                            "(default: trace.json)")
    add_execution(trace)

    sub.add_parser("experiments",
                   help="list the paper's tables/figures and their benches")

    tree = sub.add_parser("tree", help="draw the labeled view tree (Fig. 6)")
    tree.add_argument("--query", choices=sorted(_QUERIES), default="q1")
    tree.add_argument("--no-args", action="store_true",
                      help="hide Skolem-term arguments")

    sql = sub.add_parser("sql", help="run SQL against the TPC-H database")
    sql.add_argument("statement", help="a SELECT in the supported dialect")

    xmlql = sub.add_parser(
        "xmlql", help="run an XML-QL query against the virtual view"
    )
    xmlql.add_argument("--query", choices=sorted(_QUERIES), default="q1")
    xmlql.add_argument("expression",
                       help="XML-QL text, e.g. 'where <supplier><name>$s"
                            "</name></supplier> construct <r>$s</r>'")
    xmlql.add_argument("--indent", type=int, default=2)

    return parser


def _run_serve(args, out):
    """The ``serve`` command: the multi-tenant service over q1/q2.

    With ``--wal`` the server is durable (recovering the directory's
    state before it listens) and SIGTERM triggers a graceful drain:
    in-flight requests finish, new ones are shed with the typed
    ``draining`` overload reason, the WAL is checkpointed, and the
    process exits cleanly.
    """
    import signal
    import threading

    from repro.relational.replicas import AdmissionPolicy
    from repro.serve import Server

    policy = None
    if args.max_inflight is not None:
        policy = AdmissionPolicy(max_inflight_requests=args.max_inflight)
    server = Server(
        queries=dict(_QUERIES), default_policy=policy,
        document_cache_bytes=args.document_cache_bytes,
        wal=args.wal, checkpoint_every=args.checkpoint_every,
    )
    if server.session.recovery is not None:
        report = server.session.recovery
        print(
            f"-- recovered {report.path}: {report.snapshot_rows} snapshot "
            f"row(s) + {report.records_scanned} log record(s) "
            f"({report.ops_applied} op(s) applied, "
            f"{report.torn_bytes} torn byte(s) dropped) "
            f"in {report.wall_ms:.1f}ms",
            file=out,
        )

    drainers = []

    def on_sigterm(signum, frame):
        # socketserver.shutdown() deadlocks when called from the thread
        # running serve_forever (which this handler interrupts), so the
        # drain runs on a helper thread — joined below, so the process
        # cannot exit before the final checkpoint lands on disk.
        thread = threading.Thread(
            target=server.terminate, kwargs={"timeout": args.drain_timeout},
            name="repro-drain", daemon=True,
        )
        drainers.append(thread)
        thread.start()

    try:
        signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:
        pass  # not on the main thread (tests drive _run_serve directly)

    def ready(address):
        print(f"serving {sorted(_QUERIES)} on "
              f"{address[0]}:{address[1]}", file=out)
        if hasattr(out, "flush"):
            out.flush()

    try:
        server.serve_forever(host=args.host, port=args.port, ready=ready)
    except KeyboardInterrupt:
        print("-- interrupted", file=out)
        server.terminate(timeout=args.drain_timeout)
    for thread in drainers:
        thread.join(args.drain_timeout + 30)
    return 0


def _run_recover(args, out):
    """The ``recover`` command: rebuild a database from a WAL directory,
    print the recovery report, and optionally prove it serves."""
    from repro.relational.wal import recover
    from repro.tpch.schema import tpch_schema

    database, report = recover(args.wal, schema=tpch_schema())
    print(f"recovered {report.path} in {report.wall_ms:.1f}ms:", file=out)
    print(
        f"  snapshot: {report.snapshot_rows} row(s); log: "
        f"{report.records_scanned} record(s) scanned, "
        f"{report.ops_applied} op(s) applied, "
        f"{report.ops_skipped} already in snapshot, "
        f"{report.torn_bytes} torn byte(s) dropped",
        file=out,
    )
    for name in sorted(report.tables):
        rows, generation = report.tables[name]
        print(f"  {name}: {rows} row(s), generation {generation}", file=out)
    if report.dedup:
        print(f"  dedup map: {len(report.dedup)} committed request id(s)",
              file=out)
    if args.query is not None:
        session = Session(database)
        result = session.materialize(_QUERIES[args.query], root_tag="view")
        print(
            f"-- {args.query}: {len(result.xml)} character(s), simulated "
            f"{result.report.query_ms:.0f}ms query + "
            f"{result.report.transfer_ms:.0f}ms transfer",
            file=out,
        )
    return 0


def _run_remote_query(args, out):
    """``query --connect``: one request against a running service."""
    from repro.serve import ServeClient, ServeError

    host, _, port = args.connect.rpartition(":")
    options = _execution_options(args)
    strategy = None if args.strategy == "greedy" else args.strategy
    try:
        with ServeClient(host or "127.0.0.1", int(port)) as client:
            reply = client.query(
                args.query, tenant=args.tenant, partition=strategy,
                indent=args.indent, options=options,
            )
    except ServeError as exc:
        print(f"-- error: {exc}", file=out)
        return 1
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(reply["xml"])
        print(f"wrote {len(reply['xml'])} characters to {args.out}", file=out)
    else:
        print(reply["xml"], file=out)
    report = reply["report"]
    coalesced = " (coalesced)" if reply.get("coalesced") else ""
    print(
        f"-- {report['n_streams']} stream(s), simulated "
        f"{report['query_ms']:.0f}ms query + "
        f"{report['transfer_ms']:.0f}ms transfer{coalesced}",
        file=out,
    )
    return 0


def main(argv=None, out=sys.stdout):
    parser = build_parser()
    args = parser.parse_args(argv)
    if (getattr(args, "db_path", None) is not None
            and getattr(args, "backend", None) != "sqlite"):
        parser.error("--db-path requires --backend sqlite")
    if getattr(args, "name", None):
        args.query = args.name
    if args.command == "experiments":
        from repro.bench.experiments import format_registry

        print(format_registry(), file=out)
        return 0

    if args.command == "serve":
        return _run_serve(args, out)

    if args.command == "recover":
        return _run_recover(args, out)

    if args.command == "query" and args.connect:
        return _run_remote_query(args, out)

    database, connection, estimator = build_configuration(CONFIG_A)
    rxl = _QUERIES[getattr(args, "query", "q1")]

    if args.command == "tree":
        tree = load_view(rxl, database.schema)
        print(tree.render(show_args=not args.no_args), file=out)
        return 0

    if args.command == "sql":
        stream = connection.sql(args.statement)
        names = tuple(c.name for c in stream.columns)
        print("  ".join(names), file=out)
        for row in stream:
            print("  ".join("NULL" if v is None else str(v) for v in row),
                  file=out)
        print(f"-- {len(stream)} row(s), simulated {stream.server_ms:.0f}ms",
              file=out)
        return 0

    if args.command == "xmlql":
        silk = SilkRoute(connection, estimator=estimator)
        view = silk.define_view(rxl)
        result = view.query(args.expression, indent=args.indent)
        print(result.xml, file=out)
        print(f"-- {result.bindings} binding(s), one SQL query, simulated "
              f"{result.server_ms:.0f}ms", file=out)
        return 0

    style = _STYLES[args.style]

    if args.command == "mutate":
        return _run_mutate(args, database, connection, estimator, rxl, out)

    if args.command == "trace":
        obs = _obs_session(args)
        options = _execution_options(args, obs=obs, database=database)
        session = Session(connection, estimator=estimator)
        strategy = None if args.strategy == "greedy" else args.strategy
        result = session.materialize(rxl, strategy, root_tag="view",
                                     options=options)
        with open(args.out, "w") as sink:
            sink.write(obs.chrome_trace_json())
        print(obs.profile(), file=out)
        print(
            f"-- {result.report.n_streams} stream(s), simulated "
            f"{result.report.query_ms:.0f}ms query + "
            f"{result.report.transfer_ms:.0f}ms transfer",
            file=out,
        )
        print(f"wrote Chrome trace ({len(obs.chrome_trace())} events) "
              f"to {args.out}", file=out)
        if args.metrics:
            print(metrics_json(obs.metrics), file=out)
        return 0

    if args.command in ("explain", "materialize", "query"):
        obs = _obs_session(args)
        options = _execution_options(args, obs=obs, database=database)
        session = Session(connection, estimator=estimator)
        strategy = None if args.strategy == "greedy" else args.strategy
        if args.command == "explain":
            sqls = session.explain(rxl, strategy, options=options).sql
            for i, sql in enumerate(sqls, 1):
                print(f"-- query {i} " + "-" * 50, file=out)
                print(sql, file=out)
            if args.metrics:
                print(metrics_json(obs.metrics), file=out)
            return 0
        result = session.materialize(
            rxl, strategy, indent=args.indent, root_tag="view",
            options=options,
        )
        if args.out:
            with open(args.out, "w") as sink:
                sink.write(result.xml)
            print(f"wrote {len(result.xml)} characters to {args.out}", file=out)
        else:
            print(result.xml, file=out)
        print(
            f"-- {result.report.n_streams} stream(s), simulated "
            f"{result.report.query_ms:.0f}ms query + "
            f"{result.report.transfer_ms:.0f}ms transfer",
            file=out,
        )
        if result.report.backend is not None:
            print(
                f"-- backend: {result.report.backend}, measured "
                f"{result.report.backend_wall_ms:.1f}ms wall, "
                "rows cross-validated against the simulated oracle",
                file=out,
            )
        if options.faults is not None or options.replicas is not None:
            report = result.report
            print(
                f"-- resilience: {report.attempts} attempt(s), "
                f"{report.retries} retried, {report.faults_injected} fault(s) "
                f"injected, {report.backoff_ms:.0f}ms backoff, "
                f"{len(report.degraded_streams)} stream(s) degraded",
                file=out,
            )
            if options.replicas is not None:
                print(
                    f"-- replicas: {report.failovers} failover(s), "
                    f"{report.hedges} hedge(s), {report.hedge_wins} hedge "
                    f"win(s), {report.hedge_wait_ms:.0f}ms hedge wait",
                    file=out,
                )
        if args.metrics:
            print(metrics_json(obs.metrics), file=out)
        return 0

    tree = load_view(rxl, database.schema)
    if args.command == "plan":
        planner = GreedyPlanner(
            tree, database.schema, estimator, style=style, reduce=args.reduce
        )
        greedy = planner.plan()
        described = greedy.describe()
        print(f"mandatory edges: {described['mandatory']}", file=out)
        print(f"optional edges:  {described['optional']}", file=out)
        print(f"plan family:     {described['family_size']} plan(s)", file=out)
        print(f"oracle requests: {greedy.oracle_requests} "
              f"(worst case {len(tree.edges) ** 2})", file=out)
        return 0

    if args.command == "sweep":
        obs = _obs_session(args)
        options = _execution_options(
            args, default_budget_ms=CONFIG_A.subquery_budget_ms, obs=obs,
            database=database,
        )
        session = Session(connection, estimator=estimator)
        sweep = session.sweep(rxl, options=options).sweep
        print(
            format_series(
                sweep, args.metric,
                title=f"{args.query} Config A {args.metric} "
                      f"(reduce={args.reduce})",
            ),
            file=out,
        )
        if args.metrics:
            print(metrics_json(obs.metrics), file=out)
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())
