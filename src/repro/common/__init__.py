"""Shared utilities for the SilkRoute reproduction.

This package holds the error hierarchy and the small, widely reused helpers
(ordering of heterogeneous sort keys, identifier formatting) that every other
subpackage builds on.
"""

from repro.common.errors import (
    ReproError,
    SchemaError,
    QueryError,
    RxlSyntaxError,
    RxlScopeError,
    PlanError,
    ExecutionError,
    TimeoutExceeded,
    DtdError,
    ValidationError,
)
from repro.common.ordering import NONE_FIRST, NoneFirst, sort_key, compare

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "RxlSyntaxError",
    "RxlScopeError",
    "PlanError",
    "ExecutionError",
    "TimeoutExceeded",
    "DtdError",
    "ValidationError",
    "NONE_FIRST",
    "NoneFirst",
    "sort_key",
    "compare",
]
