"""Total ordering over heterogeneous, nullable sort keys.

The integrated relation of the paper (Sec. 3.2) is sorted by the interleaved
sequence ``L1, V(1,1)..V(1,n1), L2, V(2,1)..`` where any position may be NULL:
a tuple for a shallow node carries no values for the deeper levels.  SQL sorts
NULLs consistently at one end; the paper's tagger relies on a parent tuple
(NULL at the deeper positions) sorting *before* its children's tuples, so we
adopt NULLS FIRST throughout.

Python 3 refuses to compare ``None`` with other values, and refuses to compare
``int`` with ``str``.  :class:`NoneFirst` wraps a single value to make it
totally ordered: ``None`` sorts before everything, and values of different
types are ordered by type name first (a deterministic, if arbitrary, rule that
only matters for pathological mixed-type columns).
"""

from functools import total_ordering


@total_ordering
class NoneFirst:
    """Wrapper making one nullable value totally ordered, NULLs first."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _rank(self):
        value = self.value
        if value is None:
            return (0, "", None)
        return (1, type(value).__name__, value)

    def __eq__(self, other):
        if not isinstance(other, NoneFirst):
            return NotImplemented
        return self._rank()[:2] == other._rank()[:2] and self.value == other.value

    def __lt__(self, other):
        if not isinstance(other, NoneFirst):
            return NotImplemented
        mine, theirs = self._rank(), other._rank()
        if mine[:2] != theirs[:2]:
            return mine[:2] < theirs[:2]
        if self.value is None:  # both None: equal
            return False
        return self.value < other.value

    def __hash__(self):
        return hash((self._rank()[:2], self.value))

    def __repr__(self):
        return f"NoneFirst({self.value!r})"


def NONE_FIRST(value):
    """Convenience constructor: ``NONE_FIRST(x)`` == ``NoneFirst(x)``."""
    return NoneFirst(value)


def sort_key(values):
    """Map a sequence of nullable values to a tuple usable as a sort key.

    The result compares element-wise with NULLS FIRST semantics and never
    raises ``TypeError`` on mixed types.
    """
    return tuple(NoneFirst(v) for v in values)


def compare(left, right):
    """Three-way comparison of two nullable-value sequences.

    Returns -1, 0, or 1.  Shorter sequences are padded with ``None`` (which
    sorts first), so a parent tuple missing the deeper sort positions orders
    before its children — exactly the property the merge/tagger needs.
    """
    width = max(len(left), len(right))
    padded_left = list(left) + [None] * (width - len(left))
    padded_right = list(right) + [None] * (width - len(right))
    key_left = sort_key(padded_left)
    key_right = sort_key(padded_right)
    if key_left < key_right:
        return -1
    if key_left > key_right:
        return 1
    return 0
