"""Exception hierarchy for the SilkRoute reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type. Subclasses partition the failure domains: schema definition,
query construction, RXL parsing/scoping, planning, execution, and XML/DTD
validation.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A relational schema is malformed or violated (unknown table/column,
    duplicate names, key violations, foreign-key targets missing)."""


class QueryError(ReproError):
    """A relational-algebra or SQL query is malformed (unknown column
    references, union branches with incompatible schemas, bad predicates)."""


class RxlSyntaxError(ReproError):
    """The RXL source text could not be parsed."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class RxlScopeError(ReproError):
    """An RXL query references an undeclared tuple variable, an unknown
    table, or an unknown attribute."""


class PlanError(ReproError):
    """A view-tree partition or execution plan is invalid (edges outside the
    tree, a partition that is not a spanning forest, a plan that needs SQL
    features the target dialect does not support)."""


class ExecutionError(ReproError):
    """The simulated relational engine failed while executing a query.

    Every execution error can carry the identity of the client request it
    failed on behalf of: ``tenant`` / ``request_id`` default to None and
    are stamped — once, closest to the raise site — by the dispatch layer
    or the serving front end (see :func:`tag_request`), so an
    :class:`OverloadError` or :class:`StaleGenerationError` surfacing from
    a dispatch worker thread still names the tenant and request that
    triggered it.
    """

    tenant = None
    request_id = None


def tag_request(exc, tenant=None, request_id=None):
    """Stamp request identity onto ``exc`` without overwriting an earlier
    stamp (the stamp closest to the raise site wins); returns ``exc``.

    Accepts any exception — attributes are set dynamically — so callers
    can tag errors that cross layer boundaries without type checks.
    """
    if tenant is not None and getattr(exc, "tenant", None) is None:
        exc.tenant = tenant
    if request_id is not None and getattr(exc, "request_id", None) is None:
        exc.request_id = request_id
    return exc


class TimeoutExceeded(ExecutionError):
    """A query's simulated running time exceeded the configured budget.

    Mirrors the paper's 5-minute per-subquery timeout in the Config-A
    exhaustive sweep: plans whose subqueries exceed the budget report no
    time at all.

    When the timeout is raised (or re-raised) on behalf of a whole plan,
    ``stream_label`` names the subquery stream that overran its budget and
    ``report`` carries the partial
    :class:`~repro.core.silkroute.PlanReport` — the streams completed
    before the offender — so callers can inspect which stream timed out
    without re-running the plan.
    """

    def __init__(self, budget_ms, elapsed_ms, stream_label=None, report=None):
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.stream_label = stream_label
        self.report = report
        super().__init__(
            f"simulated time {elapsed_ms:.0f}ms exceeded budget {budget_ms:.0f}ms"
        )


class StaleGenerationError(ExecutionError):
    """A mutation changed table generations in the middle of a pinned
    multi-plan execution.

    A sweep (or a resilient multi-round dispatch) pins the per-table
    generation vector when it starts: every plan's timings are only
    comparable if they saw the same data.  When a concurrent
    ``insert``/``update``/``delete`` bumps a pinned table mid-run, later
    plans would silently recompute against the new state and the recorded
    series would mix generations — so the read is refused instead.
    ``tables`` names the mutated tables; ``pinned``/``current`` are the
    per-table generation maps at pin time and at detection time.
    """

    def __init__(self, tables, pinned=None, current=None):
        self.tables = tuple(tables)
        self.pinned = dict(pinned) if pinned else None
        self.current = dict(current) if current else None
        detail = ", ".join(self.tables)
        super().__init__(
            f"table(s) {detail} mutated mid-sweep: results would mix "
            f"generations — re-run against the new state (or materialize "
            f"incrementally via the dependency-scoped caches)"
        )


class TransientConnectionError(ExecutionError):
    """A simulated transient failure of the client/server connection.

    Raised by a :class:`~repro.relational.faults.FaultPolicy` installed on a
    :class:`~repro.relational.connection.Connection`: the middle-ware does
    not control the RDBMS, so a stream execution can fail for reasons that
    have nothing to do with the plan — the connection dropped, the server
    shed load.  Transient means *retryable*: re-submitting the same query
    may succeed (unlike :class:`TimeoutExceeded`, which is deterministic in
    simulated time and never retried).

    ``stream_label`` names the stream whose execution failed and
    ``attempt`` is the 1-based submission attempt that drew the fault.
    When the error is re-raised on behalf of a whole plan — the stream
    exhausted its :class:`~repro.relational.faults.RetryPolicy` and no
    finer degradation split existed — ``attempts`` is the total number of
    submissions spent on the stream and ``report`` carries the partial
    :class:`~repro.core.silkroute.PlanReport` of the streams completed
    before it.  ``latency_ms`` is the simulated connection time wasted by
    the failing attempt (charged to retry deadlines, never to server
    time).
    """

    def __init__(self, stream_label=None, attempt=1, latency_ms=0.0,
                 attempts=None, report=None, reason="injected fault"):
        self.stream_label = stream_label
        self.attempt = attempt
        self.latency_ms = latency_ms
        self.attempts = attempts if attempts is not None else attempt
        self.report = report
        super().__init__(
            f"transient connection failure on stream "
            f"{stream_label or '?'} (attempt {attempt}: {reason})"
        )


class OverloadError(ExecutionError):
    """The admission controller refused or shed work to protect the system.

    Raised by the :class:`~repro.relational.replicas.AdmissionController`
    when a dispatch would exceed the configured capacity: either the plan's
    stream count overflows ``max_concurrent_streams`` plus the queue bound
    up front, or the deterministic simulated schedule shows a stream would
    *start* past the per-query ``deadline_ms``.  Shedding is load
    protection, not a failure of the shed work itself — the same plan
    succeeds under a laxer policy.

    ``reason`` is ``"queue"``, ``"deadline"``, or ``"tenant"`` (the
    serving layer's per-tenant in-flight quota refused the whole request
    before any stream was planned); ``shed`` holds the labels
    of the streams that were not executed (in spec order) and
    ``stream_label`` the first of them.  When the error is raised on
    behalf of a whole plan, ``report`` carries the partial
    :class:`~repro.core.silkroute.PlanReport` of the streams completed
    before shedding began.
    """

    def __init__(self, message, reason="queue", shed=(), stream_label=None,
                 report=None):
        self.reason = reason
        self.shed = tuple(shed)
        self.stream_label = stream_label
        self.report = report
        super().__init__(message)


class WalError(ReproError):
    """The write-ahead log or a recovery from it failed.

    Raised for conditions that cannot be tolerated silently: an unreadable
    or checksum-corrupt snapshot, a snapshot whose catalog does not match
    the database it is being restored into, attaching one database to two
    logs, or nesting :meth:`~repro.relational.database.Database.transaction`
    groups.  A *torn or partially written trailing record* is explicitly
    **not** an error — recovery tolerates it by construction (the crash
    interrupted an uncommitted append) and reports the dropped suffix in
    :class:`~repro.relational.wal.RecoveryReport.torn_bytes`.
    """


class BackendMismatchError(ExecutionError):
    """A real backend's rows disagreed with the simulated oracle.

    Every execution against a real backend (:mod:`repro.relational.backends`)
    is cross-validated: the simulated engine's rows are the oracle, and the
    backend's converted result must be the same bag of rows in a compatible
    order.  A disagreement means the dialect adaptation, the schema load, or
    the engine semantics diverged — never a transient condition — so it is
    raised loudly instead of silently preferring either side.

    ``backend`` names the backend, ``stream_label`` the stream (when known),
    and ``detail`` carries a short description of the first difference.
    """

    def __init__(self, message, backend=None, stream_label=None, sql=None,
                 detail=None):
        self.backend = backend
        self.stream_label = stream_label
        self.sql = sql
        self.detail = detail
        super().__init__(message)


class DtdError(ReproError):
    """A DTD could not be parsed."""


class ValidationError(ReproError):
    """An XML document does not conform to its DTD."""
