"""Recursive-descent parser for RXL.

Grammar (see the paper's Fig. 3 for the concrete style)::

    query      ::= 'from' from_list [ 'where' cond_list ] 'construct' element+
    from_list  ::= table var { ',' table var }
    var        ::= '$' IDENT
    cond_list  ::= cond { (',' | 'and') cond }
    cond       ::= operand op operand            op ∈ { = != < <= > >= }
    operand    ::= var '.' IDENT | NUMBER | STRING
    element    ::= '<' TAG [ 'ID' '=' IDENT '(' skolem_args ')' ] '>'
                       content* '</' TAG '>'
    content    ::= element | block | var '.' IDENT | STRING
    block      ::= '{' query '}'
"""

from repro.common.errors import RxlSyntaxError
from repro.rxl.ast import (
    VarField,
    LiteralValue,
    RxlCondition,
    TupleVarDecl,
    TextExpr,
    TextLiteral,
    SkolemSpec,
    RxlElement,
    RxlBlock,
    RxlQuery,
)
from repro.rxl.lexer import tokenize, unescape_string

_CONDITION_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse_rxl(text):
    """Parse RXL source text into an :class:`repro.rxl.ast.RxlQuery`."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def peek(self, offset=1):
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self):
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message):
        token = self.current
        raise RxlSyntaxError(message, line=token.line, column=token.column)

    def expect(self, kind, value=None):
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise RxlSyntaxError(
                f"expected {want!r}, found {token.value or token.kind!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def accept(self, kind, value=None):
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect_eof(self):
        if self.current.kind != "eof":
            self.error(f"unexpected trailing input {self.current.value!r}")

    # -- grammar -------------------------------------------------------------

    def parse_query(self):
        self.expect("keyword", "from")
        froms = self._parse_from_list()
        conditions = []
        if self.accept("keyword", "where"):
            conditions = self._parse_cond_list()
        self.expect("keyword", "construct")
        construct = []
        while self.current.kind == "op" and self.current.value == "<":
            construct.append(self._parse_element())
        if not construct:
            self.error("construct clause must contain at least one element")
        return RxlQuery(froms=froms, conditions=conditions, construct=construct)

    def _parse_from_list(self):
        froms = [self._parse_tuple_var()]
        while self.accept("punct", ","):
            froms.append(self._parse_tuple_var())
        return froms

    def _parse_tuple_var(self):
        table = self.expect("ident").value
        var = self.expect("var").value
        return TupleVarDecl(table=table, var=var)

    def _parse_cond_list(self):
        conditions = [self._parse_condition()]
        while True:
            if self.accept("punct", ",") or self.accept("keyword", "and"):
                conditions.append(self._parse_condition())
            else:
                return conditions

    def _parse_condition(self):
        left = self._parse_operand()
        op_token = self.current
        if op_token.kind != "op" or op_token.value not in _CONDITION_OPS:
            self.error(f"expected comparison operator, found {op_token.value!r}")
        self.advance()
        right = self._parse_operand()
        return RxlCondition(op=op_token.value, left=left, right=right)

    def _parse_operand(self):
        token = self.current
        if token.kind == "var":
            return self._parse_var_field()
        if token.kind == "number":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return LiteralValue(value)
        if token.kind == "string":
            self.advance()
            return LiteralValue(unescape_string(token.value))
        self.error(f"expected $var.field or literal, found {token.value!r}")

    def _parse_var_field(self):
        var = self.expect("var").value
        self.expect("punct", ".")
        field = self._expect_field_name()
        return VarField(var=var, field=field)

    def _expect_field_name(self):
        token = self.current
        if token.kind in ("ident", "keyword"):
            self.advance()
            return token.value
        self.error(f"expected field name, found {token.value!r}")

    def _parse_element(self):
        self.expect("op", "<")
        tag = self.expect("ident").value
        skolem = None
        if self.accept("keyword", "ID"):
            self.expect("op", "=")
            name = self.expect("ident").value
            self.expect("punct", "(")
            args = []
            if not self.accept("punct", ")"):
                args.append(self._parse_var_field())
                while self.accept("punct", ","):
                    args.append(self._parse_var_field())
                self.expect("punct", ")")
            skolem = SkolemSpec(name=name, args=tuple(args))
        self.expect("op", ">")
        contents = []
        while True:
            token = self.current
            if token.kind == "op" and token.value == "<":
                if self.peek().kind == "punct" and self.peek().value == "/":
                    break
                contents.append(self._parse_element())
            elif token.kind == "punct" and token.value == "{":
                self.advance()
                query = self.parse_query()
                self.expect("punct", "}")
                contents.append(RxlBlock(query=query))
            elif token.kind == "var":
                contents.append(TextExpr(self._parse_var_field()))
            elif token.kind == "string":
                self.advance()
                contents.append(TextLiteral(unescape_string(token.value)))
            else:
                self.error(
                    f"unexpected {token.value or token.kind!r} in element content"
                )
        self.expect("op", "<")
        self.expect("punct", "/")
        closing = self.expect("ident").value
        if closing != tag:
            self.error(f"mismatched closing tag </{closing}> for <{tag}>")
        self.expect("op", ">")
        return RxlElement(tag=tag, contents=contents, skolem=skolem)
