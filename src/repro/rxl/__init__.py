"""RXL — the Relational to XML transformation Language (Sec. 2).

RXL combines the extraction part of SQL (``from`` and ``where`` clauses)
with the construction part of XML-QL (the ``construct`` clause): nested
queries build sets of subelements, parallel ``{ ... }`` blocks express
union, and Skolem functions (explicit via ``ID=F($v.attr, ...)`` or
introduced automatically) control element fusion.

The package provides a lexer, a recursive-descent parser producing the AST
in :mod:`repro.rxl.ast`, and a scope/schema validator.
"""

from repro.rxl.ast import (
    VarField,
    LiteralValue,
    RxlCondition,
    TupleVarDecl,
    TextExpr,
    TextLiteral,
    SkolemSpec,
    RxlElement,
    RxlBlock,
    RxlQuery,
)
from repro.rxl.lexer import tokenize, Token
from repro.rxl.parser import parse_rxl
from repro.rxl.validate import validate_rxl

__all__ = [
    "VarField",
    "LiteralValue",
    "RxlCondition",
    "TupleVarDecl",
    "TextExpr",
    "TextLiteral",
    "SkolemSpec",
    "RxlElement",
    "RxlBlock",
    "RxlQuery",
    "tokenize",
    "Token",
    "parse_rxl",
    "validate_rxl",
]
