"""Tokenizer for RXL source text."""

import re
from dataclasses import dataclass

from repro.common.errors import RxlSyntaxError

KEYWORDS = {"from", "where", "construct", "and", "ID"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<var>\$[A-Za-z_][A-Za-z_0-9]*)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[{}().,/\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str      # 'keyword' | 'ident' | 'var' | 'number' | 'string' | 'op' | 'punct' | 'eof'
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text):
    """Tokenize RXL source; ``#`` starts a line comment.  Returns a list of
    :class:`Token` terminated by an ``eof`` token."""
    tokens = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise RxlSyntaxError(
                f"unexpected character {text[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        column = pos - line_start + 1
        kind = match.lastgroup
        value = match.group()
        if kind in ("ws", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rfind("\n") + 1
        elif kind == "number":
            tokens.append(Token("number", value, line, column))
        elif kind == "string":
            tokens.append(Token("string", value, line, column))
        elif kind == "var":
            tokens.append(Token("var", value[1:], line, column))
        elif kind == "ident":
            token_kind = "keyword" if value in KEYWORDS else "ident"
            tokens.append(Token(token_kind, value, line, column))
        elif kind == "op":
            tokens.append(Token("op", value, line, column))
        elif kind == "punct":
            tokens.append(Token("punct", value, line, column))
        pos = match.end()
    tokens.append(Token("eof", "", line, len(text) - line_start + 1))
    return tokens


def unescape_string(raw):
    """Strip quotes and process backslash escapes of a string token."""
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")
