"""Abstract syntax tree for RXL queries."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VarField:
    """``$var.field`` — a column of a tuple variable."""

    var: str
    field: str

    def __str__(self):
        return f"${self.var}.{self.field}"


@dataclass(frozen=True)
class LiteralValue:
    """A constant in a where-clause condition."""

    value: object

    def __str__(self):
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class RxlCondition:
    """One where-clause condition ``left op right``."""

    op: str
    left: object   # VarField | LiteralValue
    right: object  # VarField | LiteralValue

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TupleVarDecl:
    """``Table $var`` in a from clause: $var iterates over Table."""

    table: str
    var: str

    def __str__(self):
        return f"{self.table} ${self.var}"


@dataclass(frozen=True)
class TextExpr:
    """Element content computed from a tuple variable: ``$var.field``."""

    ref: VarField


@dataclass(frozen=True)
class TextLiteral:
    """Constant element content (a quoted string in the construct clause)."""

    text: str


@dataclass(frozen=True)
class SkolemSpec:
    """An explicit Skolem term ``ID=Name($v.a, $w.b, ...)`` on an element.

    Users give these to control element grouping/fusion (Sec. 3.1); when
    absent, the system introduces a Skolem function automatically.
    """

    name: str
    args: tuple  # of VarField


@dataclass
class RxlElement:
    """One XML element template in a construct clause."""

    tag: str
    contents: list = field(default_factory=list)  # RxlElement|RxlBlock|TextExpr|TextLiteral
    skolem: SkolemSpec = None

    def child_elements(self):
        return [c for c in self.contents if isinstance(c, RxlElement)]

    def child_blocks(self):
        return [c for c in self.contents if isinstance(c, RxlBlock)]

    def text_contents(self):
        return [c for c in self.contents if isinstance(c, (TextExpr, TextLiteral))]


@dataclass
class RxlBlock:
    """A nested ``{ from ... where ... construct ... }`` block.

    Parallel blocks inside one element express union; a block's construct
    clause may again contain elements with nested blocks.
    """

    query: "RxlQuery"


@dataclass
class RxlQuery:
    """A (sub)query: from clause, where clause, construct clause.

    The top-level RXL view is an ``RxlQuery``; nested blocks hold their own
    ``RxlQuery`` whose scope extends the enclosing ones.
    """

    froms: list      # of TupleVarDecl
    conditions: list  # of RxlCondition
    construct: list  # of RxlElement (usually exactly one at each level)

    def var_names(self):
        return [decl.var for decl in self.froms]
