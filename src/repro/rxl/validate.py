"""Scope and schema validation of a parsed RXL query.

Checks, against a :class:`repro.relational.schema.DatabaseSchema`:

* every ``from`` clause names an existing table,
* tuple-variable names are unique along any scope chain (a nested block may
  not shadow an enclosing variable — RXL semantics correlate the nested
  query with the enclosing scope, so shadowing would be ambiguous),
* every ``$var.field`` reference resolves to a declared variable (the block
  where it appears or any enclosing block) and an existing column,
* explicit Skolem terms use only in-scope variables, and distinct elements
  using the same Skolem function name agree on argument count.
"""

from repro.common.errors import RxlScopeError
from repro.rxl.ast import (
    VarField,
    LiteralValue,
    TextExpr,
    RxlElement,
    RxlBlock,
)


def validate_rxl(query, schema):
    """Validate ``query`` against ``schema``; raises
    :class:`~repro.common.errors.RxlScopeError` on the first problem.
    Returns the total number of (sub)queries validated."""
    validator = _Validator(schema)
    validator.check_query(query, scope={})
    return validator.queries_checked


class _Validator:
    def __init__(self, schema):
        self.schema = schema
        self.queries_checked = 0
        self.skolem_arity = {}

    def check_query(self, query, scope):
        self.queries_checked += 1
        local_scope = dict(scope)
        for decl in query.froms:
            if not self.schema.has_table(decl.table):
                raise RxlScopeError(f"unknown table {decl.table!r}")
            if decl.var in local_scope:
                raise RxlScopeError(
                    f"tuple variable ${decl.var} is already declared in an "
                    "enclosing scope"
                )
            local_scope[decl.var] = self.schema.table(decl.table)
        for condition in query.conditions:
            self._check_operand(condition.left, local_scope)
            self._check_operand(condition.right, local_scope)
            if isinstance(condition.left, LiteralValue) and isinstance(
                condition.right, LiteralValue
            ):
                raise RxlScopeError(
                    f"condition {condition} compares two literals"
                )
        for element in query.construct:
            self._check_element(element, local_scope)

    def _check_operand(self, operand, scope):
        if isinstance(operand, VarField):
            self._check_var_field(operand, scope)

    def _check_var_field(self, ref, scope):
        table = scope.get(ref.var)
        if table is None:
            raise RxlScopeError(f"undeclared tuple variable ${ref.var}")
        if not table.has_column(ref.field):
            raise RxlScopeError(
                f"table {table.name} (variable ${ref.var}) has no column "
                f"{ref.field!r}"
            )

    def _check_element(self, element, scope):
        if element.skolem is not None:
            arity = len(element.skolem.args)
            known = self.skolem_arity.setdefault(element.skolem.name, arity)
            if known != arity:
                raise RxlScopeError(
                    f"Skolem function {element.skolem.name} used with "
                    f"{arity} argument(s) but previously with {known}"
                )
            for arg in element.skolem.args:
                self._check_var_field(arg, scope)
        for content in element.contents:
            if isinstance(content, TextExpr):
                self._check_var_field(content.ref, scope)
            elif isinstance(content, RxlElement):
                self._check_element(content, scope)
            elif isinstance(content, RxlBlock):
                self.check_query(content.query, scope)
