"""XML-QL queries over virtual RXL views (the paper's Sec. 7 scenario).

    "the outer-union plan may also be appropriate when a user query
    requests only a subset of the XML view, and the result document is
    small.  ...  This scenario is considered in [5], where the XML view of
    the database is virtual, and users query it using XML-QL."

In the virtual-view mode, a user's XML-QL query pattern-matches against
the XML view *without materializing it*: SilkRoute composes the pattern
with the view definition and sends one (usually simple) SQL query to the
RDBMS.  This package implements that mode for a practical XML-QL subset:

* tree patterns with text variables ``$v`` and literal text matches,
* ``where``-clause conditions comparing variables to literals,
* a flat ``construct`` template instantiated once per binding tuple.

Composition (``repro.xmlql.compose``) aligns the pattern with the view
tree by tag, conjoins the matched nodes' datalog rules (correlation comes
from their shared body atoms), pushes the conditions down as filters, and
produces a single relational-algebra query over the base tables.
"""

from repro.xmlql.ast import PatternElement, XmlQlQuery, ConstructNode
from repro.xmlql.parser import parse_xmlql
from repro.xmlql.compose import ComposedQuery, compose
from repro.xmlql.executor import execute_xmlql

__all__ = [
    "PatternElement",
    "XmlQlQuery",
    "ConstructNode",
    "parse_xmlql",
    "ComposedQuery",
    "compose",
    "execute_xmlql",
]
