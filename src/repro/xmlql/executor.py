"""Executing composed XML-QL queries and building the result document."""

from dataclasses import dataclass

from repro.xmlql.ast import ConstructNode, XmlQlQuery
from repro.xmlql.compose import compose
from repro.xmlql.parser import parse_xmlql
from repro.xmlgen.serializer import XmlWriter


@dataclass
class XmlQlResult:
    """An executed XML-QL query: the fragment document plus its cost."""

    xml: str
    bindings: int
    server_ms: float
    transfer_ms: float
    sql: str

    @property
    def total_ms(self):
        return self.server_ms + self.transfer_ms


def execute_xmlql(query, tree, connection, root_tag="result", indent=None):
    """Run an XML-QL query against a *virtual* view.

    ``query`` is XML-QL source text or a parsed
    :class:`~repro.xmlql.ast.XmlQlQuery`; ``tree`` the view's labeled view
    tree.  One SQL query is sent; the construct template is instantiated
    once per binding tuple.
    """
    if isinstance(query, str):
        query = parse_xmlql(query)
    schema = connection.database.schema
    composed = compose(query, tree, schema)

    from repro.relational.sqltext import render_sql

    stream = connection.execute(composed.plan, label="xmlql")
    positions = {
        name: i for i, name in enumerate(composed.column_names)
    }
    writer = XmlWriter(indent=indent)
    if root_tag is not None:
        writer.start_element(root_tag)
    for row in stream:
        values = {
            var: row[positions[column]]
            for var, column in composed.var_columns.items()
        }
        _instantiate(query.construct, values, writer)
    if root_tag is not None:
        writer.end_element(root_tag)
    return XmlQlResult(
        xml=writer.getvalue(),
        bindings=len(stream),
        server_ms=stream.server_ms,
        transfer_ms=stream.transfer_ms,
        sql=render_sql(composed.plan),
    )


def _instantiate(node, values, writer):
    writer.start_element(node.tag)
    for content in node.contents:
        if isinstance(content, ConstructNode):
            _instantiate(content, values, writer)
        elif isinstance(content, tuple) and content[0] == "var":
            value = values.get(content[1])
            if value is not None:
                writer.text(value)
        else:
            writer.text(content)
    writer.end_element(node.tag)
