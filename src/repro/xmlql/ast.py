"""Abstract syntax for the XML-QL subset."""

from dataclasses import dataclass, field


@dataclass
class PatternElement:
    """One element in a ``where`` tree pattern.

    ``text_var`` binds the element's character content to a variable;
    ``text_literal`` requires the content to equal a constant; children
    are sub-patterns that must all match within the element.
    """

    tag: str
    children: list = field(default_factory=list)
    text_var: str = None
    text_literal: str = None

    def variables(self):
        """All variables bound anywhere in this pattern, in order."""
        out = []
        if self.text_var is not None:
            out.append(self.text_var)
        for child in self.children:
            out.extend(child.variables())
        return out


@dataclass(frozen=True)
class VarCondition:
    """A where-clause condition ``$var op literal``."""

    var: str
    op: str
    value: object


@dataclass
class ConstructNode:
    """One element of the construct template.  ``contents`` holds child
    :class:`ConstructNode` instances, variable names (str, prefixed with
    ``$`` in the source), and literal text (plain str)."""

    tag: str
    contents: list = field(default_factory=list)

    def variables(self):
        out = []
        for content in self.contents:
            if isinstance(content, ConstructNode):
                out.extend(content.variables())
            elif isinstance(content, tuple) and content[0] == "var":
                out.append(content[1])
        return out


@dataclass
class XmlQlQuery:
    """A parsed XML-QL query: pattern, conditions, construct template."""

    pattern: PatternElement
    conditions: list  # of VarCondition
    construct: ConstructNode

    def bound_variables(self):
        return self.pattern.variables()
