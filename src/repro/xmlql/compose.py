"""Composition of an XML-QL query with a virtual RXL view.

The pattern tree is aligned with the view tree by tag (each pattern element
must match exactly one view-tree node among its parent match's children);
text variables bind to the matched nodes' displayed columns.  The composed
relational query is the *conjunction of the matched nodes' datalog rules* —
their shared body atoms provide the correlation, exactly as in view-tree
reduction — with the user's conditions pushed down as filters and the head
projected onto the bound variables.

The result is one (usually small) SQL query per user query, instead of
materializing the whole view: the paper's Sec. 7 virtual-view scenario.
"""

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.core.reduction import _combine_rules
from repro.core.sqlgen import rule_to_algebra
from repro.core.viewtree import Stv
from repro.relational.algebra import ColumnRef, Comparison, Literal, Sort


@dataclass
class ComposedQuery:
    """The relational query one XML-QL query composes to."""

    plan: object            # algebra, sorted by the bound variables
    var_columns: dict       # variable name -> output column name
    matched_nodes: tuple    # the view-tree nodes the pattern touched

    @property
    def column_names(self):
        return tuple(c.name for c in self.plan.columns())


def compose(query, tree, schema):
    """Compose ``query`` (an :class:`~repro.xmlql.ast.XmlQlQuery`) with the
    view ``tree``; returns a :class:`ComposedQuery`."""
    matches = []
    bindings = {}     # var -> Stv
    literal_filters = []  # (Stv, value)

    root_node = _match_root(query.pattern, tree)
    _align(query.pattern, root_node, matches, bindings, literal_filters)

    matched_nodes = tuple(
        sorted({node for _, node in matches}, key=lambda n: n.index)
    )
    combined = _combine_rules(matched_nodes)
    ref_of = {stv: ref for stv, ref in combined.head}

    extra_filters = []
    for stv, value in literal_filters:
        extra_filters.append(
            Comparison("=", ColumnRef(ref_of[stv]), Literal(value))
        )
    for condition in query.conditions:
        stv = bindings.get(condition.var)
        if stv is None:
            raise PlanError(
                f"condition on unbound variable ${condition.var}"
            )
        extra_filters.append(
            Comparison(
                condition.op, ColumnRef(ref_of[stv]), Literal(condition.value)
            )
        )

    for var in query.construct.variables():
        if var not in bindings:
            raise PlanError(f"construct uses unbound variable ${var}")

    head = []
    seen = set()
    for var in query.pattern.variables():
        stv = bindings[var]
        if stv not in seen:
            seen.add(stv)
            head.append((stv, ref_of[stv]))
    if not head:
        raise PlanError("the pattern binds no variables")

    body = rule_to_algebra(
        combined, schema, extra_filters=extra_filters, head=head
    )
    plan = Sort(body, [stv.name for stv, _ in head])
    var_columns = {var: bindings[var].name for var in bindings}
    return ComposedQuery(
        plan=plan, var_columns=var_columns, matched_nodes=matched_nodes
    )


def _match_root(pattern, tree):
    """The pattern root may match any view-tree node with its tag (so a
    user can query for <part> fragments directly)."""
    candidates = [node for node in tree.nodes if node.tag == pattern.tag]
    if not candidates:
        raise PlanError(f"the view has no <{pattern.tag}> element")
    if len(candidates) > 1:
        raise PlanError(
            f"ambiguous pattern root <{pattern.tag}>: matches "
            + ", ".join(n.sfi for n in candidates)
        )
    return candidates[0]


def _align(pattern, node, matches, bindings, literal_filters):
    matches.append((pattern, node))
    if pattern.text_var is not None or pattern.text_literal is not None:
        stv = _content_stv(node)
        if pattern.text_var is not None:
            existing = bindings.get(pattern.text_var)
            if existing is not None and existing is not stv:
                raise PlanError(
                    f"variable ${pattern.text_var} bound at two different "
                    "elements"
                )
            bindings[pattern.text_var] = stv
        else:
            literal_filters.append((stv, pattern.text_literal))
    for child_pattern in pattern.children:
        child_nodes = [
            c for c in node.children if c.tag == child_pattern.tag
        ]
        if not child_nodes:
            raise PlanError(
                f"<{node.tag}> has no <{child_pattern.tag}> child in the view"
            )
        if len(child_nodes) > 1:
            raise PlanError(
                f"ambiguous child <{child_pattern.tag}> under <{node.tag}>"
            )
        _align(child_pattern, child_nodes[0], matches, bindings,
               literal_filters)


def _content_stv(node):
    content_stvs = [c for c in node.contents if isinstance(c, Stv)]
    if len(content_stvs) != 1:
        raise PlanError(
            f"<{node.tag}> does not carry exactly one text value; cannot "
            "bind a variable to it"
        )
    return content_stvs[0]
