"""Parser for the XML-QL subset, reusing the RXL lexer.

Grammar::

    query      ::= 'where' pattern { ',' condition } 'construct' element
    pattern    ::= '<' TAG '>' ( '$' VAR | STRING | pattern* ) '</' TAG '>'
    condition  ::= '$' VAR op literal          op ∈ { = != < <= > >= }
    element    ::= '<' TAG '>' ( element | '$' VAR | STRING )* '</' TAG '>'

Example::

    where <supplier>
            <name>$s</name>
            <part><pname>$p</pname></part>
          </supplier>,
          $s = "Supplier#000003"
    construct <stocked><who>$s</who><what>$p</what></stocked>
"""

from repro.common.errors import RxlSyntaxError
from repro.rxl.lexer import tokenize, unescape_string
from repro.xmlql.ast import (
    ConstructNode,
    PatternElement,
    VarCondition,
    XmlQlQuery,
)

_CONDITION_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse_xmlql(text):
    """Parse an XML-QL query."""
    parser = _Parser(tokenize(text))
    query = parser.parse()
    return query


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    @property
    def current(self):
        return self.tokens[self.index]

    def peek(self, offset=1):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message):
        token = self.current
        raise RxlSyntaxError(message, line=token.line, column=token.column)

    def expect(self, kind, value=None):
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            self.error(f"expected {value or kind!r}, found {token.value!r}")
        return self.advance()

    def accept(self, kind, value=None):
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self):
        self.expect("keyword", "where")
        pattern = self._parse_pattern()
        conditions = []
        while self.accept("punct", ",") or self.accept("keyword", "and"):
            conditions.append(self._parse_condition())
        self.expect("keyword", "construct")
        construct = self._parse_construct()
        if self.current.kind != "eof":
            self.error(f"unexpected trailing input {self.current.value!r}")
        return XmlQlQuery(
            pattern=pattern, conditions=conditions, construct=construct
        )

    def _parse_pattern(self):
        self.expect("op", "<")
        tag = self.expect("ident").value
        self.expect("op", ">")
        element = PatternElement(tag=tag)
        while True:
            token = self.current
            if token.kind == "op" and token.value == "<":
                if self.peek().kind == "punct" and self.peek().value == "/":
                    break
                element.children.append(self._parse_pattern())
            elif token.kind == "var":
                if element.text_var or element.text_literal:
                    self.error(f"<{tag}> already has text content")
                element.text_var = self.advance().value
            elif token.kind == "string":
                if element.text_var or element.text_literal:
                    self.error(f"<{tag}> already has text content")
                element.text_literal = unescape_string(self.advance().value)
            else:
                self.error(
                    f"unexpected {token.value or token.kind!r} in pattern"
                )
        self._expect_closing(tag)
        return element

    def _parse_condition(self):
        var = self.expect("var").value
        op_token = self.current
        if op_token.kind != "op" or op_token.value not in _CONDITION_OPS:
            self.error(f"expected comparison operator, found {op_token.value!r}")
        self.advance()
        token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
        elif token.kind == "string":
            self.advance()
            value = unescape_string(token.value)
        else:
            self.error(f"expected literal, found {token.value!r}")
        return VarCondition(var=var, op=op_token.value, value=value)

    def _parse_construct(self):
        self.expect("op", "<")
        tag = self.expect("ident").value
        self.expect("op", ">")
        node = ConstructNode(tag=tag)
        while True:
            token = self.current
            if token.kind == "op" and token.value == "<":
                if self.peek().kind == "punct" and self.peek().value == "/":
                    break
                node.contents.append(self._parse_construct())
            elif token.kind == "var":
                node.contents.append(("var", self.advance().value))
            elif token.kind == "string":
                node.contents.append(unescape_string(self.advance().value))
            else:
                self.error(
                    f"unexpected {token.value or token.kind!r} in construct"
                )
        self._expect_closing(tag)
        return node

    def _expect_closing(self, tag):
        self.expect("op", "<")
        self.expect("punct", "/")
        closing = self.expect("ident").value
        if closing != tag:
            self.error(f"mismatched closing tag </{closing}> for <{tag}>")
        self.expect("op", ">")
