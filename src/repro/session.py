"""One client facade over the whole execution surface.

Historically each capability grew its own entry point: materialization
lived on :class:`~repro.core.silkroute.XmlView`, sweeps in
:func:`repro.bench.sweep.sweep_partitions`, mutations in ad-hoc driver
code (the CLI's delta synthesizer).  :class:`Session` consolidates them
behind one object with one return type::

    from repro import Session

    session = Session()                       # Configuration-A TPC-H
    result = session.materialize(RXL_TEXT, indent=2)
    print(result.xml)
    session.mutate("Nation", op="insert", rows=2)
    result = session.materialize(RXL_TEXT, indent=2)   # incremental

Every query method returns a :class:`QueryResult` — XML (when the method
produces a document), the :class:`~repro.core.silkroute.PlanReport`,
generated SQL, sweep series, and a ``stats`` dict of cache counters —
so callers switch between ``materialize``/``explain``/``sweep`` without
re-learning a result shape.

A session owns one :class:`~repro.core.silkroute.SilkRoute` (or wraps
one you built) and caches the parsed :class:`XmlView` per RXL text, so
repeated queries share planners, splice caches, and finished-document
caches.  Default :class:`~repro.core.options.ExecutionOptions` given at
construction apply to every call; per-call ``options=`` or explicit
keywords override them.

The serving layer (:mod:`repro.serve`) runs one shared ``Session`` for
all tenants — the per-RXL view cache is exactly what makes its result
reuse and request coalescing process-wide.
"""

from dataclasses import dataclass, field

from repro.core.options import ExecutionOptions, RequestContext  # noqa: F401
from repro.core.silkroute import SilkRoute


@dataclass
class QueryResult:
    """The one result type of every :class:`Session` query method.

    Which fields are populated depends on the method:

    ========================  =======================================
    method                    populated fields
    ========================  =======================================
    :meth:`Session.materialize`     ``xml``, ``report``, ``tagger``, ``stats``
    :meth:`Session.materialize_to`  ``report``, ``tagger``, ``stats`` (the
                                    document went to the caller's sink)
    :meth:`Session.explain`         ``sql``
    :meth:`Session.sweep`           ``sweep``, ``stats``
    :meth:`Session.mutate`          ``mutated``, ``table``, ``stats``
    ========================  =======================================

    ``stats`` carries point-in-time cache counters (plan / document /
    splice caches) plus, for served requests, the coalescing counters;
    ``coalesced`` is True when the serving layer satisfied this request
    from another identical in-flight request's execution.
    """

    xml: str = None
    report: object = None
    sql: tuple = ()
    sweep: object = None
    stats: dict = field(default_factory=dict)
    coalesced: bool = False
    mutated: int = None
    table: str = None
    tagger: object = None

    @property
    def query_ms(self):
        """The report's simulated server milliseconds (None without one)."""
        return self.report.query_ms if self.report is not None else None

    @property
    def transfer_ms(self):
        """The report's simulated transfer milliseconds (None without one)."""
        return self.report.transfer_ms if self.report is not None else None


def apply_delta(database, table_name, op="insert", rows=1, seed=0):
    """Apply a synthesized ``op`` delta of ``rows`` rows to ``table_name``;
    returns the affected-row count.

    Deterministic given ``seed`` and the database's current contents:
    ``insert`` synthesizes schema- and foreign-key-consistent rows,
    ``delete`` removes the last ``rows`` rows by key, and ``update``
    perturbs the first non-key, non-foreign-key column of the first
    ``rows`` rows (keys and join columns stay put, so the delta changes
    content without re-wiring views).  This is the mutation primitive
    behind :meth:`Session.mutate` and the CLI's ``mutate`` command.
    """
    import datetime

    from repro.common.errors import SchemaError
    from repro.relational.database import synthesize_rows

    table = database.table(table_name)
    schema = table.schema
    if op == "insert":
        new_rows = synthesize_rows(database, table_name, rows, seed=seed)
        for row in new_rows:
            database.insert(table_name, *row)
        return len(new_rows)
    positions = [schema.column_index(k) for k in schema.key]
    if op == "delete":
        victims = {
            tuple(row[p] for p in positions) for row in table.rows[-rows:]
        }
        return database.delete(
            table_name,
            lambda row: tuple(row[k] for k in schema.key) in victims,
        )
    if op != "update":
        raise ValueError(f"unknown mutation op {op!r} "
                         "(expected insert, update, or delete)")
    targets = {
        tuple(row[p] for p in positions) for row in table.rows[:rows]
    }
    key_names = set(schema.key)
    fk_names = {
        column
        for fk in database.schema.foreign_keys
        if fk.table == table_name
        for column in fk.columns
    }
    column = next(
        (c for c in schema.columns
         if c.name not in key_names and c.name not in fk_names),
        None,
    )
    if column is None:
        raise SchemaError(
            f"{table_name} has no updatable (non-key, non-foreign-key) column"
        )

    def bump(row):
        value = row[column.name]
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, (int, float)):
            return value + 1
        if isinstance(value, datetime.date):
            return value + datetime.timedelta(days=1)
        return f"updated-{seed}-{row[schema.key[0]]}"

    return database.update(
        table_name,
        lambda row: tuple(row[k] for k in schema.key) in targets,
        {column.name: bump},
    )


class Session:
    """A client session: parsed-view cache + default options + one
    result type.

    ``db`` may be

    * None — build the paper's Configuration-A TPC-H database
      (deterministic seed, same as the CLI),
    * a :class:`~repro.relational.database.Database`,
    * a :class:`~repro.relational.connection.Connection`, or
    * a :class:`~repro.core.silkroute.SilkRoute` (wrapped as is;
      ``cache``/``estimator``/``source`` must then be left at their
      defaults).

    ``options`` (an :class:`~repro.core.options.ExecutionOptions`) sets
    session-wide defaults; each call's ``options=``/keywords override.
    ``cache=True`` (the default) installs a shared
    :class:`~repro.relational.cache.PlanResultCache`, which also enables
    the per-view splice and finished-document caches — the incremental
    path.  ``document_cache_bytes`` bounds each view's finished-document
    cache by total XML size (LRU).

    ``wal`` makes the session durable: a directory path (or an existing
    :class:`~repro.relational.wal.WriteAheadLog`) the database commits
    every mutation through.  When the directory already holds state from
    a previous run, the session *recovers it on construction* — tables,
    generation counters, and the request-dedup map come back exactly as
    committed, and :attr:`recovery` carries the
    :class:`~repro.relational.wal.RecoveryReport`.  ``checkpoint_every``
    snapshots + truncates the log after every N commit records.  Both
    default from ``options.wal_path`` / ``options.checkpoint_every``.
    """

    def __init__(self, db=None, options=None, cache=True, estimator=None,
                 source=None, document_cache_bytes=None, wal=None,
                 checkpoint_every=None):
        self.options = options
        self.document_cache_bytes = document_cache_bytes
        self._views = {}
        self._silkroute = self._resolve(db, cache, estimator, source)
        if wal is None and options is not None:
            wal = options.wal_path
        if checkpoint_every is None and options is not None:
            checkpoint_every = options.checkpoint_every
        self.wal = None
        self.recovery = None
        if wal is not None:
            from repro.relational.wal import WriteAheadLog

            if not isinstance(wal, WriteAheadLog):
                wal = WriteAheadLog(wal, checkpoint_every=checkpoint_every)
            elif checkpoint_every is not None:
                wal.checkpoint_every = checkpoint_every
            self.wal = wal
            self.recovery = wal.attach(self.database)

    @staticmethod
    def _resolve(db, cache, estimator, source):
        if isinstance(db, SilkRoute):
            return db
        if db is None:
            from repro.tpch.configs import CONFIG_A, build_configuration

            _, connection, built_estimator = build_configuration(CONFIG_A)
            return SilkRoute(
                connection, estimator=estimator or built_estimator,
                cache=cache, source=source,
            )
        from repro.relational.connection import Connection

        if isinstance(db, Connection):
            connection = db
        else:
            from repro.relational.engine import CostModel

            connection = Connection(db, CostModel())
        if estimator is None:
            from repro.relational.estimator import CostEstimator

            estimator = CostEstimator(
                connection.database, connection.engine.cost_model,
            )
        return SilkRoute(
            connection, estimator=estimator, cache=cache, source=source,
        )

    # -- plumbing ----------------------------------------------------------

    @property
    def silkroute(self):
        """The underlying :class:`~repro.core.silkroute.SilkRoute`."""
        return self._silkroute

    @property
    def connection(self):
        return self._silkroute.connection

    @property
    def database(self):
        return self._silkroute.connection.database

    def view(self, query):
        """The parsed :class:`~repro.core.silkroute.XmlView` for ``query``
        (RXL text or an already-defined view), cached per RXL text."""
        if isinstance(query, str):
            view = self._views.get(query)
            if view is None:
                view = self._silkroute.define_view(query)
                if self.document_cache_bytes is not None:
                    view.document_cache.max_bytes = self.document_cache_bytes
                self._views[query] = view
            return view
        return query  # an XmlView (or duck-typed equivalent)

    def _options(self, options):
        return options if options is not None else self.options

    def _stats(self, view=None):
        stats = {}
        cache = self._silkroute.cache
        if cache is not None:
            stats["plan_cache"] = cache.stats().as_dict()
        if view is not None:
            stats["document_cache"] = view.document_cache.stats()
            stats["splice_cache"] = view.instance_cache.stats()
        return stats

    # -- queries -----------------------------------------------------------

    def materialize(self, query, partition=None, root_tag="view",
                    indent=None, greedy_params=None, options=None,
                    **overrides):
        """Materialize ``query`` as XML; returns a :class:`QueryResult`
        with ``xml``, ``report``, ``tagger``, and cache ``stats``.

        ``partition`` selects the plan (None runs the greedy planner;
        the strings ``"unified"``/``"fully-partitioned"`` pick the
        endpoints).  Execution knobs come from ``options`` (falling back
        to the session defaults) with explicit keyword ``overrides``
        winning, e.g. ``session.materialize(q, workers=4)``.
        """
        view = self.view(query)
        result = view.materialize(
            partition, root_tag=root_tag, indent=indent,
            greedy_params=greedy_params, options=self._options(options),
            **overrides,
        )
        return QueryResult(
            xml=result.xml, report=result.report, tagger=result.tagger,
            stats=self._stats(view),
        )

    def materialize_to(self, query, sink, partition=None, root_tag="view",
                       indent=None, greedy_params=None, options=None,
                       **overrides):
        """Stream ``query``'s document into ``sink`` (a ``write``-able)
        in bounded memory; returns a :class:`QueryResult` whose ``xml``
        is None — the document went to the sink."""
        view = self.view(query)
        result = view.materialize_to(
            sink, partition, root_tag=root_tag, indent=indent,
            greedy_params=greedy_params, options=self._options(options),
            **overrides,
        )
        return QueryResult(
            report=result.report, tagger=result.tagger,
            stats=self._stats(view),
        )

    def explain(self, query, partition=None, options=None, **overrides):
        """The SQL a plan would send, without executing it; returns a
        :class:`QueryResult` whose ``sql`` is the tuple of statements."""
        view = self.view(query)
        sqls = view.explain(
            partition, options=self._options(options), **overrides,
        )
        return QueryResult(sql=tuple(sqls))

    def sweep(self, query, partitions=None, progress=None, cache=True,
              stream_workers=None, options=None, **overrides):
        """Execute every plan of ``query`` (or the given ``partitions``);
        returns a :class:`QueryResult` whose ``sweep`` is the
        :class:`~repro.bench.sweep.SweepResult`."""
        view = self.view(query)
        sweep = _sweep_partitions(
            view.tree, self._silkroute.schema, self.connection,
            partitions=partitions, progress=progress, cache=cache,
            stream_workers=stream_workers, options=self._options(options),
            **overrides,
        )
        stats = self._stats()
        if sweep.cache_stats is not None:
            stats["sweep_cache"] = sweep.cache_stats.as_dict()
        return QueryResult(sweep=sweep, stats=stats)

    def mutate(self, table, op="insert", rows=1, seed=0, request_id=None):
        """Apply a synthesized delta to base table ``table`` (see
        :func:`apply_delta`); returns a :class:`QueryResult` with the
        affected-row count and the table's new generation in ``stats``.

        Mutations bump the table's generation, which moves every
        dependent cache key — the next materialization of an affected
        view re-executes only what the delta touched.

        With a :attr:`wal` attached the whole delta commits as ONE
        durable record, and ``request_id`` makes it **exactly-once**: a
        repeat of an already-committed id returns the recorded result
        without touching the database — across process restarts too,
        since the dedup map lives in the log.
        """
        if self.wal is not None:
            if request_id is not None:
                recorded = self.wal.request_result(request_id)
                if recorded is not None:
                    stats = self._stats()
                    stats["generation"] = recorded["generation"]
                    stats["deduplicated"] = True
                    return QueryResult(
                        mutated=recorded["mutated"],
                        table=recorded["table"], stats=stats,
                    )
            with self.database.transaction(request_id) as txn:
                changed = apply_delta(self.database, table, op=op,
                                      rows=rows, seed=seed)
                txn.result = {
                    "mutated": changed, "table": table,
                    "generation": self.database.table(table).version,
                }
        else:
            changed = apply_delta(self.database, table, op=op, rows=rows,
                                  seed=seed)
        stats = self._stats()
        stats["generation"] = self.database.table(table).version
        return QueryResult(mutated=changed, table=table, stats=stats)


def _sweep_partitions(tree, schema, connection, **kwargs):
    """The sweep engine behind :meth:`Session.sweep` and the deprecated
    module-level :func:`repro.bench.sweep.sweep_partitions`."""
    from repro.bench import sweep as _sweep_module

    return _sweep_module._sweep_partitions(tree, schema, connection, **kwargs)
