"""Structured tracing: nested spans over the wall and simulated clocks.

The execution pipeline (plan → reduce → sqlgen → dispatch → per-stream
execution → merge → tag) is instrumented with *spans*: named, attributed
intervals that nest into a tree.  A span records

* the **wall clock** (``time.perf_counter``) — when the harness actually
  entered and left the stage, the only non-deterministic part of a trace;
* the **simulated clock** (``sim_ms``) — the deterministic simulated
  duration the stage charged (per-stream ``server_ms + transfer_ms``,
  retry backoff, injected fault latency), set explicitly by the
  instrumentation because simulated time is an accounting construct, not
  something a clock can observe;
* **attributes** (``attrs``) and point-in-time **events** — retries,
  fault draws, cache replays, degradations.

Span nesting follows the *logical* structure, not the thread structure:
:meth:`Tracer.span` maintains a per-thread current-span stack, and the
concurrent dispatcher passes the submitting thread's current span as the
explicit ``parent`` when it fans streams out to a pool, so a worker
thread's ``stream:<label>`` span still hangs under the ``dispatch`` span
that scheduled it.  All tree mutation is lock-protected; spans from any
number of worker threads may attach concurrently.

The **no-overhead-when-off contract**: every instrumentation point in the
library defaults to :data:`NULL_TRACER`, whose :meth:`~NullTracer.span`
returns one shared no-op context manager and allocates nothing.  No
instrumentation is per-row — spans and events are per stage and per
stream — so the tracing-off hot path costs a handful of attribute reads
per materialization (asserted < 2% by ``benchmarks/test_obs.py``).
"""

import threading
import time


class Span:
    """One traced interval: a node of the trace tree.

    ``wall_start_s``/``wall_end_s`` are ``time.perf_counter`` readings
    (``wall_end_s`` is None while the span is open); ``sim_ms`` is the
    simulated duration attributed to the span (None when the stage has no
    simulated cost).  ``attrs`` may be amended after the span closes (via
    :meth:`set`) — e.g. the dispatch span learns its simulated makespan
    only when the report is assembled.
    """

    __slots__ = ("name", "attrs", "children", "events", "wall_start_s",
                 "wall_end_s", "sim_ms", "thread_id", "_tracer")

    def __init__(self, name, attrs, tracer, thread_id):
        self.name = name
        self.attrs = attrs
        self.children = []
        self.events = []
        self.wall_start_s = time.perf_counter()
        self.wall_end_s = None
        self.sim_ms = None
        self.thread_id = thread_id
        self._tracer = tracer

    # -- recording ---------------------------------------------------------

    def set(self, **attrs):
        """Merge attributes into the span (allowed after close)."""
        self.attrs.update(attrs)
        return self

    def set_sim(self, ms):
        """Attribute ``ms`` simulated milliseconds to this span."""
        self.sim_ms = ms
        return self

    def event(self, name, **attrs):
        """Record a point-in-time event (a zero-duration mark) on the span."""
        self.events.append(SpanEvent(name, time.perf_counter(), attrs))

    # -- reading -----------------------------------------------------------

    @property
    def wall_ms(self):
        """Wall duration in ms (up to now while the span is open)."""
        end = self.wall_end_s
        if end is None:
            end = time.perf_counter()
        return (end - self.wall_start_s) * 1e3

    def walk(self):
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """Every descendant-or-self span with the given name, or whose name
        starts with ``name + ":"`` (so ``find("stream")`` matches every
        ``stream:<label>`` span)."""
        prefix = name + ":"
        return [s for s in self.walk()
                if s.name == name or s.name.startswith(prefix)]

    # -- context management ------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.wall_end_s = time.perf_counter()
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def __repr__(self):
        state = "open" if self.wall_end_s is None else f"{self.wall_ms:.2f}ms"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class SpanEvent:
    """A zero-duration mark inside a span (a retry, a fault draw, ...)."""

    __slots__ = ("name", "wall_s", "attrs")

    def __init__(self, name, wall_s, attrs):
        self.name = name
        self.wall_s = wall_s
        self.attrs = attrs

    def __repr__(self):
        return f"SpanEvent({self.name!r}, {self.attrs})"


class Tracer:
    """Collects a forest of spans, thread-safely.

    Use as::

        tracer = Tracer()
        with tracer.span("dispatch", workers=4) as span:
            ...
            span.event("degrade", label="S1.4")

    Spans opened on the same thread nest under the thread's innermost open
    span; a worker thread adopts a submitting thread's span by passing it
    as ``parent=`` (see :func:`repro.relational.dispatch.execute_specs`).
    Spans with no parent become roots of :attr:`roots`.
    """

    enabled = True

    def __init__(self):
        self.roots = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name, parent=None, **attrs):
        """Open a span (a context manager).  ``parent`` overrides the
        thread-local current span — the cross-thread propagation hook."""
        span = Span(name, attrs, self, threading.get_ident())
        if parent is None:
            parent = self.current()
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        stack = self._stack()
        stack.append(span)
        return span

    def current(self):
        """The innermost open span on *this* thread (or None)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return None

    def event(self, name, **attrs):
        """Record an event on the current span (dropped when no span is
        open — events always belong to a stage)."""
        span = self.current()
        if span is not None:
            span.event(name, **attrs)

    def walk(self):
        """Every span of every root, depth-first."""
        for root in list(self.roots):
            yield from root.walk()

    def find(self, name):
        """Every recorded span matching ``name`` (see :meth:`Span.find`)."""
        prefix = name + ":"
        return [s for s in self.walk()
                if s.name == name or s.name.startswith(prefix)]

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _pop(self, span):
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:   # unwound out of order (error paths)
            stack.remove(span)

    def __repr__(self):
        return f"Tracer({len(self.roots)} root span(s))"


class _NullSpan:
    """The shared do-nothing span: every method is a no-op, entering it
    yields itself.  One instance serves the whole process."""

    __slots__ = ()

    name = None
    attrs = {}
    children = ()
    events = ()
    sim_ms = None

    def set(self, **attrs):
        return self

    def set_sim(self, ms):
        return self

    def event(self, name, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "<null span>"


#: The process-wide no-op span returned by :data:`NULL_TRACER`.
NULL_SPAN = _NullSpan()


class _NullTracer:
    """The disabled tracer: the default at every instrumentation point.
    Allocates nothing and records nothing — the tracing-off hot path."""

    __slots__ = ()

    enabled = False
    roots = ()

    def span(self, name, parent=None, **attrs):
        return NULL_SPAN

    def current(self):
        return None

    def event(self, name, **attrs):
        pass

    def walk(self):
        return iter(())

    def find(self, name):
        return []

    def __repr__(self):
        return "<null tracer>"


#: The process-wide disabled tracer (tracing off).
NULL_TRACER = _NullTracer()
