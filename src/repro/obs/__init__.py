"""Observability: structured tracing, metrics, and exportable profiles.

The paper's whole argument (Figs. 13–18) rests on knowing *where time
goes* — query vs. transfer vs. tagging, per decomposition.  This package
makes that visible for any execution, not just the benchmark sweeps:

* :mod:`repro.obs.tracer` — nested spans over the wall and simulated
  clocks, propagated across the concurrent dispatcher's worker threads;
* :mod:`repro.obs.metrics` — counters/gauges/histograms snapshotable as a
  plain dict;
* :mod:`repro.obs.export` — Chrome-trace JSON (``about:tracing`` /
  Perfetto), a human-readable profile tree, and a JSON metrics dump.

One :class:`ObsOptions` object is an observability *session*: build one,
put it in the frozen :class:`~repro.core.options.ExecutionOptions`, run,
then export::

    from repro import ExecutionOptions, ObsOptions

    obs = ObsOptions()
    result = view.materialize(options=ExecutionOptions(obs=obs))
    open("trace.json", "w").write(obs.chrome_trace_json())
    print(obs.profile())
    print(obs.metrics_snapshot()["counters"]["dispatch.attempts"])

Span taxonomy (see DESIGN.md §9): operation roots ``materialize`` /
``materialize_to`` / ``sweep``; stages ``plan``, ``reduce``, ``sqlgen``,
``dispatch``, ``stream:<label>``, ``retry``, ``cache``, ``merge``,
``tag``; sweeps add one ``partition`` span per plan.

Tracing defaults **off** everywhere: when no session is supplied the
instrumentation points resolve to the process-wide no-op
:data:`~repro.obs.tracer.NULL_TRACER` / :data:`~repro.obs.metrics.NULL_METRICS`
(see :func:`obs_parts`), no instrumentation is per-row, and — the
contract the observability tests pin down — with tracing *on* the XML
output and every simulated timing are byte-identical to a tracing-off
run.  Observation never perturbs the simulation.
"""

from dataclasses import dataclass

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    profile_tree,
)
from repro.obs.metrics import NULL_METRICS, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, SpanEvent, Tracer


@dataclass(frozen=True)
class ObsSnapshot:
    """A frozen export of one session: the root spans recorded so far plus
    a point-in-time metrics dict."""

    trace: tuple   # of Span roots
    metrics: dict  # MetricsRegistry.snapshot()


class ObsOptions:
    """One observability session: a tracer plus a metrics registry.

    ``trace=False`` / ``metrics=False`` disable either half individually
    (the disabled half is the shared null object).  The session object is
    intentionally *mutable* — it accumulates spans and counters as
    executions run — while remaining safe to embed in the frozen, hashable
    :class:`~repro.core.options.ExecutionOptions` (sessions hash by
    identity and never compare equal unless identical).

    Reusing one session across several executions accumulates; reports
    attach the live session (:attr:`PlanReport.obs
    <repro.core.silkroute.PlanReport.obs>`), so snapshot when you need a
    frozen view.
    """

    def __init__(self, trace=True, metrics=True):
        self.tracer = Tracer() if trace else NULL_TRACER
        self.metrics = MetricsRegistry() if metrics else NULL_METRICS

    @property
    def enabled(self):
        return self.tracer.enabled or self.metrics.enabled

    # -- exports -----------------------------------------------------------

    def chrome_trace(self):
        """The recorded spans as Chrome Trace Event dicts."""
        return chrome_trace(self.tracer)

    def chrome_trace_json(self):
        """The recorded spans as a Chrome-trace JSON string (loadable in
        ``about:tracing`` / Perfetto)."""
        return chrome_trace_json(self.tracer)

    def profile(self):
        """The recorded spans as an indented text profile tree."""
        return profile_tree(self.tracer)

    def metrics_snapshot(self):
        """The metrics registry as a plain nested dict."""
        return self.metrics.snapshot()

    def snapshot(self):
        """A frozen :class:`ObsSnapshot` of the session so far."""
        return ObsSnapshot(
            trace=tuple(self.tracer.roots), metrics=self.metrics_snapshot()
        )

    def __repr__(self):
        return f"ObsOptions(tracer={self.tracer!r}, metrics={self.metrics!r})"


def obs_parts(obs):
    """Resolve an optional session to its ``(tracer, metrics)`` pair.

    The one idiom every instrumentation point uses::

        tracer, metrics = obs_parts(opts.obs)

    ``None`` (tracing off — the default everywhere) yields the shared
    null objects, keeping the off path allocation-free.
    """
    if obs is None:
        return NULL_TRACER, NULL_METRICS
    return obs.tracer, obs.metrics


__all__ = [
    "ObsOptions",
    "ObsSnapshot",
    "obs_parts",
    "Tracer",
    "Span",
    "SpanEvent",
    "NULL_TRACER",
    "NULL_SPAN",
    "MetricsRegistry",
    "Histogram",
    "NULL_METRICS",
    "chrome_trace",
    "chrome_trace_json",
    "profile_tree",
    "metrics_json",
]
