"""Exporters: Chrome-trace JSON, a human-readable profile tree, metrics JSON.

Three ways out of an observability session:

* :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome Trace
  Event Format (JSON array of ``ph: "X"`` complete events plus ``ph: "i"``
  instants and thread-name metadata), loadable in ``about:tracing`` or
  https://ui.perfetto.dev.  Spans are laid out on the wall clock (the only
  clock a timeline viewer can render); each event's ``args`` carry the
  span's attributes plus its simulated duration (``sim_ms``), so the
  deterministic accounting is one click away on every slice.
* :func:`profile_tree` — an indented text rendering of the span forest
  with wall and simulated durations, for terminals and logs.
* :func:`metrics_json` — the registry snapshot as a JSON document.
"""

import json


def chrome_trace(tracer, pid=0):
    """The tracer's span forest as a list of Chrome Trace Event dicts.

    Wall times become microsecond ``ts``/``dur`` relative to the earliest
    recorded span; each OS thread that recorded spans gets its own ``tid``
    (numbered in order of first appearance) and a thread-name metadata
    event.  Span events are emitted as instant events on the same thread.
    A still-open span is exported with the forest's latest known timestamp
    as its end.
    """
    spans = list(tracer.walk())
    if not spans:
        return []
    t0 = min(s.wall_start_s for s in spans)
    latest = max(
        s.wall_end_s if s.wall_end_s is not None else s.wall_start_s
        for s in spans
    )
    tids = {}
    events = []
    for span in spans:
        tid = tids.setdefault(span.thread_id, len(tids))
        end = span.wall_end_s if span.wall_end_s is not None else latest
        args = dict(span.attrs)
        if span.sim_ms is not None:
            args["sim_ms"] = round(span.sim_ms, 3)
        events.append({
            "name": span.name,
            "cat": span.name.split(":", 1)[0],
            "ph": "X",
            "ts": round((span.wall_start_s - t0) * 1e6, 3),
            "dur": round(max(end - span.wall_start_s, 0.0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": f"{span.name}/{event.name}",
                "cat": event.name,
                "ph": "i",
                "s": "t",
                "ts": round((event.wall_s - t0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": dict(event.attrs),
            })
    for thread_id, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"thread-{tid} (ident {thread_id})"},
        })
    return events


def chrome_trace_json(tracer, pid=0):
    """:func:`chrome_trace` serialized as a JSON array string."""
    return json.dumps(chrome_trace(tracer, pid=pid), default=_jsonable)


def profile_tree(tracer, attr_limit=4):
    """The span forest as indented text: one line per span with wall and
    simulated durations, leading attributes, and event summaries."""
    lines = []
    for root in tracer.roots:
        _render(root, "", lines, attr_limit)
    return "\n".join(lines)


def _render(span, indent, lines, attr_limit):
    parts = [f"{indent}{span.name}"]
    parts.append(f"wall {span.wall_ms:.1f}ms")
    if span.sim_ms is not None:
        parts.append(f"sim {span.sim_ms:.1f}ms")
    if span.attrs:
        shown = list(span.attrs.items())[:attr_limit]
        rendered = ", ".join(f"{k}={_short(v)}" for k, v in shown)
        if len(span.attrs) > attr_limit:
            rendered += ", ..."
        parts.append(f"[{rendered}]")
    if span.events:
        names = {}
        for event in span.events:
            names[event.name] = names.get(event.name, 0) + 1
        parts.append(
            "events: " + ", ".join(
                f"{name} x{n}" if n > 1 else name
                for name, n in names.items()
            )
        )
    lines.append("  ".join(parts))
    for child in span.children:
        _render(child, indent + "  ", lines, attr_limit)


def metrics_json(registry, indent=2):
    """The registry snapshot as a JSON document string."""
    return json.dumps(registry.snapshot(), indent=indent, default=_jsonable)


def _short(value):
    text = str(value)
    if len(text) > 40:
        text = text[:37] + "..."
    return text


def _jsonable(value):
    """Fallback serializer for attribute values that are not JSON types."""
    return str(value)
