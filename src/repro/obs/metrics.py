"""Metrics: counters, gauges, and histograms with a dict snapshot.

A :class:`MetricsRegistry` is the quantitative half of an observability
session (:class:`~repro.obs.ObsOptions`): while the tracer records *where
time went*, the registry accumulates *how much happened* — attempts,
retries, faults injected, tuples transferred, bytes tagged, per-stream
query/transfer milliseconds.

Three instrument kinds, all created on first use by name:

* **counters** (:meth:`MetricsRegistry.inc`) — monotone sums; values may
  be fractional (``retry.backoff_ms`` accumulates simulated milliseconds),
* **gauges** (:meth:`MetricsRegistry.gauge`) — last-write-wins readings
  (e.g. plan-cache occupancy),
* **histograms** (:meth:`MetricsRegistry.observe`) — count/sum/min/max
  summaries of per-stream distributions.

Everything is lock-protected (one registry serves a concurrent dispatch)
and :meth:`~MetricsRegistry.snapshot` returns a plain nested dict that is
``json.dumps``-able as is.

The registry's counters are recorded from the *same*
:class:`~repro.relational.faults.StreamAttemptStats` objects the plan
report sums (see :meth:`StreamAttemptStats.record
<repro.relational.faults.StreamAttemptStats.record>`), each exactly once
— which is what makes the snapshot reconcile with
:class:`~repro.core.silkroute.PlanReport` fields without double counting.

:data:`NULL_METRICS` is the disabled registry (the default at every
instrumentation point): every method is a no-op.
"""

import threading


class Histogram:
    """A count/sum/min/max summary of observed values, with percentile
    estimates from a bounded sample reservoir.

    The first :data:`SAMPLE_CAP` observations are retained verbatim (the
    count/sum/min/max summary keeps accumulating beyond it), so
    :meth:`percentile` is exact for short-lived sessions and a
    deterministic prefix estimate for unbounded ones — the serving
    layer's latency metrics (``serve.latency_ms`` p50/p95/p99) ride on
    this."""

    #: Observations kept for percentile estimation; summaries are unbounded.
    SAMPLE_CAP = 4096

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples = []

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.SAMPLE_CAP:
            self._samples.append(value)

    @property
    def mean(self):
        if not self.count:
            return None
        return self.total / self.count

    def percentile(self, q):
        """The ``q``-th percentile (``0 <= q <= 100``) of the retained
        samples, nearest-rank; None when nothing was observed."""
        if not self._samples:
            return None
        ranked = sorted(self._samples)
        rank = max(0, min(len(ranked) - 1,
                          int(round(q / 100.0 * len(ranked) + 0.5)) - 1))
        return ranked[rank]

    def as_dict(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return f"Histogram({self.as_dict()})"


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name, amount=1):
        """Add ``amount`` (int or float) to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name, value):
        """Record one observation into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name, default=0):
        """The current value of counter ``name``."""
        with self._lock:
            return self._counters.get(name, default)

    def histogram(self, name):
        """The :class:`Histogram` recorded under ``name`` (or None)."""
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self):
        """The whole registry as a plain (JSON-dumpable) nested dict:
        ``{"counters": {...}, "gauges": {...}, "histograms": {name:
        {count, sum, min, max, mean}}}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.as_dict() for name, h in self._histograms.items()
                },
            }

    def __repr__(self):
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counter(s), "
                f"{len(self._gauges)} gauge(s), "
                f"{len(self._histograms)} histogram(s))"
            )


class _NullMetrics:
    """The disabled registry: records nothing, reports nothing."""

    __slots__ = ()

    enabled = False

    def inc(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def counter(self, name, default=0):
        return default

    def histogram(self, name):
        return None

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self):
        return "<null metrics>"


#: The process-wide disabled registry (metrics off).
NULL_METRICS = _NullMetrics()
