"""Reproduction of "Efficient Evaluation of XML Middle-ware Queries"
(Fernández, Morishima, Suciu — SIGMOD 2001): the SilkRoute view-tree
decomposition and greedy plan-generation system, with a from-scratch
in-memory relational engine, TPC-H data generator, RXL language, and
constant-space XML tagger.

Quickstart::

    from repro import Session

    session = Session()                  # Configuration-A TPC-H database
    result = session.materialize(RXL_TEXT, indent=2)
    print(result.xml)

(:class:`Session` wraps the lower-level :class:`SilkRoute` facade — see
:mod:`repro.session`; the multi-tenant query service lives in
:mod:`repro.serve`.)
"""

from repro.common.errors import (
    ReproError,
    SchemaError,
    QueryError,
    RxlSyntaxError,
    RxlScopeError,
    PlanError,
    ExecutionError,
    BackendMismatchError,
    StaleGenerationError,
    TimeoutExceeded,
    TransientConnectionError,
    OverloadError,
    WalError,
    DtdError,
    ValidationError,
)
from repro.relational import (
    RecoveryReport,
    WriteAheadLog,
    recover,
    Backend,
    SimulatedBackend,
    SqliteBackend,
    CalibratedCostModel,
    calibrate,
    NO_RETRY,
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    Column,
    Connection,
    CostEstimator,
    CostModel,
    Database,
    FaultPolicy,
    PlanResultCache,
    DatabaseSchema,
    ForeignKey,
    QueryEngine,
    ReplicaPool,
    ReplicaSet,
    RetryPolicy,
    SourceDescription,
    SqlType,
    Table,
    TableSchema,
)
from repro.core import (
    ExecutionOptions,
    RequestContext,
    GreedyParameters,
    GreedyPlan,
    GreedyPlanner,
    MaterializedView,
    Partition,
    PlanStyle,
    SilkRoute,
    SqlGenerator,
    ViewTree,
    build_view_tree,
    enumerate_partitions,
    fully_partitioned,
    label_view_tree,
    unified_partition,
)
from repro.obs import (
    MetricsRegistry,
    ObsOptions,
    ObsSnapshot,
    Tracer,
    chrome_trace_json,
    metrics_json,
    profile_tree,
)
from repro.rxl import parse_rxl, validate_rxl
from repro.serve import ServeClient, ServeError, Server
from repro.session import QueryResult, Session, apply_delta
from repro.xmlgen import parse_dtd, validate_document

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "RxlSyntaxError",
    "RxlScopeError",
    "PlanError",
    "ExecutionError",
    "BackendMismatchError",
    "StaleGenerationError",
    "TimeoutExceeded",
    "TransientConnectionError",
    "OverloadError",
    "WalError",
    "RecoveryReport",
    "WriteAheadLog",
    "recover",
    "DtdError",
    "ValidationError",
    "FaultPolicy",
    "RetryPolicy",
    "NO_RETRY",
    "CircuitBreaker",
    "ReplicaSet",
    "ReplicaPool",
    "AdmissionPolicy",
    "AdmissionController",
    "ExecutionOptions",
    "RequestContext",
    "Session",
    "QueryResult",
    "apply_delta",
    "Server",
    "ServeClient",
    "ServeError",
    "Column",
    "Connection",
    "Backend",
    "SimulatedBackend",
    "SqliteBackend",
    "CalibratedCostModel",
    "calibrate",
    "CostEstimator",
    "CostModel",
    "Database",
    "DatabaseSchema",
    "ForeignKey",
    "PlanResultCache",
    "QueryEngine",
    "SourceDescription",
    "SqlType",
    "Table",
    "TableSchema",
    "GreedyParameters",
    "GreedyPlan",
    "GreedyPlanner",
    "MaterializedView",
    "Partition",
    "PlanStyle",
    "SilkRoute",
    "SqlGenerator",
    "ViewTree",
    "build_view_tree",
    "enumerate_partitions",
    "fully_partitioned",
    "label_view_tree",
    "unified_partition",
    "ObsOptions",
    "ObsSnapshot",
    "Tracer",
    "MetricsRegistry",
    "chrome_trace_json",
    "profile_tree",
    "metrics_json",
    "parse_rxl",
    "validate_rxl",
    "parse_dtd",
    "validate_document",
    "__version__",
]
