"""Loading and dumping table data: CSV and TPC-H ``dbgen`` `.tbl` files.

A downstream user's data lives in files, not in generator code.  This
module fills a :class:`~repro.relational.database.Database` from a
directory of per-table files (and writes one back out), converting text
fields to each column's declared SQL type.  The pipe-separated ``.tbl``
format is what the real TPC-H ``dbgen`` emits, so dumps from an actual
dbgen run load directly into the simulated engine.
"""

import csv
import datetime
import io
import pathlib

from repro.common.errors import SchemaError
from repro.relational.database import Database
from repro.relational.types import SqlType


def parse_value(text, sql_type, nullable=True):
    """Convert one text field to a Python value of ``sql_type``.

    Empty text means NULL (for nullable columns).
    """
    if text == "" or text is None:
        if nullable:
            return None
        raise SchemaError("empty value for NOT NULL column")
    if sql_type is SqlType.INTEGER:
        return int(text)
    if sql_type is SqlType.DECIMAL:
        return float(text)
    if sql_type is SqlType.DATE:
        return datetime.date.fromisoformat(text)
    return text


def format_value(value):
    """Render one value as a text field (NULL becomes empty)."""
    if value is None:
        return ""
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return repr(value)
    return str(value)


def load_table(database, table_name, lines, delimiter=",", header=False):
    """Load rows into one table from an iterable of text lines.

    Returns the number of rows inserted.  ``dbgen``'s trailing ``|`` on
    every ``.tbl`` line is tolerated (a trailing empty field beyond the
    column count is dropped).
    """
    table = database.table(table_name)
    columns = table.schema.columns
    reader = csv.reader(lines, delimiter=delimiter)
    inserted = 0
    for i, fields in enumerate(reader):
        if header and i == 0:
            continue
        if not fields:
            continue
        if len(fields) == len(columns) + 1 and fields[-1] == "":
            fields = fields[:-1]
        if len(fields) != len(columns):
            raise SchemaError(
                f"{table_name} line {i + 1}: expected {len(columns)} "
                f"fields, got {len(fields)}"
            )
        values = [
            parse_value(field, col.sql_type, col.nullable)
            for field, col in zip(fields, columns)
        ]
        table.insert(*values)
        inserted += 1
    return inserted


def dump_table(database, table_name, sink, delimiter=",", header=False):
    """Write one table to a file-like ``sink``; returns the row count."""
    table = database.table(table_name)
    writer = csv.writer(sink, delimiter=delimiter, lineterminator="\n")
    if header:
        writer.writerow(table.schema.column_names)
    count = 0
    for row in table.rows:
        writer.writerow([format_value(v) for v in row])
        count += 1
    return count


def load_directory(schema, directory, extension=".csv", delimiter=",",
                   header=False, check=True):
    """Build a :class:`Database` from ``<directory>/<Table><extension>``
    files.  Missing files leave their tables empty.  With ``check``,
    foreign keys are verified and statistics computed."""
    directory = pathlib.Path(directory)
    database = Database(schema)
    for table_name in schema.table_names:
        path = directory / f"{table_name}{extension}"
        if not path.exists():
            continue
        with path.open(newline="") as handle:
            load_table(database, table_name, handle,
                       delimiter=delimiter, header=header)
    if check:
        database.check_foreign_keys()
        database.analyze()
    return database


def dump_directory(database, directory, extension=".csv", delimiter=",",
                   header=False):
    """Write every table of ``database`` into ``directory``; returns
    {table: rows written}."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    for table_name in database.schema.table_names:
        path = directory / f"{table_name}{extension}"
        with path.open("w", newline="") as handle:
            written[table_name] = dump_table(
                database, table_name, handle,
                delimiter=delimiter, header=header,
            )
    return written


def load_tbl_directory(schema, directory, check=True):
    """Load ``dbgen``-style pipe-separated ``.tbl`` files."""
    return load_directory(
        schema, directory, extension=".tbl", delimiter="|", check=check
    )


def dump_tbl_directory(database, directory):
    """Dump ``dbgen``-style pipe-separated ``.tbl`` files."""
    return dump_directory(database, directory, extension=".tbl", delimiter="|")
