"""Functional and inclusion dependency reasoning.

The paper labels view-tree edges (Sec. 3.5) by checking a functional
dependency (condition C1) and an inclusion dependency (condition C2).  The
general combined implication problem is undecidable, so — exactly like
SilkRoute — we restrict ourselves to FD implication *without* considering
inclusion dependencies, which the classic attribute-closure algorithm
decides in (near) linear time [Beeri & Bernstein 1979].

Dependencies here are over abstract attribute names (the planner uses
datalog column variables).  Deriving the FD set for a concrete rule body
happens in :mod:`repro.core.labeling`.

This module also hosts the *data* dependencies of the incremental-
maintenance layer: :func:`plan_tables` maps a relational plan to the set
of base tables it reads, which is what lets a mutation invalidate only
the cached results that depend on the touched tables.
"""

from dataclasses import dataclass


def plan_tables(plan):
    """The base tables a plan reads, as a frozenset of table names.

    This is the dependency footprint behind delta propagation: a cached
    result for ``plan`` — in the :class:`~repro.relational.cache.PlanResultCache`,
    the batch engine's node-result cache, or the XML instance cache — stays
    valid across any mutation of a table *not* in this set.  Walks the plan
    once collecting :class:`~repro.relational.algebra.Scan` leaves; callers
    memoize by ``plan.fingerprint()``.
    """
    from repro.relational.algebra import Scan, walk

    return frozenset(
        op.table_schema.name for op in walk(plan) if isinstance(op, Scan)
    )


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs`` over attribute names."""

    lhs: frozenset
    rhs: frozenset

    @classmethod
    def of(cls, lhs, rhs):
        """Build from any iterables of attribute names."""
        return cls(frozenset(lhs), frozenset(rhs))

    def __repr__(self):
        left = ",".join(sorted(self.lhs))
        right = ",".join(sorted(self.rhs))
        return f"FD({left} -> {right})"


@dataclass(frozen=True)
class InclusionDependency:
    """``lhs_relation[lhs_attrs] ⊆ rhs_relation[rhs_attrs]``.

    Used as a record of what was assumed/derived; the actual C2 check is a
    structural foreign-key argument in :mod:`repro.core.labeling`.
    """

    lhs_relation: str
    lhs_attrs: tuple
    rhs_relation: str
    rhs_attrs: tuple

    def __repr__(self):
        return (
            f"IND({self.lhs_relation}[{','.join(self.lhs_attrs)}] ⊆ "
            f"{self.rhs_relation}[{','.join(self.rhs_attrs)}])"
        )


def attribute_closure(attributes, fds):
    """Closure of an attribute set under a collection of FDs.

    Standard fixpoint: repeatedly add the right side of any FD whose left
    side is contained in the current set.  With the indexed worklist below
    this runs in time proportional to the total size of the FD set.
    """
    closure = set(attributes)
    # Index FDs by each left-hand attribute; count how many lhs attributes
    # of each FD are still missing from the closure.
    fds = list(fds)
    missing = []
    by_attr = {}
    ready = []
    for i, fd in enumerate(fds):
        outstanding = len(fd.lhs - closure)
        missing.append(outstanding)
        if outstanding == 0:
            ready.append(i)
        for attr in fd.lhs - closure:
            by_attr.setdefault(attr, []).append(i)
    queue = list(closure)
    while ready or queue:
        while ready:
            fd = fds[ready.pop()]
            for attr in fd.rhs:
                if attr not in closure:
                    closure.add(attr)
                    queue.append(attr)
        if queue:
            attr = queue.pop()
            for i in by_attr.get(attr, ()):
                missing[i] -= 1
                if missing[i] == 0:
                    ready.append(i)
    return frozenset(closure)


def implies_fd(fds, candidate):
    """Does the FD set imply ``candidate``?  (Armstrong-complete via closure.)"""
    return candidate.rhs <= attribute_closure(candidate.lhs, fds)


def minimal_cover_lhs(attributes, fds):
    """Remove attributes from ``attributes`` that are implied by the rest.

    Handy for canonicalizing Skolem-term arguments when, as in Sec. 3.1's
    simplification, one argument functionally determines another.
    """
    kept = list(attributes)
    changed = True
    while changed:
        changed = False
        for attr in list(kept):
            rest = [a for a in kept if a != attr]
            if attr in attribute_closure(rest, fds):
                kept = rest
                changed = True
                break
    return tuple(kept)
