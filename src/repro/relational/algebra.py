"""Relational-algebra IR for the generated SQL queries.

The planner (Sec. 3.4) builds plans from exactly the constructs the paper's
SQL generator needs: scans, filters, projections (with constant columns for
the ``L`` Skolem-function-index tags), DISTINCT, inner joins, *tagged* left
outer joins (the ``on (L2=1 and ...) or (L2=2 and ...)`` form of the unified
outer-join query), outer unions (union of union-incompatible schemas padded
with NULLs), and sorts with NULLS FIRST.

Every operator reports its output columns as :class:`ColumnInfo` records
that carry a type and, where known, the base-table column they descend from;
the estimator uses that provenance for distinct-count estimates.
"""

from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.relational.types import SqlType, quote_sql_ident, sql_literal


# ---------------------------------------------------------------------------
# Column metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnInfo:
    """Metadata for one output column of an operator.

    ``source`` is ``(table_name, column_name)`` when the column descends
    unchanged from a base table, else ``None``.
    """

    name: str
    sql_type: SqlType
    source: tuple = None


def _names(columns):
    return [c.name for c in columns]


def _check_unique(columns, context):
    names = _names(columns)
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise QueryError(f"{context}: duplicate output columns {dupes}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """Reference to an input column by name."""

    name: str

    def to_sql(self):
        return quote_sql_ident(self.name.replace("$", "_"))

    def fingerprint(self):
        return ("col", self.name)


@dataclass(frozen=True)
class Literal:
    """A constant.  ``sql_type`` must be given for NULL constants so the
    output column still has a type."""

    value: object
    sql_type: SqlType = None

    def inferred_type(self):
        if self.sql_type is not None:
            return self.sql_type
        if self.value is None:
            raise QueryError("NULL literal requires an explicit sql_type")
        if isinstance(self.value, int):
            return SqlType.INTEGER
        if isinstance(self.value, float):
            return SqlType.DECIMAL
        if isinstance(self.value, str):
            return SqlType.VARCHAR
        return SqlType.DATE

    def to_sql(self):
        return sql_literal(self.value)

    def fingerprint(self):
        return ("lit", self.value)


_COMPARISON_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with SQL three-valued logic: NULL operands make the
    predicate false (never-match), which is all the generator needs."""

    op: str
    left: object
    right: object

    def __post_init__(self):
        if self.op not in _COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, row, positions):
        left = _eval_expr(self.left, row, positions)
        right = _eval_expr(self.right, row, positions)
        if left is None or right is None:
            return False
        return _COMPARISON_OPS[self.op](left, right)

    def referenced_columns(self):
        refs = []
        for side in (self.left, self.right):
            if isinstance(side, ColumnRef):
                refs.append(side.name)
        return refs

    def to_sql(self):
        op = "<>" if self.op == "!=" else self.op
        return f"{self.left.to_sql()} {op} {self.right.to_sql()}"

    def fingerprint(self):
        return ("cmp", self.op, self.left.fingerprint(), self.right.fingerprint())


@dataclass(frozen=True)
class And:
    """Conjunction of comparisons."""

    conjuncts: tuple

    @classmethod
    def of(cls, conjuncts):
        return cls(tuple(conjuncts))

    def evaluate(self, row, positions):
        return all(c.evaluate(row, positions) for c in self.conjuncts)

    def referenced_columns(self):
        refs = []
        for conjunct in self.conjuncts:
            refs.extend(conjunct.referenced_columns())
        return refs

    def to_sql(self):
        if not self.conjuncts:
            return "TRUE"
        return " AND ".join(c.to_sql() for c in self.conjuncts)

    def fingerprint(self):
        return ("and",) + tuple(c.fingerprint() for c in self.conjuncts)


def _eval_expr(expr, row, positions):
    if isinstance(expr, ColumnRef):
        try:
            return row[positions[expr.name]]
        except KeyError:
            raise QueryError(f"unknown column {expr.name!r} in predicate") from None
    if isinstance(expr, Literal):
        return expr.value
    raise QueryError(f"unsupported expression {expr!r}")


# Python spellings of the SQL comparison operators, for predicate
# compilation.  Only these whitelisted tokens ever reach the generated
# source; operand positions are integers and constants are bound as
# closure parameters, never interpolated into the source text.
_PY_COMPARISON_OPS = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def _comparison_source(comparison, positions, var, consts):
    """Python source for one :class:`Comparison` over row variable ``var``.

    NULL guards reproduce :meth:`Comparison.evaluate`'s three-valued
    logic: a NULL operand makes the predicate false, for ``!=`` too.
    """
    if not isinstance(comparison, Comparison):
        raise QueryError(f"cannot compile conjunct {comparison!r}")

    def operand(side):
        if isinstance(side, ColumnRef):
            try:
                return f"{var}[{positions[side.name]:d}]", True
            except KeyError:
                raise QueryError(
                    f"unknown column {side.name!r} in predicate"
                ) from None
        if isinstance(side, Literal):
            if side.value is None:
                return None, False
            name = f"_k{len(consts)}"
            consts[name] = side.value
            return name, False
        raise QueryError(f"unsupported expression {side!r}")

    left, left_is_col = operand(comparison.left)
    right, right_is_col = operand(comparison.right)
    if left is None or right is None:
        return "False"  # a NULL literal operand can never match
    parts = []
    if left_is_col:
        parts.append(f"{left} is not None")
    if right_is_col:
        parts.append(f"{right} is not None")
    parts.append(f"{left} {_PY_COMPARISON_OPS[comparison.op]} {right}")
    return "(" + " and ".join(parts) + ")"


def predicate_source(predicate, positions, var="row"):
    """Compile ``predicate`` to Python source over row variable ``var``.

    Returns ``(condition, consts)`` where ``condition`` is a boolean
    expression and ``consts`` maps parameter names to the literal values
    the expression references.  Raises :class:`QueryError` for predicate
    shapes the compiler does not handle (callers fall back to
    :meth:`Comparison.evaluate`).
    """
    consts = {}
    if isinstance(predicate, And):
        if not predicate.conjuncts:
            return "True", consts
        condition = " and ".join(
            _comparison_source(c, positions, var, consts)
            for c in predicate.conjuncts
        )
    else:
        condition = _comparison_source(predicate, positions, var, consts)
    return condition, consts


def compile_source(source, consts):
    """Evaluate compiler-generated ``source`` with ``consts`` bound as
    closure parameters (no builtins are exposed to the evaluated code)."""
    if consts:
        params = ", ".join(consts)
        return eval(  # noqa: S307 - compiler-built source, whitelisted ops
            f"lambda {params}: {source}", {"__builtins__": {}}
        )(**consts)
    return eval(source, {"__builtins__": {}})  # noqa: S307


def compile_predicate(predicate, positions):
    """Compile an :class:`And`/:class:`Comparison` to a ``row -> bool``
    closure, hoisting the per-row ``_eval_expr`` dispatch and positions
    lookups out of the filter loop.  Semantically identical to
    ``predicate.evaluate(row, positions)``; unsupported shapes fall back
    to exactly that call."""
    try:
        condition, consts = predicate_source(predicate, positions, var="row")
    except QueryError:
        return lambda row: predicate.evaluate(row, positions)
    return compile_source(f"lambda row: {condition}", consts)


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class Operator:
    """Base class: every operator exposes ``columns`` (tuple of ColumnInfo),
    ``children``, and a structural ``fingerprint`` for estimate caching."""

    def columns(self):
        raise NotImplementedError

    @property
    def children(self):
        return ()

    def column_names(self):
        return tuple(c.name for c in self.columns())

    def positions(self):
        """Map column name -> index; cached per instance."""
        cached = getattr(self, "_positions", None)
        if cached is None:
            cached = {c.name: i for i, c in enumerate(self.columns())}
            self._positions = cached
        return cached

    def fingerprint(self):
        """Structural fingerprint (a hashable tuple); cached per instance.

        Plans are immutable once built, and fingerprints key the engine's
        common-subexpression memo, the result cache, and the compiled-
        kernel cache on every execution — caching avoids rebuilding the
        recursive tuple each time.
        """
        cached = getattr(self, "_fp", None)
        if cached is None:
            cached = self._fingerprint()
            self._fp = cached
        return cached

    def _fingerprint(self):
        raise NotImplementedError


class Scan(Operator):
    """Full scan of a base table under an alias.  Output columns are named
    ``alias.column``."""

    def __init__(self, table_schema, alias):
        self.table_schema = table_schema
        self.alias = alias
        self._cols = tuple(
            ColumnInfo(
                name=f"{alias}.{c.name}",
                sql_type=c.sql_type,
                source=(table_schema.name, c.name),
            )
            for c in table_schema.columns
        )

    def columns(self):
        return self._cols

    def _fingerprint(self):
        return ("scan", self.table_schema.name, self.alias)

    def __repr__(self):
        return f"Scan({self.table_schema.name} {self.alias})"


class Filter(Operator):
    """Row filter with an :class:`And`/:class:`Comparison` predicate."""

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate
        known = set(child.column_names())
        for name in predicate.referenced_columns():
            if name not in known:
                raise QueryError(f"filter references unknown column {name!r}")

    def columns(self):
        return self.child.columns()

    @property
    def children(self):
        return (self.child,)

    def _fingerprint(self):
        return ("filter", self.predicate.fingerprint(), self.child.fingerprint())

    def __repr__(self):
        return f"Filter({self.predicate.to_sql()})"


@dataclass(frozen=True)
class ProjectItem:
    """One select-list item: an expression and its output name."""

    expr: object
    name: str
    sql_type: SqlType = None


def ConstantColumn(name, value, sql_type=None):
    """Sugar: a :class:`ProjectItem` producing a constant column, used for
    the ``L`` tag columns (``select 1 as L2, ...``)."""
    return ProjectItem(Literal(value, sql_type), name, sql_type)


class Project(Operator):
    """Projection / renaming / constant introduction."""

    def __init__(self, child, items):
        self.child = child
        self.items = tuple(items)
        child_cols = {c.name: c for c in child.columns()}
        out = []
        for item in self.items:
            expr = item.expr
            if isinstance(expr, ColumnRef):
                try:
                    base = child_cols[expr.name]
                except KeyError:
                    raise QueryError(
                        f"projection references unknown column {expr.name!r}"
                    ) from None
                out.append(
                    ColumnInfo(
                        name=item.name,
                        sql_type=item.sql_type or base.sql_type,
                        source=base.source,
                    )
                )
            elif isinstance(expr, Literal):
                out.append(
                    ColumnInfo(
                        name=item.name,
                        sql_type=item.sql_type or expr.inferred_type(),
                        source=None,
                    )
                )
            else:
                raise QueryError(f"unsupported projection expression {expr!r}")
        self._cols = tuple(out)
        _check_unique(self._cols, "Project")

    def columns(self):
        return self._cols

    @property
    def children(self):
        return (self.child,)

    def _fingerprint(self):
        return (
            "project",
            tuple((i.name, i.expr.fingerprint()) for i in self.items),
            self.child.fingerprint(),
        )

    def __repr__(self):
        return "Project(" + ", ".join(i.name for i in self.items) + ")"


class Distinct(Operator):
    """Duplicate elimination (datalog set semantics for node queries)."""

    def __init__(self, child):
        self.child = child

    def columns(self):
        return self.child.columns()

    @property
    def children(self):
        return (self.child,)

    def _fingerprint(self):
        return ("distinct", self.child.fingerprint())

    def __repr__(self):
        return "Distinct"


class InnerJoin(Operator):
    """Equi-join.  ``equalities`` is a list of (left_column, right_column)."""

    def __init__(self, left, right, equalities):
        self.left = left
        self.right = right
        self.equalities = tuple((l, r) for l, r in equalities)
        left_names = set(left.column_names())
        right_names = set(right.column_names())
        for l, r in self.equalities:
            if l not in left_names:
                raise QueryError(f"join: {l!r} not in left input")
            if r not in right_names:
                raise QueryError(f"join: {r!r} not in right input")
        self._cols = left.columns() + right.columns()
        _check_unique(self._cols, "InnerJoin")

    def columns(self):
        return self._cols

    @property
    def children(self):
        return (self.left, self.right)

    def _fingerprint(self):
        return (
            "join",
            self.equalities,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def __repr__(self):
        conds = ", ".join(f"{l}={r}" for l, r in self.equalities)
        return f"InnerJoin({conds})"


@dataclass(frozen=True)
class JoinBranch:
    """One disjunct of a tagged outer join: the right row participates in
    this branch when its ``tag_column`` equals ``tag_value`` (both ``None``
    for an untagged join), and matches a left row when all ``equalities``
    (left_column, right_column) hold."""

    equalities: tuple
    tag_column: str = None
    tag_value: object = None


class LeftOuterJoin(Operator):
    """Left outer join, possibly with the paper's tagged-disjunction ON
    clause ``(L2=1 AND ...) OR (L2=2 AND ...)`` (Sec. 3.4)."""

    def __init__(self, left, right, branches):
        self.left = left
        self.right = right
        self.branches = tuple(branches)
        if not self.branches:
            raise QueryError("outer join requires at least one branch")
        left_names = set(left.column_names())
        right_names = set(right.column_names())
        for branch in self.branches:
            for l, r in branch.equalities:
                if l not in left_names:
                    raise QueryError(f"outer join: {l!r} not in left input")
                if r not in right_names:
                    raise QueryError(f"outer join: {r!r} not in right input")
            if branch.tag_column is not None and branch.tag_column not in right_names:
                raise QueryError(
                    f"outer join: tag column {branch.tag_column!r} not in right input"
                )
        self._cols = left.columns() + right.columns()
        _check_unique(self._cols, "LeftOuterJoin")

    @classmethod
    def simple(cls, left, right, equalities):
        """Plain (single-branch, untagged) left outer join."""
        return cls(left, right, [JoinBranch(tuple(equalities))])

    def columns(self):
        return self._cols

    @property
    def children(self):
        return (self.left, self.right)

    def _fingerprint(self):
        return (
            "louter",
            tuple(
                (b.equalities, b.tag_column, b.tag_value) for b in self.branches
            ),
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def __repr__(self):
        return f"LeftOuterJoin({len(self.branches)} branch(es))"


class OuterUnion(Operator):
    """Outer union: schema is the union of the children's columns (first
    appearance order); each child's missing columns are NULL-padded."""

    def __init__(self, inputs, distinct=False):
        self.inputs = tuple(inputs)
        self.distinct = distinct
        if not self.inputs:
            raise QueryError("outer union requires at least one input")
        seen = {}
        order = []
        for child in self.inputs:
            for col in child.columns():
                if col.name not in seen:
                    seen[col.name] = col
                    order.append(col)
                elif seen[col.name].sql_type != col.sql_type:
                    raise QueryError(
                        f"outer union: column {col.name!r} has conflicting types"
                    )
        self._cols = tuple(
            ColumnInfo(c.name, c.sql_type, c.source) for c in order
        )

    def columns(self):
        return self._cols

    @property
    def children(self):
        return self.inputs

    def _fingerprint(self):
        return ("ounion", self.distinct) + tuple(
            c.fingerprint() for c in self.inputs
        )

    def __repr__(self):
        return f"OuterUnion({len(self.inputs)} inputs)"


class Sort(Operator):
    """Sort by the named columns, NULLS FIRST (see :mod:`repro.common.ordering`)."""

    def __init__(self, child, keys):
        self.child = child
        self.keys = tuple(keys)
        known = set(child.column_names())
        for key in self.keys:
            if key not in known:
                raise QueryError(f"sort key {key!r} not in input")

    def columns(self):
        return self.child.columns()

    @property
    def children(self):
        return (self.child,)

    def _fingerprint(self):
        return ("sort", self.keys, self.child.fingerprint())

    def __repr__(self):
        return f"Sort({', '.join(self.keys)})"


# ---------------------------------------------------------------------------
# Plan inspection helpers
# ---------------------------------------------------------------------------


def walk(plan):
    """Yield every operator in the plan, root first."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def count_operators(plan, kind):
    """How many operators of ``kind`` appear in the plan."""
    return sum(1 for op in walk(plan) if isinstance(op, kind))


def outer_join_nesting(plan):
    """Maximum number of LeftOuterJoin operators on any root-to-leaf path.

    The cost model uses this as the 'optimizer stress' signal: the paper's
    Query 1 plans nest outer joins (chained ``*`` edges) while Query 2's are
    parallel, and only Query 1 plans timed out.
    """

    def depth(op):
        below = max((depth(c) for c in op.children), default=0)
        return below + (1 if isinstance(op, LeftOuterJoin) else 0)

    return depth(plan)
