"""In-memory table storage with key enforcement and hash indexes."""

from repro.common.errors import SchemaError


class Table:
    """A bag of rows conforming to a :class:`TableSchema`.

    Rows are plain tuples in schema column order.  The primary key is
    enforced on insert.  Hash indexes over arbitrary column subsets are
    built lazily and cached; the engine uses them for join builds against
    base tables.
    """

    def __init__(self, schema):
        self.schema = schema
        self.rows = []
        #: Monotonic mutation counter; feeds the database generation that
        #: versions :class:`repro.relational.cache.PlanResultCache` keys.
        self.version = 0
        self._key_index = {}
        self._indexes = {}
        self._unique_indexes = {}

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def insert(self, *values, **named):
        """Insert one row, given positionally or by column name."""
        row = self.prepare_row(values, named)
        return self._append_row(row)

    def prepare_row(self, values=(), named=None):
        """Validate one prospective row without committing it.

        Performs everything :meth:`insert` would check — arity, types,
        NOT NULL, key and unique collisions against the current contents —
        and returns the normalized row tuple, touching no table state.
        The write-ahead log uses this to validate *before* logging, so a
        rejected insert never reaches the durable log (log-then-apply).
        """
        named = named or {}
        if values and named:
            raise SchemaError("pass values positionally or by name, not both")
        if named:
            missing = [c.name for c in self.schema.columns if c.name not in named]
            if missing:
                raise SchemaError(
                    f"{self.schema.name}: missing values for {missing}"
                )
            extra = [n for n in named if not self.schema.has_column(n)]
            if extra:
                raise SchemaError(f"{self.schema.name}: unknown columns {extra}")
            values = tuple(named[c.name] for c in self.schema.columns)
        if len(values) != len(self.schema.columns):
            raise SchemaError(
                f"{self.schema.name}: expected {len(self.schema.columns)} "
                f"values, got {len(values)}"
            )
        row = tuple(values)
        self._check_types(row)
        key = tuple(row[self.schema.column_index(k)] for k in self.schema.key)
        if key in self._key_index:
            raise SchemaError(f"{self.schema.name}: duplicate key {key}")
        for unique_set in self.schema.unique_sets:
            candidate = tuple(
                row[self.schema.column_index(c)] for c in unique_set
            )
            if candidate in self._unique_indexes.get(unique_set, ()):
                raise SchemaError(
                    f"{self.schema.name}: duplicate value {candidate} for "
                    f"unique columns {unique_set}"
                )
        return row

    def _append_row(self, row):
        """Commit a row already validated by :meth:`prepare_row`."""
        key = tuple(row[self.schema.column_index(k)] for k in self.schema.key)
        self._key_index[key] = row
        for unique_set in self.schema.unique_sets:
            candidate = tuple(
                row[self.schema.column_index(c)] for c in unique_set
            )
            self._unique_indexes.setdefault(unique_set, set()).add(candidate)
        self.rows.append(row)
        self._indexes.clear()
        self.version += 1
        return row

    def _key_positions(self):
        return [self.schema.column_index(k) for k in self.schema.key]

    def row_key(self, row):
        """The primary-key tuple of ``row``."""
        return tuple(row[p] for p in self._key_positions())

    def _check_types(self, row):
        for column, value in zip(self.schema.columns, row):
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"{self.schema.name}.{column.name} is NOT NULL"
                    )
                continue
            if not column.sql_type.accepts(value):
                raise SchemaError(
                    f"{self.schema.name}.{column.name}: {value!r} is not a "
                    f"valid {column.sql_type.value}"
                )

    def _predicate(self, where):
        """Compile a mutation's ``where`` into a ``row -> bool`` closure.

        ``where`` is either a mapping of column-name equalities or a
        callable receiving the row as a ``{column: value}`` dict.
        """
        if callable(where):
            names = self.schema.column_names

            def pred(row):
                return bool(where(dict(zip(names, row))))
            return pred
        items = [
            (self.schema.column_index(name), value)
            for name, value in where.items()
        ]

        def pred(row):
            return all(row[i] == v for i, v in items)
        return pred

    def _reindexed(self, rows):
        """Key/unique indexes for ``rows``, raising :class:`SchemaError`
        on a duplicate — computed aside so a failing mutation commits
        nothing."""
        key_positions = [self.schema.column_index(k) for k in self.schema.key]
        unique_positions = {
            unique_set: [self.schema.column_index(c) for c in unique_set]
            for unique_set in self.schema.unique_sets
        }
        key_index = {}
        unique_indexes = {u: set() for u in self.schema.unique_sets}
        for row in rows:
            key = tuple(row[p] for p in key_positions)
            if key in key_index:
                raise SchemaError(f"{self.schema.name}: duplicate key {key}")
            key_index[key] = row
            for unique_set, positions in unique_positions.items():
                candidate = tuple(row[p] for p in positions)
                index = unique_indexes[unique_set]
                if candidate in index:
                    raise SchemaError(
                        f"{self.schema.name}: duplicate value {candidate} "
                        f"for unique columns {unique_set}"
                    )
                index.add(candidate)
        return key_index, unique_indexes

    def _commit(self, rows, key_index, unique_indexes):
        self.rows = rows
        self._key_index = key_index
        self._unique_indexes = unique_indexes
        self._indexes.clear()
        self.version += 1

    def update(self, where, changes):
        """Update the rows matching ``where`` in place; returns the count.

        ``changes`` maps column names to new values — or to callables
        receiving the current row as a ``{column: value}`` dict and
        returning the new value.  Row *order is preserved* (updated rows
        keep their slots), types and key/unique constraints are
        re-validated, and nothing is committed if any row would violate
        them.  A successful update with at least one matched row bumps
        :attr:`version`.
        """
        plan = self.plan_update(where, changes)
        if plan is None:
            return 0
        return self.commit_plan(plan)

    def plan_update(self, where, changes):
        """The fully validated physical plan of an update, uncommitted.

        Returns ``None`` when no row matches; otherwise a plan tuple for
        :meth:`commit_plan` whose ``pairs`` element maps each matched
        row's *pre-image* primary key to its replacement row — the
        value-based delta the write-ahead log records before the commit
        is applied.
        """
        pred = self._predicate(where)
        change_plan = [
            (self.schema.column_index(name), value)
            for name, value in changes.items()
        ]
        names = self.schema.column_names
        key_positions = self._key_positions()
        new_rows = []
        pairs = []
        matched = 0
        for row in self.rows:
            if pred(row):
                matched += 1
                values = list(row)
                for position, value in change_plan:
                    if callable(value):
                        value = value(dict(zip(names, row)))
                    values[position] = value
                new = tuple(values)
                self._check_types(new)
                pairs.append((tuple(row[p] for p in key_positions), new))
                row = new
            new_rows.append(row)
        if not matched:
            return None
        key_index, unique_indexes = self._reindexed(new_rows)
        return (new_rows, pairs, matched, key_index, unique_indexes)

    def delete(self, where):
        """Delete the rows matching ``where``; returns the count deleted.

        The surviving rows keep their relative order, so scans after a
        delete are a subsequence of the scans before it.  A delete that
        removes at least one row bumps :attr:`version`.
        """
        plan = self.plan_delete(where)
        if plan is None:
            return 0
        return self.commit_plan(plan)

    def plan_delete(self, where):
        """The fully validated physical plan of a delete, uncommitted.

        Returns ``None`` when no row matches; otherwise a plan tuple for
        :meth:`commit_plan` whose ``pairs`` element holds the primary
        keys of the victims (the delta the write-ahead log records).
        """
        pred = self._predicate(where)
        key_positions = self._key_positions()
        kept = []
        keys = []
        for row in self.rows:
            if pred(row):
                keys.append(tuple(row[p] for p in key_positions))
            else:
                kept.append(row)
        if not keys:
            return None
        key_index, unique_indexes = self._reindexed(kept)
        return (kept, keys, len(keys), key_index, unique_indexes)

    def commit_plan(self, plan):
        """Commit a plan from :meth:`plan_update` / :meth:`plan_delete`;
        returns the matched/removed count.  Bumps :attr:`version` once,
        exactly as the one-shot :meth:`update` / :meth:`delete` would."""
        new_rows, _, count, key_index, unique_indexes = plan
        self._commit(new_rows, key_index, unique_indexes)
        return count

    # -- physical appliers (write-ahead-log replay) -------------------------

    def apply_update(self, pairs):
        """Replace rows by ``(pre-image key, new row)`` pairs, preserving
        slots — the recovery applier for a logged update.  The pre-image
        key identifies the slot even when the update moved key columns."""
        replacement = {tuple(key): tuple(row) for key, row in pairs}
        key_positions = self._key_positions()
        new_rows = [
            replacement.get(tuple(row[p] for p in key_positions), row)
            for row in self.rows
        ]
        key_index, unique_indexes = self._reindexed(new_rows)
        self._commit(new_rows, key_index, unique_indexes)

    def apply_delete(self, keys):
        """Remove the rows with the given primary keys, preserving the
        survivors' order — the recovery applier for a logged delete."""
        drop = {tuple(key) for key in keys}
        key_positions = self._key_positions()
        kept = [
            row for row in self.rows
            if tuple(row[p] for p in key_positions) not in drop
        ]
        key_index, unique_indexes = self._reindexed(kept)
        self._commit(kept, key_index, unique_indexes)

    def restore(self, rows, version):
        """Physically replace the whole contents and pin the generation
        counter — the snapshot-restore primitive of crash recovery.
        Indexes are rebuilt (validating key/unique integrity of the
        snapshot) and :attr:`version` is set *exactly*, so recovered
        generation vectors match the pre-crash ones bit for bit."""
        rows = [tuple(row) for row in rows]
        key_index, unique_indexes = self._reindexed(rows)
        self.rows = rows
        self._key_index = key_index
        self._unique_indexes = unique_indexes
        self._indexes.clear()
        self.version = version

    def lookup_key(self, key_values):
        """Return the row with the given primary-key values, or None."""
        return self._key_index.get(tuple(key_values))

    def index_on(self, column_names):
        """Return (building if needed) a hash index mapping value-tuples of
        ``column_names`` to the list of matching rows."""
        key = tuple(column_names)
        index = self._indexes.get(key)
        if index is None:
            positions = [self.schema.column_index(name) for name in key]
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[key] = index
        return index

    def column_values(self, name):
        """All values of one column, in row order."""
        position = self.schema.column_index(name)
        return [row[position] for row in self.rows]

    def average_row_width(self):
        """Observed average row width in bytes (0 for an empty table)."""
        if not self.rows:
            return 0.0
        total = 0
        for row in self.rows:
            for column, value in zip(self.schema.columns, row):
                total += column.sql_type.value_width(value)
        return total / len(self.rows)

    def __repr__(self):
        return f"Table({self.schema.name}, {len(self.rows)} rows)"
