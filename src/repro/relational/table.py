"""In-memory table storage with key enforcement and hash indexes."""

from repro.common.errors import SchemaError


class Table:
    """A bag of rows conforming to a :class:`TableSchema`.

    Rows are plain tuples in schema column order.  The primary key is
    enforced on insert.  Hash indexes over arbitrary column subsets are
    built lazily and cached; the engine uses them for join builds against
    base tables.
    """

    def __init__(self, schema):
        self.schema = schema
        self.rows = []
        #: Monotonic mutation counter; feeds the database generation that
        #: versions :class:`repro.relational.cache.PlanResultCache` keys.
        self.version = 0
        self._key_index = {}
        self._indexes = {}
        self._unique_indexes = {}

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def insert(self, *values, **named):
        """Insert one row, given positionally or by column name."""
        if values and named:
            raise SchemaError("pass values positionally or by name, not both")
        if named:
            missing = [c.name for c in self.schema.columns if c.name not in named]
            if missing:
                raise SchemaError(
                    f"{self.schema.name}: missing values for {missing}"
                )
            extra = [n for n in named if not self.schema.has_column(n)]
            if extra:
                raise SchemaError(f"{self.schema.name}: unknown columns {extra}")
            values = tuple(named[c.name] for c in self.schema.columns)
        if len(values) != len(self.schema.columns):
            raise SchemaError(
                f"{self.schema.name}: expected {len(self.schema.columns)} "
                f"values, got {len(values)}"
            )
        row = tuple(values)
        self._check_types(row)
        key = tuple(row[self.schema.column_index(k)] for k in self.schema.key)
        if key in self._key_index:
            raise SchemaError(f"{self.schema.name}: duplicate key {key}")
        for unique_set in self.schema.unique_sets:
            candidate = tuple(
                row[self.schema.column_index(c)] for c in unique_set
            )
            index = self._unique_indexes.setdefault(unique_set, set())
            if candidate in index:
                raise SchemaError(
                    f"{self.schema.name}: duplicate value {candidate} for "
                    f"unique columns {unique_set}"
                )
            index.add(candidate)
        self._key_index[key] = row
        self.rows.append(row)
        self._indexes.clear()
        self.version += 1
        return row

    def _check_types(self, row):
        for column, value in zip(self.schema.columns, row):
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"{self.schema.name}.{column.name} is NOT NULL"
                    )
                continue
            if not column.sql_type.accepts(value):
                raise SchemaError(
                    f"{self.schema.name}.{column.name}: {value!r} is not a "
                    f"valid {column.sql_type.value}"
                )

    def lookup_key(self, key_values):
        """Return the row with the given primary-key values, or None."""
        return self._key_index.get(tuple(key_values))

    def index_on(self, column_names):
        """Return (building if needed) a hash index mapping value-tuples of
        ``column_names`` to the list of matching rows."""
        key = tuple(column_names)
        index = self._indexes.get(key)
        if index is None:
            positions = [self.schema.column_index(name) for name in key]
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[key] = index
        return index

    def column_values(self, name):
        """All values of one column, in row order."""
        position = self.schema.column_index(name)
        return [row[position] for row in self.rows]

    def average_row_width(self):
        """Observed average row width in bytes (0 for an empty table)."""
        if not self.rows:
            return 0.0
        total = 0
        for row in self.rows:
            for column, value in zip(self.schema.columns, row):
                total += column.sql_type.value_width(value)
        return total / len(self.rows)

    def __repr__(self):
        return f"Table({self.schema.name}, {len(self.rows)} rows)"
