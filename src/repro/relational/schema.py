"""Relational schema definition: columns, tables, keys, foreign keys.

The paper's view-tree labeling step (Sec. 3.5) needs the target database's
constraints — keys and referential constraints — to decide the C1/C2
conditions.  ``DatabaseSchema`` therefore records primary keys and foreign
keys (with a ``not_null`` flag on the referencing columns: a non-null,
enforced foreign key is what makes the inclusion dependency C2 hold).
"""

from dataclasses import dataclass

from repro.common.errors import SchemaError
from repro.relational.types import SqlType


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    sql_type: SqlType
    nullable: bool = False

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


class TableSchema:
    """Schema of a single table: ordered columns plus a primary key.

    The primary key mirrors the ``*``-prefixed attributes of the paper's
    datalog-style schema (Fig. 1).  ``unique_sets`` declares additional
    candidate keys (e.g. ``Nation.name``), which license the paper's
    Sec. 3.1 Skolem-argument simplification ("we assume that name
    functionally determines nationkey").
    """

    def __init__(self, name, columns, key, unique_sets=()):
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self.key = tuple(key)
        self.unique_sets = tuple(tuple(u) for u in unique_sets)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name}")
        self._by_name = {c.name: c for c in self.columns}
        for key_col in self.key:
            if key_col not in self._by_name:
                raise SchemaError(f"key column {key_col!r} not in table {name}")
        if not self.key:
            raise SchemaError(f"table {name} must declare a primary key")
        for unique_set in self.unique_sets:
            for col in unique_set:
                if col not in self._by_name:
                    raise SchemaError(
                        f"unique column {col!r} not in table {name}"
                    )

    @property
    def column_names(self):
        return tuple(c.name for c in self.columns)

    def column(self, name):
        """Look up a column by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name} has no column {name!r}") from None

    def has_column(self, name):
        return name in self._by_name

    def column_index(self, name):
        self.column(name)
        return self.column_names.index(name)

    def row_width(self):
        """Nominal width in bytes of one row (for cost estimation)."""
        return sum(c.sql_type.storage_width for c in self.columns)

    def __repr__(self):
        cols = ", ".join(
            ("*" if c.name in self.key else "") + c.name for c in self.columns
        )
        return f"{self.name}({cols})"


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint ``table(columns) -> ref_table(ref_columns)``.

    ``not_null`` records whether the referencing columns are non-nullable;
    together with enforcement this is what licenses the C2 inclusion
    dependency of Sec. 3.5 (every parent tuple has a matching child tuple).
    """

    table: str
    columns: tuple
    ref_table: str
    ref_columns: tuple
    not_null: bool = True

    def __post_init__(self):
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key {self.table}{self.columns} -> "
                f"{self.ref_table}{self.ref_columns}: arity mismatch"
            )


class DatabaseSchema:
    """A set of table schemas plus foreign keys."""

    def __init__(self, tables=(), foreign_keys=()):
        self._tables = {}
        self.foreign_keys = []
        for table in tables:
            self.add_table(table)
        for foreign_key in foreign_keys:
            self.add_foreign_key(foreign_key)

    def add_table(self, table_schema):
        if table_schema.name in self._tables:
            raise SchemaError(f"duplicate table {table_schema.name}")
        self._tables[table_schema.name] = table_schema

    def add_foreign_key(self, foreign_key):
        table = self.table(foreign_key.table)
        ref = self.table(foreign_key.ref_table)
        for col in foreign_key.columns:
            table.column(col)
        for col in foreign_key.ref_columns:
            ref.column(col)
        if tuple(foreign_key.ref_columns) != tuple(ref.key):
            raise SchemaError(
                f"foreign key must reference the primary key of {ref.name}"
            )
        self.foreign_keys.append(foreign_key)

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name):
        return name in self._tables

    @property
    def table_names(self):
        return tuple(self._tables)

    @property
    def tables(self):
        return tuple(self._tables.values())

    def foreign_keys_from(self, table_name):
        """Foreign keys whose referencing side is ``table_name``."""
        return [fk for fk in self.foreign_keys if fk.table == table_name]

    def __repr__(self):
        return "DatabaseSchema(" + ", ".join(self.table_names) + ")"
