"""Columnar batches and compiled row codecs for the batch engine.

The tuple engine moves Python tuples one at a time through per-row
interpreter loops.  The batch engine (:mod:`repro.relational.vector_ops`)
instead passes :class:`Batch` objects between operators: a batch carries
the *same* rows, but holds them in whichever representation the producing
kernel built cheaply — row-major (a list of tuples, what scans, filters,
joins, and sorts produce) or column-major (a list of per-column value
lists, what projections and unions produce) — and converts lazily, at most
once, through a :class:`RowCodec` compiled per schema arity.

The codec is where the representation changes hands, and it is compiled so
the transpose runs entirely in C: ``decode`` is a generated
``zip(columns[0], columns[1], ...)`` specialized to the arity, ``encode``
is the inverse ``zip(*rows)``.  Conversions honour the engine's
``batch_size``: a decode of a large batch proceeds in ``batch_size``-row
chunks (bounding the transient working set) without changing a single
output value.

Batches are value-immutable by contract, exactly like the tuple engine's
result rows: they are shared through the engine's common-subexpression
memo and the plan-result cache, so neither the row list nor the column
lists may be mutated after construction.
"""

#: Default number of rows a kernel processes per chunk.  Large enough that
#: per-chunk overhead vanishes, small enough to bound transient copies.
DEFAULT_BATCH_SIZE = 4096


class RowCodec:
    """Compiled converter between row-major and column-major for one arity.

    ``decode(columns)`` returns the list of row tuples; ``encode(rows)``
    returns the list of column lists.  Codecs are stateless and cached per
    arity (:func:`codec_for`); the generated source references only the
    ``columns`` parameter and the whitelisted ``list``/``zip`` builtins.
    """

    __slots__ = ("arity", "decode", "encode")

    def __init__(self, arity):
        self.arity = arity
        if arity == 0:
            # Zero-width rows: the column representation is empty and the
            # row count is external, so decode is handled by the batch.
            self.decode = lambda columns: []
            self.encode = lambda rows: []
            return
        cols = ", ".join(f"columns[{i}]" for i in range(arity))
        self.decode = eval(  # noqa: S307 - arity-generated source only
            f"lambda columns: list(zip({cols}))",
            {"__builtins__": {"list": list, "zip": zip}},
        )

        def encode(rows, _arity=arity):
            if not rows:
                return [[] for _ in range(_arity)]
            return [list(column) for column in zip(*rows)]

        self.encode = encode


_CODECS = {}


def codec_for(arity):
    """The (cached) :class:`RowCodec` for one schema arity."""
    codec = _CODECS.get(arity)
    if codec is None:
        codec = RowCodec(arity)
        _CODECS[arity] = codec
    return codec


class Batch:
    """One operator's output: ``length`` rows of ``arity`` columns.

    Either representation may be present; the other is derived on first
    use and cached.  ``col(i)`` extracts a single column without forcing a
    full transpose of a row-major batch (the common case for join keys and
    sort keys).
    """

    __slots__ = ("length", "arity", "codec", "_rows", "_columns")

    def __init__(self, length, arity, rows=None, columns=None):
        self.length = length
        self.arity = arity
        self.codec = codec_for(arity)
        self._rows = rows
        self._columns = columns

    @classmethod
    def from_rows(cls, rows, arity):
        """Wrap a list of row tuples (not copied; treat as immutable)."""
        return cls(len(rows), arity, rows=rows)

    @classmethod
    def from_columns(cls, columns, length):
        """Wrap a list of column lists (not copied; treat as immutable).
        ``length`` is explicit so zero-arity batches keep their row
        count."""
        return cls(length, len(columns), columns=columns)

    def rows(self, batch_size=None):
        """The row-major view, decoding (chunked) on first use."""
        rows = self._rows
        if rows is None:
            rows = self._decode(batch_size)
            self._rows = rows
        return rows

    def columns(self):
        """The column-major view, transposing on first use."""
        columns = self._columns
        if columns is None:
            columns = self.codec.encode(self._rows)
            self._columns = columns
        return columns

    def col(self, index):
        """One column's values, without forcing a full transpose."""
        if self._columns is not None:
            return self._columns[index]
        return [row[index] for row in self._rows]

    def _decode(self, batch_size):
        if self.arity == 0:
            return [()] * self.length
        columns = self._columns
        decode = self.codec.decode
        if not batch_size or self.length <= batch_size:
            return decode(columns)
        out = []
        extend = out.extend
        for start in range(0, self.length, batch_size):
            stop = start + batch_size
            extend(decode([column[start:stop] for column in columns]))
        return out

    def __len__(self):
        return self.length

    def __repr__(self):
        held = "rows" if self._rows is not None else "columns"
        return f"Batch({self.length}x{self.arity}, {held})"
