"""Render algebra plans as SQL text.

SilkRoute is middle-ware: what actually crosses the wire to the RDBMS is
SQL.  This module turns any plan built by the generator into SQL in the
paper's style (Sec. 3.4's example query): node queries flatten to a single
``SELECT ... FROM t1 a1, t2 a2 WHERE ...`` block; combined plans nest
derived tables under ``LEFT OUTER JOIN ... ON (L2=1 AND ...) OR (...)`` and
``UNION ALL`` with explicit NULL padding; the final ``ORDER BY`` lists the
integrated-relation sort key with NULLS FIRST.

The renderer requires that any operator wrapped as a derived table exposes
only *projected* (unqualified) column names — which the plan generator
guarantees — because SQL cannot re-qualify ``alias.column`` names through a
subquery boundary.
"""

import itertools
import re
from collections import Counter

from repro.common.errors import QueryError
from repro.relational.types import quote_sql_alias, quote_sql_ident
from repro.relational.algebra import (
    walk,
    Scan,
    Filter,
    Project,
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Sort,
    ColumnRef,
    Literal,
)


def render_sql(plan, pretty=True):
    """Render a plan as a SQL string."""
    renderer = _Renderer()
    sql = renderer.render(plan)
    if pretty:
        return sql
    return " ".join(sql.split())


def render_sql_with(plan, pretty=True):
    """Render a plan using the SQL ``WITH`` clause for shared subqueries.

    The paper's footnote 1: "We also can use the SQL 'with' clause to
    construct partitioned relations ... if the RDBMS supports it."  Every
    projected sub-plan that occurs more than once (by structural
    fingerprint) — e.g. a parent node query reused as the prefix of its
    children's — becomes a named common table expression, making the
    middle-ware's work sharing explicit in the SQL text.

    Falls back to :func:`render_sql` when nothing is shared.
    """
    counts = Counter()
    by_fingerprint = {}
    for op in walk(plan):
        if isinstance(op, (Project, Distinct)) and all(
            "." not in c.name for c in op.columns()
        ):
            fingerprint = op.fingerprint()
            counts[fingerprint] += 1
            by_fingerprint.setdefault(fingerprint, op)
    shared = [fp for fp, n in counts.items() if n >= 2]
    if not shared:
        return render_sql(plan, pretty)

    def plan_size(fingerprint):
        return sum(1 for _ in walk(by_fingerprint[fingerprint]))

    shared.sort(key=plan_size)  # dependencies (smaller) first
    renderer = _Renderer()
    definitions = []
    for i, fingerprint in enumerate(shared, 1):
        name = f"nq_{i}"
        body = _indent(renderer.render(by_fingerprint[fingerprint]))
        renderer.cte_of[fingerprint] = name
        definitions.append(f"{name} AS (\n{body}\n)")
    main = renderer.render(plan)
    sql = "WITH " + ",\n".join(definitions) + "\n" + main
    if pretty:
        return sql
    return " ".join(sql.split())


class _Renderer:
    def __init__(self):
        self._alias_counter = itertools.count(1)
        self.cte_of = {}

    def _fresh_alias(self):
        return f"q{next(self._alias_counter)}"

    def render(self, op):
        if isinstance(op, Sort):
            inner = self.render(op.child)
            keys = ", ".join(f"{_ident(k)} NULLS FIRST" for k in op.keys)
            return f"{inner}\nORDER BY {keys}"
        if isinstance(op, OuterUnion):
            return self._render_union(op)
        if isinstance(op, LeftOuterJoin):
            return self._render_outer_join(op)
        return self._render_select(op)

    # -- flat SELECT blocks --------------------------------------------------

    def _render_select(self, op):
        """Flatten Project/Distinct/Filter/InnerJoin/Scan chains into one
        SELECT block.  ``items`` are (sql_expression, output_name) pairs."""
        distinct, items, from_parts, where = self._flatten(op)
        return self._select_sql(distinct, items, from_parts, where)

    @staticmethod
    def _select_sql(distinct, items, from_parts, where):
        rendered = []
        for expr_sql, name in items:
            # A bare or alias-qualified reference already carrying the
            # output name needs no AS clause.
            is_plain_ref = all(
                part.isidentifier() for part in expr_sql.split(".")
            )
            if is_plain_ref and expr_sql.split(".")[-1] == name:
                rendered.append(expr_sql)
            else:
                rendered.append(f"{expr_sql} AS {_alias(name)}")
        sql = "SELECT "
        if distinct:
            sql += "DISTINCT "
        sql += ", ".join(rendered) if rendered else "*"
        sql += "\nFROM " + ", ".join(from_parts)
        if where:
            sql += "\nWHERE " + " AND ".join(where)
        return sql

    def _flatten(self, op):
        if isinstance(op, Project):
            distinct, child_items, from_parts, where = self._flatten(op.child)
            mapping = {name: expr for expr, name in child_items}
            if distinct:
                # Flattening through DISTINCT is only sound when every
                # distinct column survives; otherwise wrap the child as a
                # derived table and project outside it.
                kept = {
                    i.expr.name for i in op.items
                    if isinstance(i.expr, ColumnRef)
                }
                if not set(mapping) <= kept:
                    _, child_items, from_parts, where = (
                        self._flatten_derived(op.child)
                    )
                    mapping = {name: expr for expr, name in child_items}
                    distinct = False
            items = []
            for i in op.items:
                if isinstance(i.expr, ColumnRef):
                    expr_sql = mapping.get(i.expr.name, _ident(i.expr.name))
                else:
                    expr_sql = _expr_sql(i.expr)
                items.append((expr_sql, i.name))
            return distinct, items, from_parts, where
        if isinstance(op, Distinct):
            _, items, from_parts, where = self._flatten(op.child)
            return True, items, from_parts, where
        if isinstance(op, Filter):
            distinct, items, from_parts, where = self._flatten(op.child)
            return distinct, items, from_parts, where + [op.predicate.to_sql()]
        if isinstance(op, InnerJoin):
            d1, items1, from1, where1 = self._flatten_join_side(op.left)
            d2, items2, from2, where2 = self._flatten_join_side(op.right)
            mapping = {name: expr for expr, name in items1 + items2}
            conds = [
                f"{mapping.get(l, _ident(l))} = {mapping.get(r, _ident(r))}"
                for l, r in op.equalities
            ]
            return (d1 or d2), items1 + items2, from1 + from2, \
                where1 + where2 + conds
        if isinstance(op, Scan):
            items = [(_ident(c.name), c.name) for c in op.columns()]
            from_item = f"{_ident(op.table_schema.name)} {_ident(op.alias)}"
            return False, items, [from_item], []
        return self._flatten_derived(op)

    def _flatten_join_side(self, op):
        """Flatten one input of an inner join.  Sides that rename columns
        or eliminate duplicates cannot be merged into the enclosing
        SELECT's scope, so they become derived tables."""
        if isinstance(op, (Scan, Filter, InnerJoin)):
            return self._flatten(op)
        return self._flatten_derived(op)

    def _flatten_derived(self, op):
        """Wrap any operator as a derived table in the FROM clause (or a
        reference to its common table expression when one is defined)."""
        alias = self._fresh_alias()
        _require_projected(op)
        items = [(f"{alias}.{_ident(c.name)}", c.name) for c in op.columns()]
        return False, items, [self._from_item(op, alias)], []

    def _from_item(self, op, alias):
        cte = self.cte_of.get(op.fingerprint())
        if cte is not None:
            return f"{cte} AS {alias}"
        inner = _indent(self.render(op))
        return f"(\n{inner}\n) AS {alias}"

    # -- combined constructs ---------------------------------------------------

    def _render_outer_join(self, op):
        left_alias = self._fresh_alias()
        right_alias = self._fresh_alias()
        _require_projected(op.left)
        _require_projected(op.right)
        left_item = self._from_item(op.left, left_alias)
        right_item = self._from_item(op.right, right_alias)
        out_cols = ", ".join(_qualify(c.name, op, left_alias, right_alias)
                             for c in op.columns())
        on_sql = self._on_clause(op, left_alias, right_alias)
        return (
            f"SELECT {out_cols}\n"
            f"FROM {left_item}\n"
            f"LEFT OUTER JOIN {right_item}\n"
            f"ON {on_sql}"
        )

    def _on_clause(self, op, left_alias, right_alias):
        disjuncts = []
        for branch in op.branches:
            conjuncts = []
            if branch.tag_column is not None:
                conjuncts.append(
                    f"{right_alias}.{_ident(branch.tag_column)} = "
                    f"{Literal(branch.tag_value).to_sql()}"
                )
            for l, r in branch.equalities:
                conjuncts.append(
                    f"{left_alias}.{_ident(l)} = {right_alias}.{_ident(r)}"
                )
            disjuncts.append("(" + " AND ".join(conjuncts or ["TRUE"]) + ")")
        return " OR ".join(disjuncts)

    def _render_union(self, op):
        out_cols = op.columns()
        branch_sqls = []
        for child in op.inputs:
            child_names = set(child.column_names())
            if isinstance(child, (Scan, Filter, Project, Distinct, InnerJoin)):
                distinct, items, from_parts, where = self._flatten(child)
                expr_of = {name: expr for expr, name in items}
                padded = []
                for col in out_cols:
                    if col.name in child_names:
                        padded.append((expr_of[col.name], col.name))
                    else:
                        padded.append(("NULL", col.name))
                branch_sqls.append(
                    self._select_sql(distinct, padded, from_parts, where)
                )
            else:
                _require_projected(child)
                alias = self._fresh_alias()
                qualified = []
                for col in out_cols:
                    if col.name in child_names:
                        qualified.append((f"{alias}.{_ident(col.name)}", col.name))
                    else:
                        qualified.append(("NULL", col.name))
                branch_sqls.append(
                    self._select_sql(False, qualified,
                                     [self._from_item(child, alias)], [])
                )
        keyword = "UNION" if op.distinct else "UNION ALL"
        return f"\n{keyword}\n".join(branch_sqls)


def _expr_sql(expr):
    if isinstance(expr, (ColumnRef, Literal)):
        return expr.to_sql() if isinstance(expr, Literal) else _ident(expr.name)
    raise QueryError(f"cannot render expression {expr!r}")


def _ident(name):
    """Column identifiers: base columns stay alias-qualified; generated
    names (Skolem-term variables, L tags) are plain identifiers.  Parts
    that collide with reserved words are double-quoted so the text is
    accepted verbatim by a real SQL parser (and our own)."""
    return quote_sql_ident(name.replace("$", "_"))


def _alias(name):
    """Output-column aliases are single identifiers: a dotted name (an
    unprojected ``alias.column``) quotes as one label, not a path."""
    return quote_sql_alias(name.replace("$", "_"))


def _qualify(name, op, left_alias, right_alias):
    left_names = set(op.left.column_names())
    alias = left_alias if name in left_names else right_alias
    return f"{alias}.{_ident(name)}"


def _require_projected(op):
    for col in op.columns():
        if "." in col.name:
            raise QueryError(
                f"cannot wrap unprojected column {col.name!r} in a derived "
                "table; project it to a plain name first"
            )


def _indent(text, prefix="  "):
    return "\n".join(prefix + line for line in text.splitlines())


# -- dialect adaptation -------------------------------------------------------

_DATE_LITERAL_RE = re.compile(r"\bDATE\s+('(?:[^']|'')*')")
_NULLS_FIRST_RE = re.compile(r"[ \t]+NULLS\s+FIRST\b")


def to_sqlite(sql):
    """Adapt one generated SQL statement to the SQLite dialect.

    The generated dialect is deliberately small, so only two rewrites are
    needed: ``DATE '...'`` literals become plain ISO-8601 strings (SQLite
    has no DATE literal; ISO text compares chronologically), and
    ``NULLS FIRST`` is dropped from ORDER BY keys (SQLite's default ASC
    order already places NULLs first, and older SQLite versions reject the
    clause).  Identifier quoting and the ``''`` string escaping are shared
    with SQLite already, so everything else passes through verbatim.
    """
    sql = _DATE_LITERAL_RE.sub(r"\1", sql)
    return _NULLS_FIRST_RE.sub("", sql)
