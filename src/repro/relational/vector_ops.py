"""Vectorized operator kernels: the batch engine's compiled plan bodies.

:func:`compile_plan` lowers a relational-algebra plan into a tree of
closures, one per operator, each mapping the runtime charge accumulator to
a :class:`~repro.relational.batch.Batch`.  Everything that the tuple
engine re-derives per execution — predicate dispatch, projection plans,
join key extractors, column positions, outer-join nesting depth,
fingerprints — is resolved once here, at compile time; the closures then
run tight C-level loops (listcomps, ``zip``, ``sorted``, ``dict``) over
whole columns in ``batch_size`` chunks.

The batch engine is the tuple engine's *identical twin*, not an
approximation.  Every kernel performs the same logical work in the same
order and applies the same cost-model formula to the same counts, so the
charge log — every ``(label, ms, rows)`` triple, in order — is
bit-identical to :meth:`QueryEngine._eval
<repro.relational.engine.QueryEngine.execute>`'s.  The load-bearing
details:

* sub-plan sharing: each compiled node checks the per-execution memo by
  fingerprint and charges the same ``rescan`` cost on hits, in the same
  recursion order (left before right);
* the outer-join re-evaluation penalty is a *running-total delta* around
  the right side's evaluation, reproduced with the same float arithmetic;
* union charges count rows after duplicate elimination, distinct uses
  first-occurrence order (``dict.fromkeys``), and sorts reproduce the
  ``NULLS FIRST`` relation of :class:`~repro.common.ordering.NoneFirst`
  exactly — including its ordering of mixed-type columns by type name —
  via stable single-key passes (last key first);
* sort cost samples the *input-order* rows through the engine's shared
  row-width estimator, so cached estimates agree across engines.

``charges.batches`` counts the chunks each operator label processed; the
engine publishes them as per-operator metrics when observability is on.
"""

import math
from operator import itemgetter

from repro.common.errors import ExecutionError
from repro.relational import algebra
from repro.relational.algebra import (
    Scan,
    Filter,
    Project,
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Sort,
    ColumnRef,
    Literal,
)
from repro.relational.batch import Batch, DEFAULT_BATCH_SIZE
from repro.relational.dependencies import plan_tables
from repro.common.errors import QueryError


def _key_plan(positions):
    """Compile join-key extraction: ``(extractor, single)``.

    Multi-column keys use :func:`operator.itemgetter` (a tuple per row, as
    before); single-column keys skip the tuple entirely — the scalar is the
    key and ``is None`` replaces the per-element NULL scan.
    """
    if not positions:
        return _EMPTY_KEY, False
    if len(positions) == 1:
        return itemgetter(positions[0]), True
    return itemgetter(*positions), False


def _EMPTY_KEY(row):
    return ()


def _hash_index(rows, key_get, single):
    """Hash-build ``rows`` into {key: [rows]}, skipping NULL keys."""
    index = {}
    setdefault = index.setdefault
    if single:
        for row in rows:
            key = key_get(row)
            if key is not None:
                setdefault(key, []).append(row)
    else:
        for row in rows:
            key = key_get(row)
            if None not in key:
                setdefault(key, []).append(row)
    return index


def compile_filter_kernel(predicate, positions):
    """Compile a filter predicate to a ``rows -> matching rows`` kernel.

    The comparison chain is inlined into a single list comprehension, so
    the selection runs as one loop with no per-row Python call.  Predicate
    shapes the expression compiler rejects fall back to per-row
    :meth:`~repro.relational.algebra.Comparison.evaluate`.
    """
    try:
        condition, consts = algebra.predicate_source(
            predicate, positions, var="r"
        )
    except QueryError:
        return lambda rows: [
            r for r in rows if predicate.evaluate(r, positions)
        ]
    return algebra.compile_source(
        f"lambda rows: [r for r in rows if {condition}]", consts
    )


class CompiledPlan:
    """One plan lowered to kernels for a fixed engine and batch size."""

    __slots__ = ("run", "columns", "batch_size")

    def __init__(self, run, columns, batch_size):
        #: ``run(charges) -> Batch`` — execute the whole plan.
        self.run = run
        self.columns = columns
        self.batch_size = batch_size


def compile_plan(plan, engine, batch_size=DEFAULT_BATCH_SIZE):
    """Lower ``plan`` into a :class:`CompiledPlan` bound to ``engine``'s
    database and cost model (both fixed for the engine's lifetime)."""
    compiler = _PlanCompiler(engine, batch_size)
    return CompiledPlan(compiler.compile(plan), plan.columns(), batch_size)


def _note_batches(charges, label, n, batch_size):
    """Count the chunks operator ``label`` processed (observability only;
    never touches the simulated clock)."""
    chunks = -(-n // batch_size) if n else 0
    charges.batches[label] = charges.batches.get(label, 0) + chunks


class _PlanCompiler:
    """Per-(engine, batch_size) lowering context.

    Kernels split into two halves.  The *charge* half — child evaluation
    order, memo checks, cost-model formulas, running-total deltas — always
    runs live, so the simulated clock and charge log are bit-identical to
    the tuple engine's on every execution.  The *data* half — the actual
    row work — is deterministic given the sub-plan fingerprint and the
    generations of the base tables the sub-plan reads, so its result
    :class:`Batch` is cached in the engine's
    :class:`~repro.relational.cache.NodeResultCache` under that dependency
    footprint and shared across executions; a mutation invalidates only
    the dependent entries, and sweep partitions overlap heavily, so most
    executions touch no rows at all.
    """

    def __init__(self, engine, batch_size):
        self.engine = engine
        self.model = engine.cost_model
        self.batch_size = batch_size
        self.results = engine._node_results

    def compile(self, op):
        """Compile one operator, wrapped in the shared-sub-plan memo check
        (the optimizer's common-subexpression reuse, as in ``_eval``)."""
        fresh = self._fresh(op)
        fingerprint = op.fingerprint()
        rescan_row_ms = self.model.rescan_row_ms

        def run(charges, _fp=fingerprint, _fresh=fresh,
                _rescan=rescan_row_ms):
            memo = charges.memo
            batch = memo.get(_fp)
            if batch is not None:
                charges.memo_hits += 1
                n = batch.length
                charges.charge("rescan", n * _rescan, n)
                return batch
            batch = _fresh(charges)
            memo[_fp] = batch
            return batch

        return run

    def _fresh(self, op):
        if isinstance(op, Scan):
            return self._scan(op)
        if isinstance(op, Filter):
            return self._filter(op)
        if isinstance(op, Project):
            return self._project(op)
        if isinstance(op, Distinct):
            return self._distinct(op)
        if isinstance(op, InnerJoin):
            return self._inner_join(op)
        if isinstance(op, LeftOuterJoin):
            return self._outer_join(op)
        if isinstance(op, OuterUnion):
            return self._union(op)
        if isinstance(op, Sort):
            return self._sort(op)
        raise ExecutionError(f"cannot compile operator {op!r}")

    # -- kernels ------------------------------------------------------------

    def _scan(self, op):
        database = self.engine.database
        table_name = op.table_schema.name
        arity = len(op.columns())
        scan_row_ms = self.model.scan_row_ms
        batch_size = self.batch_size
        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            batch = results.get(fp)
            if batch is None:
                rows = list(database.table(table_name).rows)
                batch = Batch.from_rows(rows, arity)
                results.store(fp, batch, tables)
            n = batch.length
            _note_batches(charges, "scan", n, batch_size)
            charges.charge("scan", n * scan_row_ms, n)
            return batch

        return fresh

    def _filter(self, op):
        child = self.compile(op.child)
        kernel = compile_filter_kernel(op.predicate, op.child.positions())
        arity = len(op.columns())
        filter_row_ms = self.model.filter_row_ms
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            batch = child(charges)
            n = batch.length
            result = results.get(fp)
            if result is None:
                rows = batch.rows(batch_size)
                if n > batch_size:
                    out = []
                    extend = out.extend
                    for start in range(0, n, batch_size):
                        extend(kernel(rows[start:start + batch_size]))
                else:
                    out = kernel(rows)
                result = Batch.from_rows(out, arity)
                results.store(fp, result, tables)
            _note_batches(charges, "filter", n, batch_size)
            charges.charge("filter", n * filter_row_ms, n)
            return result

        return fresh

    def _project(self, op):
        child = self.compile(op.child)
        positions = op.child.positions()
        plan = []
        for item in op.items:
            if isinstance(item.expr, ColumnRef):
                plan.append((True, positions[item.expr.name]))
            elif isinstance(item.expr, Literal):
                plan.append((False, item.expr.value))
            else:
                raise ExecutionError(f"unsupported projection {item.expr!r}")
        project_row_ms = self.model.project_row_ms
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            batch = child(charges)
            n = batch.length
            result = results.get(fp)
            if result is None:
                # Column references are shared (zero copy when the child is
                # column-backed); constant columns are built in one C-level
                # repeat instead of a per-row tuple rebuild.
                columns = [
                    batch.col(p) if is_col else [p] * n for is_col, p in plan
                ]
                result = Batch.from_columns(columns, n)
                results.store(fp, result, tables)
            _note_batches(charges, "project", n, batch_size)
            charges.charge("project", n * project_row_ms, n)
            return result

        return fresh

    def _distinct(self, op):
        child = self.compile(op.child)
        arity = len(op.columns())
        hash_row_ms = self.model.hash_row_ms
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            batch = child(charges)
            n = batch.length
            result = results.get(fp)
            if result is None:
                # dict.fromkeys is the C spelling of first-occurrence dedup
                # — the same output order as the tuple engine's seen-set
                # loop.
                out = list(dict.fromkeys(batch.rows(batch_size)))
                result = Batch.from_rows(out, arity)
                results.store(fp, result, tables)
            _note_batches(charges, "distinct", n, batch_size)
            charges.charge("distinct", n * hash_row_ms, n)
            return result

        return fresh

    def _inner_join(self, op):
        left = self.compile(op.left)
        right = self.compile(op.right)
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        build_get, build_single = _key_plan(
            [right_pos[r] for _, r in op.equalities]
        )
        probe_get, probe_single = _key_plan(
            [left_pos[l] for l, _ in op.equalities]
        )
        arity = len(op.columns())
        model = self.model
        hash_row_ms = model.hash_row_ms
        probe_row_ms = model.probe_row_ms
        join_out_row_ms = model.join_out_row_ms
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            left_batch = left(charges)
            right_batch = right(charges)
            n_left = left_batch.length
            n_right = right_batch.length
            result = results.get(fp)
            if result is None:
                left_rows = left_batch.rows(batch_size)
                right_rows = right_batch.rows(batch_size)
                index = _hash_index(right_rows, build_get, build_single)
                out = []
                append = out.append
                lookup = index.get
                if probe_single:
                    for row in left_rows:
                        key = probe_get(row)
                        if key is None:
                            continue
                        for match in lookup(key, ()):
                            append(row + match)
                else:
                    for row in left_rows:
                        key = probe_get(row)
                        if None in key:
                            continue
                        for match in lookup(key, ()):
                            append(row + match)
                result = Batch.from_rows(out, arity)
                results.store(fp, result, tables)
            _note_batches(charges, "join", n_left + n_right, batch_size)
            charges.charge(
                "join",
                n_right * hash_row_ms
                + n_left * probe_row_ms
                + result.length * join_out_row_ms,
                n_left + n_right,
            )
            return result

        return fresh

    def _outer_join(self, op):
        left = self.compile(op.left)
        right = self.compile(op.right)
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        null_pad = (None,) * len(op.right.columns())
        branch_plans = []
        for branch in op.branches:
            build_get, build_single = _key_plan(
                [right_pos[r] for _, r in branch.equalities]
            )
            tag_position = (
                right_pos[branch.tag_column]
                if branch.tag_column is not None else None
            )
            probe_get, probe_single = _key_plan(
                [left_pos[l] for l, _ in branch.equalities]
            )
            branch_plans.append(
                (build_get, build_single, tag_position, branch.tag_value,
                 probe_get, probe_single)
            )
        # 'Optimizer stress' is plan-structural: resolved at compile time.
        penalized = (
            algebra.outer_join_nesting(op.right)
            >= self.model.reevaluation_threshold
        )
        arity = len(op.columns())
        model = self.model
        hash_row_ms = model.hash_row_ms
        probe_row_ms = model.probe_row_ms
        join_out_row_ms = model.join_out_row_ms
        reevaluation_factor = model.reevaluation_factor
        speed = model.speed
        n_branches = len(op.branches)
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            left_batch = left(charges)
            # The re-evaluation penalty is a running-total delta around the
            # right side, with the same snapshot points as the tuple engine.
            right_start_ms = charges.total_ms
            right_batch = right(charges)
            right_cost_ms = charges.total_ms - right_start_ms
            n_left = left_batch.length
            n_right = right_batch.length

            cached = results.get(fp)
            if cached is None:
                left_rows = left_batch.rows(batch_size)
                right_rows = right_batch.rows(batch_size)
                branch_indexes = []
                build_work = 0
                for (build_get, build_single, tag_position, tag_value,
                     probe_get, probe_single) in branch_plans:
                    if tag_position is None:
                        candidates = right_rows
                    else:
                        candidates = [
                            row for row in right_rows
                            if row[tag_position] == tag_value
                        ]
                    index = _hash_index(candidates, build_get, build_single)
                    build_work += sum(
                        len(bucket) for bucket in index.values()
                    )
                    branch_indexes.append((probe_get, probe_single, index))

                out = []
                append = out.append
                for row in left_rows:
                    matched = False
                    for probe_get, probe_single, index in branch_indexes:
                        key = probe_get(row)
                        if (key is None) if probe_single else (None in key):
                            continue
                        for match in index.get(key, ()):
                            append(row + match)
                            matched = True
                    if not matched:
                        append(row + null_pad)
                cached = (Batch.from_rows(out, arity), build_work)
                results.store(fp, cached, tables)
            result, build_work = cached

            _note_batches(
                charges, "outer_join", n_left + n_right, batch_size
            )
            charges.charge(
                "outer_join",
                build_work * hash_row_ms
                + n_left * n_branches * probe_row_ms
                + result.length * join_out_row_ms,
                n_left + n_right,
            )
            if penalized:
                # Already-scaled ms: divide the speed back out (see the
                # tuple engine's twin charge).
                reevaluations = max(n_left - 1, 0)
                penalty = (
                    reevaluations * right_cost_ms * reevaluation_factor
                )
                if speed:
                    penalty /= speed
                charges.charge("outer_join_reevaluation", penalty)
            return result

        return fresh

    def _union(self, op):
        out_columns = op.column_names()
        width = len(out_columns)
        compiled_inputs = []
        for child in op.inputs:
            mapping = {
                name: i for i, name in enumerate(child.column_names())
            }
            slots = tuple(mapping.get(name) for name in out_columns)
            compiled_inputs.append((self.compile(child), slots))
        distinct = op.distinct
        union_row_ms = self.model.union_row_ms
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            # Children are always evaluated (in input order) so their
            # charges land; only this node's own column assembly is cached.
            child_batches = [
                child_run(charges) for child_run, _ in compiled_inputs
            ]
            out = results.get(fp)
            if out is None:
                columns = [[] for _ in range(width)]
                total = 0
                for batch, (_, slots) in zip(
                    child_batches, compiled_inputs
                ):
                    n = batch.length
                    total += n
                    for slot, column in zip(slots, columns):
                        if slot is None:
                            column.extend([None] * n)
                        else:
                            column.extend(batch.col(slot))
                out = Batch.from_columns(columns, total)
                if distinct:
                    deduped = list(dict.fromkeys(out.rows(batch_size)))
                    out = Batch.from_rows(deduped, width)
                results.store(fp, out, tables)
            n_out = out.length
            _note_batches(charges, "union", n_out, batch_size)
            charges.charge("union", n_out * union_row_ms, n_out)
            return out

        return fresh

    def _sort(self, op):
        child = self.compile(op.child)
        positions = op.child.positions()
        key_plan = [
            (positions[key], itemgetter(positions[key])) for key in op.keys
        ]
        child_fp = op.child.fingerprint()
        child_columns = op.child.columns()
        child_tables = plan_tables(op.child)
        engine = self.engine
        arity = len(op.columns())
        model = self.model
        sort_cmp_ms = model.sort_cmp_ms
        sort_width_norm = model.sort_width_norm
        sort_memory_bytes = model.sort_memory_bytes
        spill_factor = model.spill_factor
        batch_size = self.batch_size

        results = self.results
        fp = op.fingerprint()
        tables = plan_tables(op)

        def fresh(charges):
            batch = child(charges)
            n = batch.length
            result = results.get(fp)
            if result is None:
                rows = batch.rows(batch_size)
                if key_plan and n:
                    # Stable single-key passes, last key first:
                    # lexicographic by (k1, k2, ...) with ties in input
                    # order — exactly the tuple engine's
                    # sorted(key=sort_key(...)).
                    out = rows
                    for position, getter in reversed(key_plan):
                        out = _sort_pass(out, batch.col(position), position,
                                         getter)
                else:
                    out = list(rows)
                result = Batch.from_rows(out, arity)
                results.store(fp, result, tables)

            if n:
                # Width sampling sees the *input-order* rows, as in the
                # tuple engine; the estimate is cached per (child plan,
                # dependency generations) and shared across engines.
                row_bytes = engine._row_bytes_for(
                    child_fp, child_columns, batch.rows(batch_size),
                    child_tables,
                )
                comparisons = n * math.log2(n + 1)
                cost = comparisons * sort_cmp_ms * (
                    1.0 + row_bytes / sort_width_norm
                )
                total_bytes = n * row_bytes
                if total_bytes > sort_memory_bytes:
                    overflow = total_bytes / sort_memory_bytes - 1.0
                    cost *= 1.0 + spill_factor * overflow
                _note_batches(charges, "sort", n, batch_size)
                charges.charge("sort", cost, n)
            return result

        return fresh


def _sort_pass(rows, column, position, getter):
    """One stable ``NULLS FIRST`` pass over ``rows`` by ``column``.

    Replicates the :class:`~repro.common.ordering.NoneFirst` relation
    without a per-comparison wrapper object: NULLs sort first (stable
    among themselves); non-NULL values of one type compare raw (the fast
    path — a single C-keyed sort); a mixed-type column falls back to the
    (type name, value) rank NoneFirst defines.
    """
    kinds = set(map(type, column))
    has_none = type(None) in kinds
    kinds.discard(type(None))
    if len(kinds) > 1:
        def key(row, _p=position):
            value = row[_p]
            return (type(value).__name__, value)
    else:
        key = getter
    if not has_none:
        return sorted(rows, key=key)
    null_rows = []
    value_rows = []
    null_append = null_rows.append
    value_append = value_rows.append
    for row in rows:
        if row[position] is None:
            null_append(row)
        else:
            value_append(row)
    value_rows.sort(key=key)
    null_rows.extend(value_rows)
    return null_rows
