"""The database catalog: tables plus statistics.

Statistics (cardinality, per-column distinct counts, average widths, null
fractions) feed the :class:`repro.relational.estimator.CostEstimator`, the
"oracle" the greedy planner consults.  They are computed once per table via
:meth:`Database.analyze`, mirroring an RDBMS's ``ANALYZE``.
"""

import itertools
from dataclasses import dataclass

from repro.common.errors import SchemaError
from repro.relational.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column."""

    n_distinct: int
    null_fraction: float
    avg_width: float


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table."""

    row_count: int
    avg_row_width: float
    columns: dict  # column name -> ColumnStats

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"no statistics for column {name!r}") from None


class Database:
    """A named collection of tables with integrity checking and statistics."""

    #: Distinguishes database *instances* in cache keys (a plain counter,
    #: unlike ``id()`` never reused within a process).
    _tokens = itertools.count()

    def __init__(self, schema):
        self.schema = schema
        self.tables = {name: Table(schema.table(name)) for name in schema.table_names}
        self._stats = {}
        self._token = next(Database._tokens)

    @property
    def generation(self):
        """Monotonic data-version counter, bumped by any table mutation
        (inserts through :meth:`insert` or directly on a table).  Result
        caches key on it so a stale entry can never be served."""
        return sum(table.version for table in self.tables.values())

    def cache_key(self):
        """What identifies this database's current contents in a
        :class:`repro.relational.cache.PlanResultCache` key."""
        return (self._token, self.generation)

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def insert(self, table_name, *values, **named):
        return self.table(table_name).insert(*values, **named)

    def check_foreign_keys(self):
        """Verify every foreign key; raise :class:`SchemaError` on the first
        violation.  Returns the number of references checked."""
        checked = 0
        for fk in self.schema.foreign_keys:
            source = self.table(fk.table)
            target = self.table(fk.ref_table)
            positions = [source.schema.column_index(c) for c in fk.columns]
            for row in source.rows:
                ref = tuple(row[p] for p in positions)
                if any(v is None for v in ref):
                    if fk.not_null:
                        raise SchemaError(
                            f"{fk.table}.{fk.columns}: NULL in NOT NULL foreign key"
                        )
                    continue
                if target.lookup_key(ref) is None:
                    raise SchemaError(
                        f"{fk.table}{fk.columns} -> {fk.ref_table}: "
                        f"dangling reference {ref}"
                    )
                checked += 1
        return checked

    def analyze(self):
        """Compute and cache statistics for every table."""
        for name, table in self.tables.items():
            self._stats[name] = _compute_stats(table)
        return dict(self._stats)

    def stats(self, table_name):
        """Statistics for one table, computing them on first use."""
        if table_name not in self._stats:
            self._stats[table_name] = _compute_stats(self.table(table_name))
        return self._stats[table_name]

    def total_rows(self):
        return sum(len(t) for t in self.tables.values())

    def total_bytes(self):
        """Approximate data volume, used to describe configurations."""
        return sum(
            len(table) * table.average_row_width()
            for table in self.tables.values()
        )

    def __repr__(self):
        parts = ", ".join(f"{n}:{len(t)}" for n, t in self.tables.items())
        return f"Database({parts})"


def _compute_stats(table):
    columns = {}
    for column in table.schema.columns:
        values = table.column_values(column.name)
        non_null = [v for v in values if v is not None]
        n = len(values)
        columns[column.name] = ColumnStats(
            n_distinct=len(set(non_null)),
            null_fraction=0.0 if n == 0 else (n - len(non_null)) / n,
            avg_width=(
                sum(column.sql_type.value_width(v) for v in non_null) / len(non_null)
                if non_null
                else 0.0
            ),
        )
    return TableStats(
        row_count=len(table),
        avg_row_width=table.average_row_width(),
        columns=columns,
    )
