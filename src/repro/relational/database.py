"""The database catalog: tables plus statistics and the mutation API.

Statistics (cardinality, per-column distinct counts, average widths, null
fractions) feed the :class:`repro.relational.estimator.CostEstimator`, the
"oracle" the greedy planner consults.  They are computed once per table via
:meth:`Database.analyze`, mirroring an RDBMS's ``ANALYZE``, and refreshed
lazily when the table's generation moves.

Mutations (:meth:`Database.insert` / :meth:`Database.update` /
:meth:`Database.delete`) bump **per-table** generation counters
(:attr:`repro.relational.table.Table.version`).  The result caches key on
the generations of exactly the tables a plan reads
(:meth:`dependency_key`), so a write invalidates only the cached results
that actually depend on the touched tables — the incremental-maintenance
story of the delta-propagation layer.  The summed :attr:`generation` and
:meth:`cache_key` survive as the coarse whole-database version.
"""

import itertools
from contextlib import contextmanager
from dataclasses import dataclass

from repro.common.errors import SchemaError, WalError
from repro.relational.table import Table
from repro.relational.types import SqlType


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column."""

    n_distinct: int
    null_fraction: float
    avg_width: float


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table."""

    row_count: int
    avg_row_width: float
    columns: dict  # column name -> ColumnStats

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"no statistics for column {name!r}") from None


class Database:
    """A named collection of tables with integrity checking and statistics."""

    #: Distinguishes database *instances* in cache keys (a plain counter,
    #: unlike ``id()`` never reused within a process).
    _tokens = itertools.count()

    def __init__(self, schema):
        self.schema = schema
        self.tables = {name: Table(schema.table(name)) for name in schema.table_names}
        self._stats = {}  # table name -> (table version, TableStats)
        self._token = next(Database._tokens)
        self._wal = None
        self._txn = None

    @property
    def wal(self):
        """The attached :class:`~repro.relational.wal.WriteAheadLog`, or
        None when mutations are memory-only."""
        return self._wal

    def attach_wal(self, wal):
        """Bind this database to a write-ahead log: every subsequent
        mutation is logged + fsynced before it is applied.  Use
        :meth:`~repro.relational.wal.WriteAheadLog.attach` (which calls
        this) so restore-on-restart happens too."""
        if self._wal is not None:
            raise WalError("database is already attached to a WAL")
        self._wal = wal

    @property
    def generation(self):
        """Monotonic data-version counter, bumped by any table mutation
        (through the :meth:`insert`/:meth:`update`/:meth:`delete` API or
        directly on a table).  The coarse whole-database version; the
        result caches key on the finer per-table
        :meth:`table_generations`."""
        return sum(table.version for table in self.tables.values())

    def cache_key(self):
        """What identifies this database's current contents as a whole —
        the coarse key; plans are cached under the dependency-scoped
        :meth:`dependency_key` of the tables they read."""
        return (self._token, self.generation)

    def table_generations(self):
        """The per-table generation map ``{table name: version}`` — the
        vector a sweep pins to detect mid-run mutations and the caches
        diff to invalidate only dependent entries."""
        return {name: table.version for name, table in self.tables.items()}

    def dependency_key(self, tables):
        """The cache-key component identifying the current contents of
        ``tables`` (an iterable of table names): the instance token plus
        each table's generation, sorted by name.  A mutation of any
        *other* table leaves this key — and every cache entry under it —
        valid."""
        return (
            self._token,
            tuple(
                (name, self.tables[name].version) for name in sorted(tables)
            ),
        )

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def insert(self, table_name, *values, **named):
        """Insert one row.  With a WAL attached the physical row is
        logged and fsynced *before* it is applied (log-then-apply), so a
        crash after this returns cannot lose the write."""
        table = self.table(table_name)
        if self._wal is None:
            return table.insert(*values, **named)
        from repro.relational import wal as _wal

        row = table.prepare_row(values, named)
        op = _wal.insert_op(table_name, row, table.version + 1)
        if self._txn is not None:
            table._append_row(row)
            self._txn.ops.append(op)
            return row
        self._wal.append([op])
        table._append_row(row)
        self._wal.maybe_checkpoint(self)
        return row

    def update(self, table_name, where, changes):
        """Update rows of ``table_name`` matching ``where``; returns the
        matched-row count.  ``where`` is a ``{column: value}`` equality
        mapping or a callable over the row dict; ``changes`` maps columns
        to new values (or callables over the row dict).  Order-preserving:
        updated rows keep their slots, so unaffected plans replay
        byte-identically.  With a WAL attached the *computed* new rows
        are logged value-by-value before the commit — replay never
        re-runs the callables."""
        table = self.table(table_name)
        if self._wal is None:
            return table.update(where, changes)
        from repro.relational import wal as _wal

        plan = table.plan_update(where, changes)
        if plan is None:
            return 0
        op = _wal.update_op(table_name, plan[1], table.version + 1)
        if self._txn is not None:
            count = table.commit_plan(plan)
            self._txn.ops.append(op)
            return count
        self._wal.append([op])
        count = table.commit_plan(plan)
        self._wal.maybe_checkpoint(self)
        return count

    def delete(self, table_name, where):
        """Delete rows of ``table_name`` matching ``where``; returns the
        deleted-row count.  Surviving rows keep their relative order.
        With a WAL attached the victims' primary keys are logged before
        the commit."""
        table = self.table(table_name)
        if self._wal is None:
            return table.delete(where)
        from repro.relational import wal as _wal

        plan = table.plan_delete(where)
        if plan is None:
            return 0
        op = _wal.delete_op(table_name, plan[1], table.version + 1)
        if self._txn is not None:
            count = table.commit_plan(plan)
            self._txn.ops.append(op)
            return count
        self._wal.append([op])
        count = table.commit_plan(plan)
        self._wal.maybe_checkpoint(self)
        return count

    @contextmanager
    def transaction(self, request_id=None):
        """Group several mutations into ONE durable commit record.

        Inside the block mutations apply eagerly (reads see them) but
        their physical ops are buffered; on clean exit they are appended
        to the WAL as a single checksummed record — the group is atomic
        on disk: a crash mid-block loses all of it, a crash after the
        block's fsync loses none.  ``request_id`` (with the recorder's
        ``result`` attribute) feeds the exactly-once dedup map.  Without
        an attached WAL the block is a plain pass-through recorder.
        Nesting raises :class:`~repro.common.errors.WalError`; an
        exception inside the block logs nothing (in-memory effects of
        already-applied ops remain — callers treat that as a failed
        request and do not acknowledge it).
        """
        from repro.relational.wal import WalTransaction

        if self._txn is not None:
            raise WalError("transaction() groups do not nest")
        txn = WalTransaction(request_id)
        self._txn = txn
        try:
            yield txn
        except BaseException:
            self._txn = None
            raise
        self._txn = None
        if self._wal is not None and (txn.ops or request_id is not None):
            self._wal.append(
                txn.ops, request_id=request_id, result=txn.result
            )
            self._wal.maybe_checkpoint(self)

    def check_foreign_keys(self):
        """Verify every foreign key; raise :class:`SchemaError` on the first
        violation.  Returns the number of references checked."""
        checked = 0
        for fk in self.schema.foreign_keys:
            source = self.table(fk.table)
            target = self.table(fk.ref_table)
            positions = [source.schema.column_index(c) for c in fk.columns]
            for row in source.rows:
                ref = tuple(row[p] for p in positions)
                if any(v is None for v in ref):
                    if fk.not_null:
                        raise SchemaError(
                            f"{fk.table}.{fk.columns}: NULL in NOT NULL foreign key"
                        )
                    continue
                if target.lookup_key(ref) is None:
                    raise SchemaError(
                        f"{fk.table}{fk.columns} -> {fk.ref_table}: "
                        f"dangling reference {ref}"
                    )
                checked += 1
        return checked

    def analyze(self):
        """Compute and cache statistics for every table."""
        for name, table in self.tables.items():
            self._stats[name] = (table.version, _compute_stats(table))
        return {name: stats for name, (_, stats) in self._stats.items()}

    def stats(self, table_name):
        """Statistics for one table, computed on first use and refreshed
        when the table's generation has moved since (so the planner's
        oracle never reasons from pre-mutation cardinalities)."""
        table = self.table(table_name)
        cached = self._stats.get(table_name)
        if cached is None or cached[0] != table.version:
            cached = (table.version, _compute_stats(table))
            self._stats[table_name] = cached
        return cached[1]

    def total_rows(self):
        return sum(len(t) for t in self.tables.values())

    def total_bytes(self):
        """Approximate data volume, used to describe configurations."""
        return sum(
            len(table) * table.average_row_width()
            for table in self.tables.values()
        )

    def __repr__(self):
        parts = ", ".join(f"{n}:{len(t)}" for n, t in self.tables.items())
        return f"Database({parts})"


def _compute_stats(table):
    columns = {}
    for column in table.schema.columns:
        values = table.column_values(column.name)
        non_null = [v for v in values if v is not None]
        n = len(values)
        columns[column.name] = ColumnStats(
            n_distinct=len(set(non_null)),
            null_fraction=0.0 if n == 0 else (n - len(non_null)) / n,
            avg_width=(
                sum(column.sql_type.value_width(v) for v in non_null) / len(non_null)
                if non_null
                else 0.0
            ),
        )
    return TableStats(
        row_count=len(table),
        avg_row_width=table.average_row_width(),
        columns=columns,
    )


def synthesize_rows(database, table_name, count, seed=0):
    """``count`` schema-valid rows ready to insert into ``table_name``.

    The deterministic delta generator behind ``repro mutate`` and the IVM
    benchmark: foreign-key columns pick existing referenced keys (so the
    new rows *join* — the delta is visible in materialized views), free
    key columns take fresh values past the current maximum, and the
    composed key tuple is advanced past any collision.  Returns a list of
    row tuples; insert them with :meth:`Database.insert`.
    """
    table = database.table(table_name)
    schema = table.schema
    fk_columns = {}
    for fk in database.schema.foreign_keys:
        if fk.table != table_name:
            continue
        for column, ref_column in zip(fk.columns, fk.ref_columns):
            fk_columns[column] = (fk.ref_table, ref_column)
    key_positions = {schema.column_index(k) for k in schema.key}
    fresh_base = {}
    for position, column in enumerate(schema.columns):
        if position in key_positions and column.name not in fk_columns:
            existing = [
                v for v in table.column_values(column.name)
                if isinstance(v, int)
            ]
            fresh_base[column.name] = (max(existing) + 1) if existing else 1

    def candidate(i, shift):
        values = []
        for position, column in enumerate(schema.columns):
            name = column.name
            if name in fk_columns:
                ref_table, ref_column = fk_columns[name]
                pool = database.table(ref_table).column_values(ref_column)
                if not pool:
                    raise SchemaError(
                        f"cannot synthesize {table_name} rows: referenced "
                        f"table {ref_table} is empty"
                    )
                values.append(pool[(seed + i + shift) % len(pool)])
            elif name in fresh_base:
                values.append(fresh_base[name] + i)
            elif column.sql_type is SqlType.INTEGER:
                values.append(seed + i + 1)
            elif column.sql_type is SqlType.DECIMAL:
                values.append(float(seed + i + 1))
            elif column.sql_type is SqlType.DATE:
                import datetime

                values.append(
                    datetime.date(1995, 1, 1)
                    + datetime.timedelta(days=(seed + i) % 365)
                )
            else:
                values.append(f"delta-{seed}-{i}")
        return tuple(values)

    key_index_positions = [schema.column_index(k) for k in schema.key]
    taken = set(
        tuple(row[p] for p in key_index_positions) for row in table.rows
    )
    rows = []
    for i in range(count):
        for shift in range(count * 8 + 64):
            row = candidate(i, shift)
            key = tuple(row[p] for p in key_index_positions)
            if key not in taken:
                taken.add(key)
                rows.append(row)
                break
        else:
            raise SchemaError(
                f"cannot synthesize a fresh key for {table_name} "
                f"(row {i} of {count})"
            )
    return rows
