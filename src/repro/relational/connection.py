"""Simulated client/server connection: tuple streams and transfer timing.

The paper measures two times per plan (Sec. 4):

* **query-only time** — until the first tuple is read from a stream; since
  every generated query ends in a blocking ORDER BY, this equals server
  execution time (the paper confirms: "The time to first tuple is
  comparable to the time to count all tuples in the result on the server"),
* **total time** — query time plus binding/transferring every tuple to the
  client over JDBC.

The transfer model charges per row and per field, with NULL fields costing a
small marker.  It also implements the paper's observed *"anomalous caching
behavior in JDBC"* for wide rows: rows whose effective width exceeds a
threshold pay a super-linear penalty.  For union-shaped results the driver
can use the compact per-branch row format (most columns are NULL and skipped
cheaply), so their effective width is the non-null field count; rows
produced by a wide outer join bind every declared column.
"""

from dataclasses import dataclass, field

from repro.common.errors import PlanError, TimeoutExceeded
from repro.relational.engine import QueryEngine
from repro.relational.types import width_function


@dataclass(frozen=True)
class TransferModel:
    """Client-side binding/transfer coefficients, in simulated ms."""

    row_ms: float = 0.25
    field_ms: float = 0.02
    byte_ms: float = 0.004
    null_field_ms: float = 0.012
    wide_threshold: int = 10      # columns before the wide-row penalty starts
    wide_row_factor: float = 0.25  # penalty per column beyond the threshold


@dataclass(frozen=True)
class SourceDescription:
    """What the target RDBMS supports (Sec. 3.4: "SilkRoute chooses
    permissible plans based on the source description of the underlying
    RDBMS") plus which constraints may be assumed for labeling."""

    supports_left_outer_join: bool = True
    supports_union: bool = True
    supports_with: bool = False
    enforces_foreign_keys: bool = True

    def check_plan_features(self, uses_outer_join, uses_union):
        """Raise :class:`PlanError` if a plan needs unsupported features."""
        if uses_outer_join and not self.supports_left_outer_join:
            raise PlanError("target RDBMS does not support LEFT OUTER JOIN")
        if uses_union and not self.supports_union:
            raise PlanError("target RDBMS does not support UNION")


class TupleStream:
    """One executed query's sorted result stream with its simulated timings."""

    def __init__(self, columns, rows, server_ms, transfer_ms, sql=None, label=None):
        self.columns = columns
        self.rows = rows
        self.server_ms = server_ms
        self.transfer_ms = transfer_ms
        self.sql = sql
        self.label = label

    @property
    def total_ms(self):
        return self.server_ms + self.transfer_ms

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return (
            f"TupleStream({self.label or '?'}: {len(self.rows)} rows, "
            f"query {self.server_ms:.1f}ms + transfer {self.transfer_ms:.1f}ms)"
        )


class TupleCursor:
    """A *streaming* query result: rows are produced on demand.

    The iterator twin of :class:`TupleStream` — ``Connection.execute_iter``
    returns one instead of a materialized stream.  Iterating drives the
    engine's Volcano pipeline row by row; per-row transfer cost is charged
    as each row crosses the client boundary, with the same per-row formula
    (and float accumulation order) as the materializing path, so after
    exhaustion ``transfer_ms`` matches ``TupleStream.transfer_ms`` and
    ``server_ms`` matches the batch engine's — both bit-identically.

    ``server_ms`` / ``transfer_ms`` / ``rows_read`` read the charges
    accumulated *so far*; they are final once :attr:`exhausted` is True.
    A :class:`~repro.common.errors.TimeoutExceeded` budget overrun
    surfaces from the consuming ``next()`` call.
    """

    def __init__(self, iter_result, row_cost_fn, sql=None, label=None):
        self.columns = iter_result.columns
        self.sql = sql
        self.label = label
        self.transfer_ms = 0.0
        self.rows_read = 0
        self._iter_result = iter_result

        def rows():
            try:
                for row in iter_result:
                    self.transfer_ms += row_cost_fn(row)
                    self.rows_read += 1
                    yield row
            except TimeoutExceeded as exc:
                if exc.stream_label is None:
                    exc.stream_label = self.label
                raise
        self._rows = rows()

    @property
    def server_ms(self):
        return self._iter_result.server_ms

    @property
    def exhausted(self):
        return self._iter_result.exhausted

    @property
    def total_ms(self):
        return self.server_ms + self.transfer_ms

    def __iter__(self):
        return self._rows

    def __repr__(self):
        state = "done" if self.exhausted else "open"
        return (
            f"TupleCursor({self.label or '?'}: {self.rows_read} rows {state}, "
            f"query {self.server_ms:.1f}ms + transfer {self.transfer_ms:.1f}ms)"
        )


class Connection:
    """A client connection to the simulated RDBMS.

    ``cache`` optionally installs a
    :class:`~repro.relational.cache.PlanResultCache` on the engine: plans
    already executed against the current database generation are replayed
    (byte-identical results and simulated timings) instead of re-evaluated.
    """

    def __init__(self, database, cost_model, transfer_model=None, cache=None):
        self.database = database
        self.engine = QueryEngine(database, cost_model, cache=cache)
        self.transfer_model = transfer_model or TransferModel()

    @property
    def cache(self):
        """The engine's :class:`PlanResultCache` (or None)."""
        return self.engine.cache

    @cache.setter
    def cache(self, cache):
        self.engine.cache = cache

    def sql(self, text, budget_ms=None, label=None):
        """Execute SQL *text* (the generated dialect) and return a
        :class:`TupleStream` — a small SQL console over the simulated
        engine, closing the middle-ware loop the other way around."""
        from repro.relational.sqlparse import parse_sql

        plan = parse_sql(text, self.database.schema)
        return self.execute(plan, sql=text, label=label, budget_ms=budget_ms)

    def execute(self, plan, compact_rows=False, budget_ms=None, sql=None, label=None):
        """Execute ``plan`` and return a :class:`TupleStream`.

        ``compact_rows`` marks union-shaped results whose driver-side row
        format skips NULL columns (see module docstring).  ``budget_ms``
        bounds *server* time (the paper's per-subquery timeout).
        """
        result = self.engine.execute(plan, budget_ms=budget_ms)
        transfer_ms = self._transfer_cost(result.columns, result.rows, compact_rows)
        return TupleStream(
            columns=result.columns,
            rows=result.rows,
            server_ms=result.server_ms,
            transfer_ms=transfer_ms,
            sql=sql,
            label=label,
        )

    def execute_iter(self, plan, compact_rows=False, budget_ms=None, sql=None,
                     label=None):
        """Execute ``plan`` streaming; return a :class:`TupleCursor`.

        The engine runs its Volcano pipeline
        (:meth:`~repro.relational.engine.QueryEngine.execute_iter`), so
        neither the server result nor the client-side rows are ever held as
        a whole — memory stays bounded by the largest pipeline-breaker
        (typically the final ORDER BY, whose buffer is drained
        destructively).  Budget overruns raise from the consuming
        ``next()``.  A result-cache hit replays its charge log and streams
        the cached rows; misses are *not* inserted (that would require
        materializing).
        """
        try:
            iter_result = self.engine.execute_iter(plan, budget_ms=budget_ms)
        except TimeoutExceeded as exc:
            # The startup charge alone blew the budget — the cursor was
            # never built, so label the error here.
            if exc.stream_label is None:
                exc.stream_label = label
            raise
        return TupleCursor(
            iter_result,
            self._row_cost_fn(iter_result.columns, compact_rows),
            sql=sql,
            label=label,
        )

    def _row_cost_fn(self, columns, compact_rows):
        """The per-row transfer charge as a compiled closure — shared by the
        materializing and streaming paths so both accumulate identical
        per-row costs in identical order."""
        model = self.transfer_model
        declared_width = len(columns)
        width_fns = [width_function(col.sql_type) for col in columns]
        row_ms = model.row_ms
        field_ms = model.field_ms
        byte_ms = model.byte_ms
        null_field_ms = model.null_field_ms
        # The paper's "anomalous caching behavior in JDBC": rows produced
        # by a wide outer join bind every declared column and pay a
        # super-linear penalty; union-shaped results use the compact
        # per-branch row format and do not.
        wide = not compact_rows and declared_width > model.wide_threshold
        if wide:
            wide_factor = 1.0 + model.wide_row_factor * (
                declared_width - model.wide_threshold
            )

        def cost(row):
            ms = row_ms
            for fn, value in zip(width_fns, row):
                if value is None:
                    ms += null_field_ms
                else:
                    ms += field_ms + fn(value) * byte_ms
            if wide:
                ms *= wide_factor
            return ms

        return cost

    def _transfer_cost(self, columns, rows, compact_rows):
        row_cost = self._row_cost_fn(columns, compact_rows)
        total = 0.0
        for row in rows:
            total += row_cost(row)
        return total
