"""Simulated client/server connection: tuple streams and transfer timing.

The paper measures two times per plan (Sec. 4):

* **query-only time** — until the first tuple is read from a stream; since
  every generated query ends in a blocking ORDER BY, this equals server
  execution time (the paper confirms: "The time to first tuple is
  comparable to the time to count all tuples in the result on the server"),
* **total time** — query time plus binding/transferring every tuple to the
  client over JDBC.

The transfer model charges per row and per field, with NULL fields costing a
small marker.  It also implements the paper's observed *"anomalous caching
behavior in JDBC"* for wide rows: rows whose effective width exceeds a
threshold pay a super-linear penalty.  For union-shaped results the driver
can use the compact per-branch row format (most columns are NULL and skipped
cheaply), so their effective width is the non-null field count; rows
produced by a wide outer join bind every declared column.
"""

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import (
    PlanError,
    TimeoutExceeded,
    TransientConnectionError,
)
from repro.obs import obs_parts
from repro.relational.backends.base import (
    Backend,
    align_backend_rows,
    resolve_backend,
)
from repro.relational.cache import resolve_cache
from repro.relational.engine import QueryEngine
from repro.relational.sqltext import render_sql
from repro.relational.types import width_function


@dataclass(frozen=True)
class TransferModel:
    """Client-side binding/transfer coefficients, in simulated ms."""

    row_ms: float = 0.25
    field_ms: float = 0.02
    byte_ms: float = 0.004
    null_field_ms: float = 0.012
    wide_threshold: int = 10      # columns before the wide-row penalty starts
    wide_row_factor: float = 0.25  # penalty per column beyond the threshold


@dataclass(frozen=True)
class SourceDescription:
    """What the target RDBMS supports (Sec. 3.4: "SilkRoute chooses
    permissible plans based on the source description of the underlying
    RDBMS") plus which constraints may be assumed for labeling."""

    supports_left_outer_join: bool = True
    supports_union: bool = True
    supports_with: bool = False
    enforces_foreign_keys: bool = True

    def check_plan_features(self, uses_outer_join, uses_union):
        """Raise :class:`PlanError` if a plan needs unsupported features."""
        if uses_outer_join and not self.supports_left_outer_join:
            raise PlanError("target RDBMS does not support LEFT OUTER JOIN")
        if uses_union and not self.supports_union:
            raise PlanError("target RDBMS does not support UNION")


class TupleStream:
    """One executed query's sorted result stream with its simulated timings.

    ``fault_latency_ms`` is simulated connection latency injected by an
    installed :class:`~repro.relational.faults.FaultPolicy` on the
    successful attempt — kept separate from ``server_ms`` so fault-free
    and faulted runs report identical query/transfer times (resilience
    overhead is accounted in the plan report's ``backoff_ms`` /
    ``fault_latency_ms`` and the elapsed makespans instead).
    """

    def __init__(self, columns, rows, server_ms, transfer_ms, sql=None, label=None):
        self.columns = columns
        self.rows = rows
        self.server_ms = server_ms
        self.transfer_ms = transfer_ms
        self.sql = sql
        self.label = label
        self.fault_latency_ms = 0.0
        #: Name of the backend that cross-validated this stream (None for
        #: pure simulation) and its measured wall-clock milliseconds —
        #: reporting only, never part of the simulated timings.
        self.backend = None
        self.backend_wall_ms = 0.0

    @property
    def total_ms(self):
        return self.server_ms + self.transfer_ms

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return (
            f"TupleStream({self.label or '?'}: {len(self.rows)} rows, "
            f"query {self.server_ms:.1f}ms + transfer {self.transfer_ms:.1f}ms)"
        )


class TupleCursor:
    """A *streaming* query result: rows are produced on demand.

    The iterator twin of :class:`TupleStream` — ``Connection.execute_iter``
    returns one instead of a materialized stream.  Iterating drives the
    engine's Volcano pipeline row by row; per-row transfer cost is charged
    as each row crosses the client boundary, with the same per-row formula
    (and float accumulation order) as the materializing path, so after
    exhaustion ``transfer_ms`` matches ``TupleStream.transfer_ms`` and
    ``server_ms`` matches the batch engine's — both bit-identically.

    ``server_ms`` / ``transfer_ms`` / ``rows_read`` read the charges
    accumulated *so far*; they are final once :attr:`exhausted` is True.
    A :class:`~repro.common.errors.TimeoutExceeded` budget overrun
    surfaces from the consuming ``next()`` call.

    A cursor is a context manager: abandoning one mid-stream (a degraded
    stream spliced out of a merge, an aborted export) should
    :meth:`close` it so the engine's pipeline-breaker buffers are dropped
    promptly instead of lingering until garbage collection.
    """

    def __init__(self, iter_result, row_cost_fn, sql=None, label=None):
        self.columns = iter_result.columns
        self.sql = sql
        self.label = label
        self.transfer_ms = 0.0
        self.rows_read = 0
        self.closed = False
        #: Backend identity + wall clock, as on :class:`TupleStream`.  For
        #: a real backend the cross-validation runs when the cursor is
        #: exhausted (the oracle rows only exist once streamed).
        self.backend = None
        self.backend_wall_ms = 0.0
        self._iter_result = iter_result

        def rows():
            try:
                for row in iter_result:
                    self.transfer_ms += row_cost_fn(row)
                    self.rows_read += 1
                    yield row
            except TimeoutExceeded as exc:
                if exc.stream_label is None:
                    exc.stream_label = self.label
                raise
        self._rows = rows()

    @property
    def server_ms(self):
        return self._iter_result.server_ms

    @property
    def exhausted(self):
        return self._iter_result.exhausted

    @property
    def total_ms(self):
        return self.server_ms + self.transfer_ms

    def __iter__(self):
        return self._rows

    def close(self):
        """Release the cursor: close the client-side row generator and the
        engine's iterator pipeline, dropping every pipeline-breaker buffer
        (sort runs, hash indexes, shared-subplan memos).  Charges stay
        frozen at the rows consumed so far.  Idempotent; iterating a
        closed cursor yields nothing further."""
        if self.closed:
            return
        self.closed = True
        self._rows.close()
        self._iter_result.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self.closed else (
            "done" if self.exhausted else "open"
        )
        return (
            f"TupleCursor({self.label or '?'}: {self.rows_read} rows {state}, "
            f"query {self.server_ms:.1f}ms + transfer {self.transfer_ms:.1f}ms)"
        )


class Connection:
    """A client connection to the simulated RDBMS.

    ``cache`` optionally installs a
    :class:`~repro.relational.cache.PlanResultCache` on the engine: plans
    already executed against the current database generation are replayed
    (byte-identical results and simulated timings) instead of re-evaluated.
    The cache always lives on the engine; this parameter and the
    :attr:`cache` property (like ``SilkRoute(cache=...)``) are views of
    the same slot, normalized by
    :func:`~repro.relational.cache.resolve_cache` — pass ``True`` for a
    fresh cache or an instance to share one.

    ``faults`` installs a :class:`~repro.relational.faults.FaultPolicy`:
    stream executions then draw deterministic transient failures
    (:class:`~repro.common.errors.TransientConnectionError`) and simulated
    connection latency, which the resilient dispatcher
    (:func:`~repro.relational.dispatch.execute_specs` with a
    :class:`~repro.relational.faults.RetryPolicy`) retries, breaks, or
    degrades around.
    """

    def __init__(self, database, cost_model, transfer_model=None, cache=None,
                 faults=None, engine="batch", batch_size=None, backend=None):
        self.database = database
        self.engine = QueryEngine(database, cost_model,
                                  cache=resolve_cache(cache),
                                  engine=engine, batch_size=batch_size)
        self.transfer_model = transfer_model or TransferModel()
        self.faults = faults
        #: Default :class:`~repro.relational.backends.Backend` (or None for
        #: pure simulation); per-call ``backend=`` overrides.  String names
        #: are resolved once and memoized so repeated ``backend="sqlite"``
        #: calls share one loaded mirror.
        self.backend = resolve_backend(backend, database)
        self._backend_memo = {}
        # Total transfer cost per (plan fingerprint, dependency key,
        # compact flag): a deterministic function of the rows a plan
        # produces against the read tables' current generations, so
        # replays (plan-cache hits, repeated sweep streams) skip the
        # per-row accumulation.  Mutations move the dependency key, which
        # orphans stale entries; the pop-oldest cap bounds them.
        self._transfer_memo = OrderedDict()

    @property
    def cache(self):
        """The engine's :class:`PlanResultCache` (or None) — the single
        slot every cache-wiring path writes to."""
        return self.engine.cache

    @cache.setter
    def cache(self, cache):
        self.engine.cache = resolve_cache(cache)

    def _resolve_backend(self, backend):
        """Per-call backend override: None → the connection default,
        instances pass through, names are memoized per connection."""
        if backend is None:
            return self.backend
        if isinstance(backend, Backend):
            return backend
        resolved = self._backend_memo.get(backend)
        if resolved is None:
            if self.backend is not None and backend == self.backend.name:
                resolved = self.backend
            else:
                resolved = resolve_backend(backend, self.database)
            self._backend_memo[backend] = resolved
        return resolved

    def is_cached(self, plan):
        """True when the engine would replay ``plan`` from its result
        cache without re-evaluating — i.e. executing it cannot touch the
        (possibly faulty) simulated source."""
        return self.engine.cached_complete(plan)

    def _fault_check(self, plan, label, attempt, faults):
        """Draw the fault decision for one submission; raise on failure.

        ``faults`` overrides the installed policy (``False`` disables
        injection — used when replaying from cache, where no connection to
        the source is opened).  Returns the injected latency in simulated
        ms.  Draws are keyed by ``(label, plan fingerprint, attempt)``, so
        they are independent of dispatch order and a degraded re-plan
        (same label, different fingerprint) draws fresh outcomes.
        """
        policy = self.faults if faults is None else faults
        if not policy or attempt is None:
            return 0.0
        decision = policy.decide(label or "?", plan.fingerprint(), attempt)
        if decision.fail:
            raise TransientConnectionError(
                stream_label=label,
                attempt=attempt,
                latency_ms=decision.latency_ms,
            )
        return decision.latency_ms

    def sql(self, text, budget_ms=None, label=None):
        """Execute SQL *text* (the generated dialect) and return a
        :class:`TupleStream` — a small SQL console over the simulated
        engine, closing the middle-ware loop the other way around."""
        from repro.relational.sqlparse import parse_sql

        plan = parse_sql(text, self.database.schema)
        return self.execute(plan, sql=text, label=label, budget_ms=budget_ms)

    def execute(self, plan, compact_rows=False, budget_ms=None, sql=None,
                label=None, attempt=1, faults=None, obs=None,
                engine=None, batch_size=None, backend=None):
        """Execute ``plan`` and return a :class:`TupleStream`.

        ``compact_rows`` marks union-shaped results whose driver-side row
        format skips NULL columns (see module docstring).  ``budget_ms``
        bounds *server* time (the paper's per-subquery timeout).
        ``engine``/``batch_size`` override the engine's execution mode for
        this call (performance only; results and timings are identical).

        ``backend`` (a name or :class:`~repro.relational.backends.Backend`;
        None uses the connection default) selects a real backend to *also*
        execute the generated SQL on: the simulated engine remains the
        oracle — its rows, simulated timings, budget and cache semantics
        are unchanged — while the backend's rows are cross-validated
        against it (:class:`~repro.common.errors.BackendMismatchError` on
        any difference) and its wall-clock lands in the stream's
        ``backend_wall_ms``.  Plan-cache replays never contact the
        backend, mirroring the existing "a replay never touches the
        source" contract.

        With a :class:`~repro.relational.faults.FaultPolicy` installed (or
        passed via ``faults``), the submission first draws that policy's
        deterministic outcome for ``(label, plan, attempt)`` — possibly
        raising :class:`~repro.common.errors.TransientConnectionError`
        *before* the engine (and its result cache) is touched, so fault
        outcomes are never cached.  ``faults=False`` disables injection
        for this call.

        ``obs`` (an :class:`~repro.obs.ObsOptions` session) forwards the
        metrics registry to the engine's plan-cache hit/miss counters.
        """
        latency_ms = self._fault_check(plan, label, attempt, faults)
        metrics = obs_parts(obs)[1] if obs is not None else None
        backend = self._resolve_backend(backend)
        real = backend is not None and backend.is_real
        replayed = real and self.engine.cached_complete(plan)
        result = self.engine.execute(plan, budget_ms=budget_ms,
                                     metrics=metrics, engine=engine,
                                     batch_size=batch_size)
        backend_wall_ms = 0.0
        if real and not replayed:
            text = sql if sql is not None else render_sql(plan)
            backend_rows, backend_wall_ms = backend.execute_sql(plan, text)
            align_backend_rows(plan, result.rows, backend_rows,
                               backend.name, label=label, sql=text)
        transfer_ms = self._transfer_cost_for(plan, result, compact_rows)
        stream = TupleStream(
            columns=result.columns,
            rows=result.rows,
            server_ms=result.server_ms,
            transfer_ms=transfer_ms,
            sql=sql,
            label=label,
        )
        stream.fault_latency_ms = latency_ms
        if backend is not None:
            stream.backend = backend.name
            stream.backend_wall_ms = backend_wall_ms
        return stream

    def execute_iter(self, plan, compact_rows=False, budget_ms=None, sql=None,
                     label=None, attempt=1, faults=None, obs=None,
                     engine=None, batch_size=None, backend=None):
        """Execute ``plan`` streaming; return a :class:`TupleCursor`.

        With a real ``backend`` the generated SQL is executed (and its
        wall clock measured) when the cursor is opened, but the
        cross-validation against the simulated oracle necessarily waits
        until the cursor is exhausted — the oracle rows only exist once
        streamed — so a :class:`~repro.common.errors.BackendMismatchError`
        surfaces from the final ``next()``.  The validation buffers the
        streamed rows for comparison: bounded-memory streaming is a
        simulated-backend guarantee.  Cache replays skip the backend, as
        on :meth:`execute`.

        An installed :class:`~repro.relational.faults.FaultPolicy` draws
        its outcome when the cursor is *opened* (the streaming path has no
        retry layer — callers see the
        :class:`~repro.common.errors.TransientConnectionError` directly
        and decide; the materializing path is the one with
        retry/degradation machinery).

        The engine runs its Volcano pipeline
        (:meth:`~repro.relational.engine.QueryEngine.execute_iter`), so
        neither the server result nor the client-side rows are ever held as
        a whole — memory stays bounded by the largest pipeline-breaker
        (typically the final ORDER BY, whose buffer is drained
        destructively).  Budget overruns raise from the consuming
        ``next()``.  A result-cache hit replays its charge log and streams
        the cached rows; misses are *not* inserted (that would require
        materializing).
        """
        self._fault_check(plan, label, attempt, faults)
        metrics = obs_parts(obs)[1] if obs is not None else None
        backend = self._resolve_backend(backend)
        real = backend is not None and backend.is_real
        replayed = real and self.engine.cached_complete(plan)
        try:
            iter_result = self.engine.execute_iter(plan, budget_ms=budget_ms,
                                                   metrics=metrics,
                                                   engine=engine,
                                                   batch_size=batch_size)
        except TimeoutExceeded as exc:
            # The startup charge alone blew the budget — the cursor was
            # never built, so label the error here.
            if exc.stream_label is None:
                exc.stream_label = label
            raise
        cursor = TupleCursor(
            iter_result,
            self._row_cost_fn(iter_result.columns, compact_rows),
            sql=sql,
            label=label,
        )
        if backend is not None:
            cursor.backend = backend.name
        if real and not replayed:
            text = sql if sql is not None else render_sql(plan)
            backend_rows, wall_ms = backend.execute_sql(plan, text)
            cursor.backend_wall_ms = wall_ms
            _defer_backend_validation(cursor, plan, backend.name,
                                      backend_rows, text)
        return cursor

    def _row_cost_fn(self, columns, compact_rows):
        """The per-row transfer charge as a compiled closure — shared by the
        materializing and streaming paths so both accumulate identical
        per-row costs in identical order."""
        model = self.transfer_model
        declared_width = len(columns)
        width_fns = [width_function(col.sql_type) for col in columns]
        row_ms = model.row_ms
        field_ms = model.field_ms
        byte_ms = model.byte_ms
        null_field_ms = model.null_field_ms
        # The paper's "anomalous caching behavior in JDBC": rows produced
        # by a wide outer join bind every declared column and pay a
        # super-linear penalty; union-shaped results use the compact
        # per-branch row format and do not.
        wide = not compact_rows and declared_width > model.wide_threshold
        if wide:
            wide_factor = 1.0 + model.wide_row_factor * (
                declared_width - model.wide_threshold
            )

        def cost(row):
            ms = row_ms
            for fn, value in zip(width_fns, row):
                if value is None:
                    ms += null_field_ms
                else:
                    ms += field_ms + fn(value) * byte_ms
            if wide:
                ms *= wide_factor
            return ms

        return cost

    _TRANSFER_MEMO_CAP = 16384

    def _transfer_cost_for(self, plan, result, compact_rows):
        """Memoized total transfer cost of a materialized execution.

        Keyed by the plan's fingerprint plus the dependency generations of
        the tables it reads (see
        :meth:`~repro.relational.engine.QueryEngine.dependency_key`): as
        long as none of those tables has been mutated, the plan's rows —
        and therefore the per-row charge sum — are bit-identical, so
        replays skip the row walk entirely.  A benign race (two threads
        computing the same key) just stores the same float twice."""
        try:
            key = (
                plan.fingerprint(),
                self.engine.dependency_key(plan),
                compact_rows,
            )
        except AttributeError:
            return self._transfer_cost(result.columns, result.rows,
                                       compact_rows)
        memo = self._transfer_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        total = self._transfer_cost(result.columns, result.rows,
                                    compact_rows)
        memo[key] = total
        while len(memo) > self._TRANSFER_MEMO_CAP:
            memo.popitem(last=False)
        return total

    def _transfer_cost(self, columns, rows, compact_rows):
        row_cost = self._row_cost_fn(columns, compact_rows)
        total = 0.0
        for row in rows:
            total += row_cost(row)
        return total


def _defer_backend_validation(cursor, plan, backend_name, backend_rows, sql):
    """Wrap the cursor's row generator so the streamed oracle rows are
    collected and cross-validated against ``backend_rows`` at exhaustion.
    Abandoned (closed-early) cursors skip validation — there is no full
    oracle to compare against."""
    inner = cursor._rows

    def rows():
        seen = []
        try:
            for row in inner:
                seen.append(row)
                yield row
        finally:
            inner.close()
        if cursor.exhausted:
            align_backend_rows(plan, seen, backend_rows, backend_name,
                               label=cursor.label, sql=sql)

    cursor._rows = rows()
